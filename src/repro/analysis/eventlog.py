"""HDVB210: structured events carry correlation and a registered name.

The timeline reconstruction that ``hdvb-observe timeline`` performs
depends on two disciplines at every ``emit()`` call site inside the
correlated planes (``origin/`` and ``orchestrate/``):

* the call happens **inside a** ``correlation_scope(...)`` — either
  lexically (an enclosing ``with correlation_scope(...)``) or because
  the enclosing class binds a scope around its lifetime in one of its
  methods (the session pattern: ``run()`` opens the scope, every other
  method emits under it).  An uncorrelated event matches no timeline
  and silently vanishes from every post-mortem;
* the event **name is a string literal from the frozen registry**
  :data:`repro.telemetry.events.EVENT_NAMES`.  The runtime raises on
  unregistered names, but only on the enabled path — a typo in a name
  ships silently until someone turns telemetry on in production.  The
  one sanctioned exception is a *forwarding wrapper* whose first
  argument is a parameter of the enclosing function (the session's
  ``_emit`` helper); its call sites are checked instead.

``emit`` is recognised whether imported by name (``from
repro.telemetry.events import emit``), called through a module alias
(``_events.emit(...)``), or routed through the ``self._emit`` wrapper
convention.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.rules import ModuleUnit, Rule, dotted_name, in_scope, register
from repro.telemetry.events import EVENT_NAMES

#: Packages whose emits must be correlated (the timeline planes).
EVENT_SCOPE_PREFIXES: Tuple[str, ...] = ("origin/", "orchestrate/")

EMIT_ORIGIN = "repro.telemetry.events.emit"
EVENTS_MODULE = "repro.telemetry.events"
SCOPE_ORIGIN = "repro.telemetry.events.correlation_scope"

_NAME_SET = frozenset(EVENT_NAMES)


def _emit_names(unit: ModuleUnit) -> Set[str]:
    """Local names bound to ``emit`` by from-imports."""
    return {name for name, origin in unit.imported_names().items()
            if origin == EMIT_ORIGIN}


def _scope_names(unit: ModuleUnit) -> Set[str]:
    """Local names bound to ``correlation_scope`` by from-imports."""
    return {name for name, origin in unit.imported_names().items()
            if origin == SCOPE_ORIGIN}


def _is_scope_call(node: ast.AST, scope_names: Set[str],
                   aliases: Dict[str, str]) -> bool:
    """True when a with-item's expression opens a correlation scope."""
    if not isinstance(node, ast.Call):
        return False
    dotted = dotted_name(node.func)
    if dotted is None:
        return False
    if dotted in scope_names:
        return True
    if "." in dotted:
        base, rest = dotted.split(".", 1)
        if rest == "correlation_scope" and aliases.get(base) == EVENTS_MODULE:
            return True
    return False


def _is_emit_call(node: ast.AST, emit_names: Set[str],
                  aliases: Dict[str, str]) -> bool:
    if not isinstance(node, ast.Call):
        return False
    dotted = dotted_name(node.func)
    if dotted is None:
        return False
    if dotted in emit_names:
        return True
    if dotted == "self._emit":
        return True  # the sanctioned wrapper convention
    if "." in dotted:
        base, rest = dotted.split(".", 1)
        if rest == "emit" and aliases.get(base) == EVENTS_MODULE:
            return True
    return False


def _parents(tree: ast.Module) -> Dict[int, ast.AST]:
    parents: Dict[int, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[id(child)] = node
    return parents


def _ancestors(node: ast.AST, parents: Dict[int, ast.AST]
               ) -> Iterator[ast.AST]:
    current: Optional[ast.AST] = parents.get(id(node))
    while current is not None:
        yield current
        current = parents.get(id(current))


def _class_opens_scope(cls: ast.ClassDef, scope_names: Set[str],
                       aliases: Dict[str, str]) -> bool:
    """True when any method of ``cls`` opens a correlation scope — the
    session pattern, where ``run()`` brackets the whole lifetime."""
    for node in ast.walk(cls):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if _is_scope_call(item.context_expr, scope_names, aliases):
                    return True
    return False


def _wrapper_params(node: ast.AST, parents: Dict[int, ast.AST]
                    ) -> Set[str]:
    """Parameter names of the function lexically enclosing ``node``."""
    for ancestor in _ancestors(node, parents):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            arguments = ancestor.args
            names = {arg.arg for arg in arguments.args}
            names.update(arg.arg for arg in arguments.posonlyargs)
            names.update(arg.arg for arg in arguments.kwonlyargs)
            return names
    return set()


@register
class EventDisciplineRule(Rule):
    """HDVB210: emits are correlated and use registered literal names."""

    rule_id = "HDVB210"
    name = "event-discipline"
    rationale = (
        "an event emitted outside a correlation_scope matches no "
        "timeline and vanishes from every post-mortem; an event name "
        "outside the frozen EVENT_NAMES registry only fails at runtime "
        "on the enabled path, so the typo ships silently"
    )
    hint = (
        "wrap the call site (or the owning lifetime method) in `with "
        "correlation_scope(...)`, and pass the event name as a string "
        "literal from repro.telemetry.events.EVENT_NAMES"
    )

    def check(self, unit: ModuleUnit) -> Iterator[Finding]:
        if unit.tree is None:
            return
        if not in_scope(unit.module, EVENT_SCOPE_PREFIXES):
            return
        emit_names = _emit_names(unit)
        scope_names = _scope_names(unit)
        aliases = unit.module_aliases()
        sites = [node for node in ast.walk(unit.tree)
                 if _is_emit_call(node, emit_names, aliases)]
        if not sites:
            return
        parents = _parents(unit.tree)
        for call in sites:
            yield from self._check_correlation(
                unit, call, parents, scope_names, aliases)
            yield from self._check_name(unit, call, parents)

    def _check_correlation(self, unit: ModuleUnit, call: ast.Call,
                           parents: Dict[int, ast.AST],
                           scope_names: Set[str],
                           aliases: Dict[str, str]) -> Iterator[Finding]:
        enclosing_class: Optional[ast.ClassDef] = None
        for ancestor in _ancestors(call, parents):
            if isinstance(ancestor, (ast.With, ast.AsyncWith)):
                for item in ancestor.items:
                    if _is_scope_call(item.context_expr, scope_names,
                                      aliases):
                        return  # lexically correlated
            elif isinstance(ancestor, ast.ClassDef):
                enclosing_class = ancestor
                break
        if enclosing_class is not None and _class_opens_scope(
                enclosing_class, scope_names, aliases):
            return  # lifetime-correlated via the owning class
        yield self.finding(
            unit, call,
            "emit() outside any correlation_scope -- the event matches "
            "no timeline and disappears from post-mortems",
        )

    def _check_name(self, unit: ModuleUnit, call: ast.Call,
                    parents: Dict[int, ast.AST]) -> Iterator[Finding]:
        if not call.args:
            yield self.finding(
                unit, call, "emit() without an event name argument")
            return
        first = call.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            if first.value not in _NAME_SET:
                yield self.finding(
                    unit, call,
                    f"event name {first.value!r} is not in the frozen "
                    f"repro.telemetry.events.EVENT_NAMES registry",
                )
            return
        if isinstance(first, ast.Name) and first.id in _wrapper_params(
                call, parents):
            return  # forwarding wrapper: its call sites are checked
        yield self.finding(
            unit, call,
            "event name must be a string literal from EVENT_NAMES (a "
            "computed name defeats the static registry check)",
        )
