"""Result-sink rule: bench results persist through the observe store.

Benchmark history is only comparable when every harness writes through
one sink: :class:`repro.observe.store.HistoryStore`, which appends
schema-versioned ``repro.observe.record/1`` lines atomically and keeps
the axis index that ``hdvb-observe gate`` baselines against.  A bench
module that calls ``json.dump`` or opens its own output file for writing
creates a side channel the regression gate never sees — the number looks
recorded but is invisible to ``compare``/``trend``/``gate`` and is lost
on the next compaction.  HDVB160 flags those ad-hoc sinks inside the
bench harnesses.

``json.dumps`` is deliberately *not* flagged: rendering a document to
stdout (the ``--json`` flag) is output, not persistence.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from repro.analysis.findings import Finding
from repro.analysis.rules import ModuleUnit, Rule, dotted_name, in_scope, register

#: Modules that produce benchmark results and must use the store.
BENCH_SCOPE_PREFIXES: Tuple[str, ...] = ("bench/",)
BENCH_SCOPE_FILES: Tuple[str, ...] = (
    "robustness/bench.py",
    "transport/bench.py",
)

#: The one sanctioned sink module.
SANCTIONED_SINK = "observe/store.py"

#: ``open`` modes that create or truncate a results file.
_WRITE_MODES = frozenset({"w", "a", "x"})


def _is_write_mode(call: ast.Call) -> bool:
    """True when an ``open`` call's mode opens the file for text writing."""
    mode_node: ast.AST = ast.Constant(value="r")
    if len(call.args) >= 2:
        mode_node = call.args[1]
    for keyword in call.keywords:
        if keyword.arg == "mode":
            mode_node = keyword.value
    if not isinstance(mode_node, ast.Constant) or not isinstance(
        mode_node.value, str
    ):
        # A computed mode cannot be proven safe; stay quiet rather than
        # guess (the json.dump arm still catches the actual persistence).
        return False
    mode = mode_node.value
    return bool(_WRITE_MODES & set(mode)) and "b" not in mode


@register
class ResultSinkRule(Rule):
    """HDVB160: bench modules persist results via repro.observe.store."""

    rule_id = "HDVB160"
    name = "result-sink"
    rationale = (
        "benchmark results are only gateable when they flow through the "
        "append-only observe store; an ad-hoc json.dump or open(..., 'w') "
        "in a bench harness writes history the regression gate, trend "
        "queries and compaction never see"
    )
    hint = (
        "build BenchRecord objects (repro.observe.record) and append them "
        "with repro.observe.store.HistoryStore.append_many"
    )

    def check(self, unit: ModuleUnit) -> Iterator[Finding]:
        if unit.tree is None or unit.module == SANCTIONED_SINK:
            return
        if not in_scope(unit.module, BENCH_SCOPE_PREFIXES, BENCH_SCOPE_FILES):
            return
        aliases = unit.module_aliases()
        imported = unit.imported_names()
        for node in ast.walk(unit.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            base = dotted.split(".", 1)[0]
            if (
                (aliases.get(base) == "json" and dotted.endswith(".dump"))
                or imported.get(dotted, "") == "json.dump"
            ):
                yield self.finding(
                    unit, node,
                    "json.dump in a bench module is an ad-hoc result sink "
                    "outside the observe store",
                )
            elif dotted == "open" and "open" not in imported and _is_write_mode(node):
                yield self.finding(
                    unit, node,
                    "open(..., mode with 'w'/'a'/'x') in a bench module "
                    "writes results outside the observe store",
                )
