"""Generic fixed-point dataflow over the whole-program call graph.

The HDVB2xx rules all share one shape: a per-function *fact* (reaches an
unseeded RNG, reaches a blocking primitive, can raise builtin ``X``)
starts at seed functions and flows **callee -> caller** along internal
call edges until nothing changes.  This module implements that shape
once, as a deterministic worklist fixed point that converges on cyclic
call graphs (facts are monotone: once a function holds one it never
loses it), with per-edge *blockers* (a call site wrapped in a handler
that catches ``ValueError`` stops the ``ValueError`` fact) and witness
provenance so every finding can print the call chain that produced it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Union

from repro.analysis.graph import CallGraph, CallSite, FunctionNode

#: Facts are opaque strings chosen by each rule (``"nondet:random.uniform"``).
Fact = str


@dataclass(frozen=True)
class Seed:
    """A fact born inside the function itself."""

    description: str        #: human text for the source (``random.uniform``)
    line: int               #: line of the source inside the seed function


@dataclass(frozen=True)
class Via:
    """A fact inherited from a callee through one call site."""

    callee: str             #: qualname the fact came from
    line: int               #: call-site line in the inheriting function


Origin = Union[Seed, Via]

#: ``blocks(caller, site, fact) -> True`` stops ``fact`` at that edge.
Blocker = Callable[[FunctionNode, CallSite, Fact], bool]


def propagate(graph: CallGraph,
              seeds: Dict[str, Dict[Fact, Seed]],
              blocks: Optional[Blocker] = None) -> Dict[str, Dict[Fact, Origin]]:
    """Propagate ``seeds`` callee-to-caller to a fixed point.

    Returns every function's facts with their origin: a :class:`Seed` for
    the function that owns the source, a :class:`Via` naming the callee
    (and call-site line) the fact was inherited through.  Deterministic:
    the worklist drains in sorted order and the first (lowest caller,
    lowest line) discovery wins the provenance slot.
    """
    facts: Dict[str, Dict[Fact, Origin]] = {
        qualname: dict(fact_map)
        for qualname, fact_map in seeds.items()
        if fact_map and qualname in graph.functions
    }
    callers = graph.callers()
    work = deque(sorted(facts))
    queued = set(work)
    while work:
        callee = work.popleft()
        queued.discard(callee)
        callee_facts = facts.get(callee)
        if not callee_facts:
            continue
        for caller, site in callers.get(callee, ()):
            caller_node = graph.functions[caller]
            caller_facts = facts.setdefault(caller, {})
            changed = False
            for fact in sorted(callee_facts):
                if fact in caller_facts:
                    continue
                if blocks is not None and blocks(caller_node, site, fact):
                    continue
                caller_facts[fact] = Via(callee=callee, line=site.line)
                changed = True
            if changed and caller not in queued:
                work.append(caller)
                queued.add(caller)
    return {qualname: fact_map for qualname, fact_map in facts.items()
            if fact_map}


def witness(graph: CallGraph, facts: Dict[str, Dict[Fact, Origin]],
            qualname: str, fact: Fact, limit: int = 12) -> List[str]:
    """The call chain from ``qualname`` down to the fact's seed.

    Each element is ``name (module:line)``; the last one is the seed's
    own description.  Provenance links always point at a function that
    held the fact earlier in the fixed point, so the walk terminates
    even on cyclic graphs.
    """
    chain: List[str] = []
    current = qualname
    while len(chain) < limit:
        origin = facts[current][fact]
        if isinstance(origin, Seed):
            node = graph.functions[current]
            chain.append(f"{origin.description} ({node.module}:{origin.line})")
            return chain
        node = graph.functions[origin.callee]
        chain.append(f"{node.name} ({node.module}:{node.line})")
        current = origin.callee
    chain.append("...")
    return chain
