"""MPlayer/MEncoder-style front end (``hdvb-player`` / ``hdvb-mencoder``)."""

from repro.player.cli import mencoder_main, player_main

__all__ = ["mencoder_main", "player_main"]
