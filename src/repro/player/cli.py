"""MPlayer/MEncoder-style command line front end.

The paper uses MPlayer as a single front end that selects the right codec
library and, with ``-benchmark``, times pure decoding with video output
disabled (``-vo null``).  ``hdvb-player`` and ``hdvb-mencoder`` reproduce
that interface over this library's codecs:

    hdvb-player out/576p25_blue_sky.hdvb -vc mpeg12 -nosound -vo null -benchmark
    hdvb-mencoder yuv/576p25_blue_sky.yuv -demuxer rawvideo \\
        -rawvideo fps=25:w=96:h=80 -o out.hdvb -ovc lavc \\
        -lavcopts vcodec=mpeg2video:vqscale=5:psnr

See Table IV of the paper for the original command lines.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, List, Optional

from repro.codecs import container, get_decoder, get_encoder
from repro.common.metrics import sequence_psnr
from repro.common.yuv import read_yuv_file, write_yuv_file
from repro.errors import ReproError
from repro.robustness import CONCEAL_STRATEGIES, FAULT_MODELS, FaultInjector


def _inject_fault(stream, spec: str):
    """Apply one ``--inject MODEL[:SEED]`` fault to the stream."""
    model, _, seed_text = spec.partition(":")
    if model not in FAULT_MODELS:
        raise ReproError(f"unknown fault model {model!r} "
                         f"(known: {', '.join(FAULT_MODELS)})")
    try:
        seed = int(seed_text) if seed_text else 0
    except ValueError:
        raise ReproError(f"--inject seed must be an integer, got {seed_text!r}")
    corrupted, fault = FaultInjector(seed=seed).inject(stream, model=model)
    print(f"hdvb-player: injected {fault}", file=sys.stderr)
    return corrupted

#: MPlayer ``-vc`` names -> codec registry names (Table IV).
DECODER_ALIASES: Dict[str, str] = {
    "mpeg12": "mpeg2",   # libmpeg2
    "xvid": "mpeg4",     # Xvid
    "ffh264": "h264",    # FFmpeg H.264
    "ffmjpeg": "mjpeg",  # extension codec (Section VII future work)
    "wmv3": "vc1",       # extension codec (Section VII future work)
    "auto": "",
}

#: MEncoder ``-ovc`` names -> codec registry names.
ENCODER_ALIASES: Dict[str, str] = {
    "lavc": "mpeg2",     # FFmpeg MPEG-2 (vcodec=mpeg2video)
    "xvid": "mpeg4",
    "x264": "h264",
    "mjpeg": "mjpeg",    # extension codec (Section VII future work)
    "vc1": "vc1",        # extension codec (Section VII future work)
}


def _parse_colon_options(spec: str) -> Dict[str, str]:
    """Parse MPlayer-style ``key=value:flag`` option strings."""
    options: Dict[str, str] = {}
    if not spec:
        return options
    for item in spec.split(":"):
        if not item:
            continue
        if "=" in item:
            key, value = item.split("=", 1)
            options[key] = value
        else:
            options[item] = "1"
    return options


# ---------------------------------------------------------------------------
# hdvb-player
# ---------------------------------------------------------------------------

def player_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="hdvb-player",
        description="Decode an HDVB stream (MPlayer-style front end).",
    )
    parser.add_argument("input", help="input .hdvb container file")
    parser.add_argument("-vc", default="auto",
                        help="video codec: mpeg12, xvid, ffh264 or auto")
    parser.add_argument("-vo", default="null",
                        help="video output: null, or yuv:PATH to dump raw I420")
    parser.add_argument("-nosound", action="store_true",
                        help="accepted for command-line compatibility")
    parser.add_argument("-benchmark", action="store_true",
                        help="time the decode and report frames per second")
    parser.add_argument("--backend", default="simd", choices=("scalar", "simd"),
                        help="kernel backend (scalar = plain build, simd = optimised)")
    parser.add_argument("--conceal", default="none",
                        choices=("none",) + CONCEAL_STRATEGIES,
                        help="error-concealment strategy for corrupt pictures "
                             "(none = strict: abort on the first error)")
    parser.add_argument("--inject", default="", metavar="MODEL[:SEED]",
                        help="inject one seeded fault before decoding; MODEL is "
                             f"one of {', '.join(FAULT_MODELS)} (robustness testing)")
    parser.add_argument("--loss", type=float, default=0.0, metavar="RATE",
                        help="simulate lossy streaming transport with this "
                             "packet loss rate (0..1); --conceal copy-last "
                             "recommended so playback survives the losses")
    parser.add_argument("--burst", type=float, default=1.0, metavar="LEN",
                        help="mean loss burst length in packets "
                             "(Gilbert-Elliott channel; 1 = independent loss)")
    parser.add_argument("--fec", type=int, default=0, metavar="K",
                        help="XOR-parity FEC group size (one parity packet "
                             "per K media packets; 0 = no FEC)")
    parser.add_argument("--loss-seed", type=int, default=0,
                        help="channel seed for --loss (reproducible runs)")
    parser.add_argument("--stats", action="store_true",
                        help="print per-frame decode time, frame type and "
                             "concealment events (repro.telemetry)")
    args = parser.parse_args(argv)

    if args.stats:
        import repro.telemetry as telemetry

        telemetry.reset()
        telemetry.enable()

    events = []

    try:
        stream = container.read_file(args.input)
        requested = DECODER_ALIASES.get(args.vc, args.vc)
        if requested and requested != stream.codec:
            raise ReproError(
                f"-vc {args.vc} selects codec {requested!r}, "
                f"but {args.input} contains {stream.codec!r}"
            )
        if args.inject:
            stream = _inject_fault(stream, args.inject)
        conceal = None if args.conceal == "none" else args.conceal

        def on_event(event) -> None:
            events.append(event)
            print(f"hdvb-player: {event}", file=sys.stderr)

        if args.loss > 0 or args.fec > 0:
            video, elapsed = _stream_over_lossy_transport(
                stream, args, conceal, on_event)
        else:
            decoder = get_decoder(stream.codec, backend=args.backend)
            start = time.perf_counter()
            video = decoder.decode(stream, conceal=conceal, on_event=on_event)
            elapsed = time.perf_counter() - start
    except ReproError as error:
        print(f"hdvb-player: {error}", file=sys.stderr)
        return 1
    finally:
        if args.stats:
            import repro.telemetry as telemetry

            telemetry.disable()

    if args.vo.startswith("yuv:"):
        write_yuv_file(args.vo[4:], video)
    elif args.vo != "null":
        print(f"hdvb-player: unknown -vo {args.vo!r}", file=sys.stderr)
        return 1

    print(f"VIDEO: {stream.codec} {stream.width}x{stream.height} "
          f"{stream.fps} fps, {stream.frame_count} frames, "
          f"{stream.bitrate_kbps:.1f} kbit/s")
    if args.benchmark:
        fps = len(video) / elapsed if elapsed > 0 else float("inf")
        print(f"BENCHMARKs: VC: {elapsed:8.3f}s  => {fps:.2f} fps "
              f"({'real-time' if fps >= stream.fps else 'below real-time'})")
    if args.stats:
        print(_render_stats(stream, events, elapsed))
    return 0


def _stream_over_lossy_transport(stream, args, conceal, on_event):
    """``--loss/--burst/--fec``: play the stream through the transport layer.

    Imported lazily so plain playback never touches :mod:`repro.transport`.
    """
    from repro.transport import LossyChannel, simulate_transmission

    channel = LossyChannel(loss_rate=args.loss, burst_length=args.burst,
                           seed=args.loss_seed)
    start = time.perf_counter()
    result = simulate_transmission(
        stream,
        fec_group=args.fec,
        fec_depth=max(1, round(args.burst)),
        channel=channel,
        conceal=conceal,
        backend=args.backend,
        on_event=on_event,
    )
    elapsed = time.perf_counter() - start
    report = result.channel
    print(f"hdvb-player: channel: {report.sent} packets sent, "
          f"{report.lost} lost ({report.observed_loss_rate:.1%}), "
          f"{report.duplicated} duplicated, {report.reordered} reordered",
          file=sys.stderr)
    print(f"hdvb-player: {result}", file=sys.stderr)
    return result.frames, elapsed


def _render_stats(stream, events, elapsed: float) -> str:
    """Per-frame decode statistics from the telemetry picture spans."""
    import repro.telemetry as telemetry
    from repro.bench.report import render_table

    concealed = {event.display_index: event.strategy for event in events}
    spans = telemetry.current_trace().spans(f"{stream.codec}.decode.picture")
    by_display = {}
    for record in spans:
        display = record.attrs.get("display_index")
        if display is not None:
            by_display[display] = record
    rows = []
    for display in sorted(by_display):
        record = by_display[display]
        rows.append((
            display,
            record.attrs.get("frame_type", "?"),
            f"{record.duration * 1e3:.2f}",
            concealed.get(display, "-"),
        ))
    table = render_table(["frame", "type", "decode ms", "concealed"], rows,
                         title="STATS: per-frame decode")
    total_ms = sum(record.duration for record in by_display.values()) * 1e3
    summary = (f"STATS: {len(by_display)} pictures decoded in "
               f"{total_ms:.2f} ms (pictures) / {elapsed * 1e3:.2f} ms (total), "
               f"{len(events)} concealment event(s)")
    return table + "\n" + summary


# ---------------------------------------------------------------------------
# hdvb-mencoder
# ---------------------------------------------------------------------------

def mencoder_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="hdvb-mencoder",
        description="Encode raw YUV to an HDVB stream (MEncoder-style front end).",
    )
    parser.add_argument("input", help="input raw I420 .yuv file")
    parser.add_argument("-demuxer", default="rawvideo",
                        help="accepted for compatibility (must be rawvideo)")
    parser.add_argument("-rawvideo", required=True,
                        help="raw video spec, e.g. fps=25:w=96:h=80")
    parser.add_argument("-o", dest="output", required=True,
                        help="output .hdvb container file")
    parser.add_argument("-ofps", type=int, default=0,
                        help="output fps (defaults to the input fps)")
    parser.add_argument("-ovc", required=True,
                        help="encoder: lavc (MPEG-2), xvid (MPEG-4) or x264 (H.264)")
    parser.add_argument("-lavcopts", default="", help="MPEG-2 options, e.g. vqscale=5:psnr")
    parser.add_argument("-xvidencopts", default="",
                        help="MPEG-4 options, e.g. fixed_quant=5:qpel:psnr")
    parser.add_argument("-x264encopts", default="",
                        help="H.264 options, e.g. qp=26:me=hex:ref=2:psnr")
    parser.add_argument("-mjpegopts", default="",
                        help="Motion-JPEG options, e.g. quality=75:psnr")
    parser.add_argument("-vc1opts", default="",
                        help="VC-1 options, e.g. qscale=5:psnr")
    parser.add_argument("--frames", type=int, default=0,
                        help="encode only the first N frames")
    parser.add_argument("--backend", default="simd", choices=("scalar", "simd"))
    args = parser.parse_args(argv)

    try:
        if args.demuxer != "rawvideo":
            raise ReproError(f"only -demuxer rawvideo is supported, got {args.demuxer!r}")
        raw = _parse_colon_options(args.rawvideo)
        if "w" not in raw or "h" not in raw:
            raise ReproError("-rawvideo needs w= and h=")
        width, height = int(raw["w"]), int(raw["h"])
        fps = int(raw.get("fps", "25"))
        video = read_yuv_file(args.input, width, height, fps=fps,
                              max_frames=args.frames)

        codec = ENCODER_ALIASES.get(args.ovc)
        if codec is None:
            raise ReproError(f"unknown -ovc {args.ovc!r} "
                             f"(known: {', '.join(ENCODER_ALIASES)})")
        fields, want_psnr = _encoder_fields(args, codec, width, height)
        encoder = get_encoder(codec, **fields)
        start = time.perf_counter()
        stream = encoder.encode_sequence(video)
        elapsed = time.perf_counter() - start
        if args.ofps:
            stream.fps = args.ofps
        container.write_file(args.output, stream)
    except ReproError as error:
        print(f"hdvb-mencoder: {error}", file=sys.stderr)
        return 1

    fps_rate = len(video) / elapsed if elapsed > 0 else float("inf")
    print(f"ENCODED: {codec} {width}x{height}, {len(video)} frames, "
          f"{stream.total_bytes} bytes ({stream.bitrate_kbps:.1f} kbit/s), "
          f"{elapsed:.3f}s => {fps_rate:.2f} fps")
    if want_psnr:
        decoded = get_decoder(codec, backend=args.backend).decode(stream)
        psnr = sequence_psnr(video, decoded)
        print(f"PSNR: Y:{psnr.y:.2f} U:{psnr.u:.2f} V:{psnr.v:.2f} "
              f"combined:{psnr.combined:.2f}")
    return 0


def _encoder_fields(args, codec: str, width: int, height: int):
    """Map MEncoder-style option strings to encoder config fields."""
    fields: Dict[str, object] = dict(width=width, height=height, backend=args.backend)
    if codec == "mpeg2":
        options = _parse_colon_options(args.lavcopts)
        vcodec = options.get("vcodec", "mpeg2video")
        if vcodec != "mpeg2video":
            raise ReproError(f"-ovc lavc supports vcodec=mpeg2video, got {vcodec!r}")
        fields["qscale"] = int(options.get("vqscale", "5"))
    elif codec == "mpeg4":
        options = _parse_colon_options(args.xvidencopts)
        fields["qscale"] = int(options.get("fixed_quant", "5"))
        fields["qpel"] = "qpel" in options
        fields["four_mv"] = options.get("4mv", "1") != "0"
    elif codec == "mjpeg":
        options = _parse_colon_options(args.mjpegopts)
        fields["quality"] = int(options.get("quality", "75"))
    elif codec == "vc1":
        options = _parse_colon_options(args.vc1opts)
        fields["qscale"] = int(options.get("qscale", "5"))
        fields["adaptive_transform"] = options.get("ats", "1") != "0"
    else:
        options = _parse_colon_options(args.x264encopts)
        fields["qp"] = int(options.get("qp", "26"))
        fields["me_algorithm"] = options.get("me", "hex")
        fields["ref_frames"] = int(options.get("ref", "2"))
        fields["deblock"] = options.get("deblock", "1") != "0"
    if "me" in options and codec != "h264":
        fields["me_algorithm"] = options["me"]
    if "merange" in options:
        fields["search_range"] = int(options["merange"])
    return fields, "psnr" in options
