"""Table V driver: rate-distortion comparison of the three codecs.

Encodes every (sequence, resolution tier) pair with each codec at the
constant-QP settings (qscale 5 / QP 26 via Equation 1), decodes, and
reports PSNR and bitrate — the two columns of Table V — plus the derived
compression gains quoted in Section VI of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.bench.config import BenchConfig
from repro.bench.report import render_table
from repro.codecs import get_decoder, get_encoder
from repro.common.metrics import FramePsnr, compression_gain, mean, sequence_psnr
from repro.common.resolution import Resolution
from repro.sequences import generate_sequence


@dataclass(frozen=True)
class RdRow:
    """One cell group of Table V."""

    resolution: str
    sequence: str
    codec: str
    psnr: FramePsnr
    bitrate_kbps: float
    total_bytes: int


def run_rate_distortion(config: BenchConfig,
                        progress=None) -> List[RdRow]:
    """Run the full Table V campaign under ``config``."""
    rows: List[RdRow] = []
    for tier in config.tiers():
        for sequence_name in config.sequences:
            video = generate_sequence(
                sequence_name, tier.name, frames=config.frames, scale=config.scale
            )
            for codec in config.codecs:
                if progress:
                    progress(f"{tier.name} {sequence_name} {codec}")
                encoder = get_encoder(codec, **config.encoder_fields(codec, tier))
                stream = encoder.encode_sequence(video)
                decoded = get_decoder(codec).decode(stream)
                rows.append(
                    RdRow(
                        resolution=tier.name,
                        sequence=sequence_name,
                        codec=codec,
                        psnr=sequence_psnr(video, decoded),
                        bitrate_kbps=stream.bitrate_kbps,
                        total_bytes=stream.total_bytes,
                    )
                )
    return rows


def _lookup(rows: Iterable[RdRow], resolution: str, sequence: str,
            codec: str) -> Optional[RdRow]:
    for row in rows:
        if (row.resolution, row.sequence, row.codec) == (resolution, sequence, codec):
            return row
    return None


def compression_gains(rows: List[RdRow]) -> Dict[Tuple[str, str], float]:
    """Average per-resolution gains, as quoted in Section VI.

    Keys are (resolution, comparison) with comparisons ``"mpeg4_vs_mpeg2"``,
    ``"h264_vs_mpeg2"`` and ``"h264_vs_mpeg4"``.
    """
    comparisons = (
        ("mpeg4_vs_mpeg2", "mpeg4", "mpeg2"),
        ("h264_vs_mpeg2", "h264", "mpeg2"),
        ("h264_vs_mpeg4", "h264", "mpeg4"),
    )
    resolutions = sorted({row.resolution for row in rows})
    sequences = sorted({row.sequence for row in rows})
    gains: Dict[Tuple[str, str], float] = {}
    for resolution in resolutions:
        for name, test, baseline in comparisons:
            values = []
            for sequence in sequences:
                test_row = _lookup(rows, resolution, sequence, test)
                base_row = _lookup(rows, resolution, sequence, baseline)
                if test_row and base_row:
                    values.append(
                        compression_gain(base_row.bitrate_kbps, test_row.bitrate_kbps)
                    )
            if values:
                gains[(resolution, name)] = mean(values)
    return gains


def render_rate_distortion(rows: List[RdRow]) -> str:
    """Render the Table V layout: one line per (resolution, sequence)."""
    codecs = []
    for row in rows:
        if row.codec not in codecs:
            codecs.append(row.codec)
    headers = ["Resolution", "Input"]
    for codec in codecs:
        headers.extend([f"{codec} PSNR", f"{codec} kbit/s"])
    table_rows = []
    seen = []
    for row in rows:
        key = (row.resolution, row.sequence)
        if key in seen:
            continue
        seen.append(key)
        line: List[object] = [row.resolution, row.sequence]
        for codec in codecs:
            cell = _lookup(rows, row.resolution, row.sequence, codec)
            if cell is None:
                line.extend(["-", "-"])
            else:
                line.extend([f"{cell.psnr.combined:.2f}", f"{cell.bitrate_kbps:.0f}"])
        table_rows.append(line)
    body = render_table(headers, table_rows,
                        title="Table V: rate-distortion comparison (constant QP)")
    gain_lines = ["", "Compression gains (average over sequences):"]
    for (resolution, name), value in sorted(compression_gains(rows).items()):
        gain_lines.append(f"  {resolution} {name.replace('_', ' ')}: {value:.1f}%")
    return body + "\n" + "\n".join(gain_lines)
