"""The paper's descriptive tables (I, II, III) as structured data.

Table I surveys prior multimedia benchmarks, Table II lists the
HD-VideoBench applications, Table III the input sequences.  The data is
reproduced verbatim from the paper so the CLI can regenerate the tables;
Table III descriptions double as the specification the procedural sequence
generators implement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.bench.report import render_table
from repro.common.resolution import PAPER_FRAME_COUNT, PAPER_TIERS
from repro.sequences import SEQUENCE_NAMES, get_generator


@dataclass(frozen=True)
class BenchmarkSurveyEntry:
    """One row of Table I."""

    name: str
    release: str
    license: str
    video_applications: Tuple[str, ...]
    input_sequences: str


TABLE_I: Tuple[BenchmarkSurveyEntry, ...] = (
    BenchmarkSurveyEntry(
        "Mediabench I", "1997", "Free",
        ("MPEG-2 decoder (MSSG)", "MPEG-2 encoder (MSSG)"),
        "352x240, 30 fps, 4 frames",
    ),
    BenchmarkSurveyEntry(
        "Mediabench+", "1999", "Free",
        ("MPEG-2 decoder (MSSG)", "MPEG-2 encoder (MSSG)",
         "H.263 encoder (Telenor)", "H.263 decoder (Telenor)"),
        "n.a.",
    ),
    BenchmarkSurveyEntry(
        "Mediabench II", "2006", "Free",
        ("MPEG-2 codec (MSSG)", "MPEG-4 codec (FFmpeg)",
         "H.263 codec (Telenor)", "H.264 codec (JM 10.2)"),
        "704x576, 10 frames, 25 fps",
    ),
    BenchmarkSurveyEntry(
        "Berkeley Multimedia Workload", "2000", "Free",
        ("MPEG-2 encoder (MSSG)", "MPEG-2 decoder (MSSG)"),
        "720x576p, 1280x720p, 1920x1080p (16 frames)",
    ),
    BenchmarkSurveyEntry(
        "EEMBC Digital Entertainment", "2005", "Closed",
        ("MPEG-2 codec (MSSG)", "MPEG-4 codec (Xvid)"),
        "192x192 .. 720x480, 30-50 frames",
    ),
    BenchmarkSurveyEntry(
        "BDTI Video Benchmarks", "2006", "Closed",
        ("H.264-like decoder", "H.264-like encoder"),
        "n.a.",
    ),
)


@dataclass(frozen=True)
class ApplicationEntry:
    """One row of Table II."""

    application: str
    description: str
    codec: str
    role: str


TABLE_II: Tuple[ApplicationEntry, ...] = (
    ApplicationEntry("libmpeg2", "MPEG-2 video decoding", "mpeg2", "decoder"),
    ApplicationEntry("ffmpeg-mpeg2", "MPEG-2 video encoding", "mpeg2", "encoder"),
    ApplicationEntry("Xvid", "MPEG-4 video decoding", "mpeg4", "decoder"),
    ApplicationEntry("Xvid", "MPEG-4 video encoding", "mpeg4", "encoder"),
    ApplicationEntry("ffmpeg-h264", "H.264 video decoding", "h264", "decoder"),
    ApplicationEntry("x264", "H.264 video encoding", "h264", "encoder"),
)


def table1_data() -> Tuple[List[str], List[Tuple[str, ...]]]:
    """Headers and rows of Table I (shared by text and JSON output)."""
    rows = [
        (entry.name, entry.release, entry.license,
         "; ".join(entry.video_applications), entry.input_sequences)
        for entry in TABLE_I
    ]
    return (["Benchmark", "Release", "License", "Video applications",
             "Input sequences"], rows)


def render_table1() -> str:
    headers, rows = table1_data()
    return render_table(
        headers, rows, title="Table I: existing multimedia benchmarks",
    )


def table2_data() -> Tuple[List[str], List[Tuple[str, ...]]]:
    """Headers and rows of Table II."""
    rows = [
        (entry.application, entry.description, f"repro codec: {entry.codec} {entry.role}")
        for entry in TABLE_II
    ]
    return (["Application", "Description", "Reproduced by"], rows)


def render_table2() -> str:
    headers, rows = table2_data()
    return render_table(
        headers, rows, title="Table II: HD-VideoBench applications",
    )


def table3_data() -> Tuple[List[str], List[Tuple[str, ...]]]:
    """Headers and rows of Table III."""
    rows: List[Tuple[str, ...]] = []
    resolutions = ", ".join(f"{t.width}x{t.height}" for t in PAPER_TIERS)
    for name in SEQUENCE_NAMES:
        generator = get_generator(name)
        rows.append(
            (name, resolutions, "25", str(PAPER_FRAME_COUNT), generator.description)
        )
    return (["Test sequence", "Resolutions", "fps", "Frames", "Comments"], rows)


def render_table3() -> str:
    headers, rows = table3_data()
    return render_table(
        headers, rows, title="Table III: HD-VideoBench input sequences",
    )
