"""Benchmark configuration.

Defaults mirror the paper's methodology scaled to pure-Python runtimes:
constant-QP encodes at qscale 5 / QP 26 (Equation 1), the I-P-B-B GOP,
EPZS / hexagon motion estimation, the three resolution tiers (scaled by
1/8 by default; see ``repro.common.resolution``), and multiple timed runs
per measurement (the paper uses five).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Tuple

from repro.codecs import CODEC_NAMES
from repro.common.resolution import PAPER_TIERS, Resolution, scaled_tier
from repro.errors import ConfigError
from repro.sequences import SEQUENCE_NAMES
from repro.transform.qp import h264_qp_from_mpeg


@dataclass(frozen=True)
class BenchConfig:
    """Parameters of one benchmark campaign."""

    scale: Fraction = Fraction(1, 8)
    frames: int = 9
    qscale: int = 5
    search_range: int = 8
    runs: int = 3
    warmup: int = 1
    sequences: Tuple[str, ...] = SEQUENCE_NAMES
    codecs: Tuple[str, ...] = CODEC_NAMES
    tier_names: Tuple[str, ...] = tuple(tier.name for tier in PAPER_TIERS)

    def __post_init__(self) -> None:
        if self.frames < 1:
            raise ConfigError(f"frames must be >= 1, got {self.frames}")
        if self.runs < 1:
            raise ConfigError(f"runs must be >= 1, got {self.runs}")
        known_tiers = {tier.name for tier in PAPER_TIERS}
        for name in self.tier_names:
            if name not in known_tiers:
                raise ConfigError(
                    f"unknown resolution tier {name!r} "
                    f"(known: {', '.join(sorted(known_tiers))})"
                )

    @property
    def h264_qp(self) -> int:
        """Equation 1 applied to ``qscale`` (qscale 5 -> QP 26)."""
        return h264_qp_from_mpeg(self.qscale)

    def tiers(self) -> Tuple[Resolution, ...]:
        by_name = {tier.name: tier for tier in PAPER_TIERS}
        return tuple(scaled_tier(by_name[name], self.scale) for name in self.tier_names)

    def encoder_fields(self, codec: str, resolution: Resolution,
                       backend: str = "simd") -> Dict:
        """Constructor arguments for ``get_encoder`` under this config."""
        fields: Dict = dict(
            width=resolution.width,
            height=resolution.height,
            search_range=self.search_range,
            backend=backend,
        )
        if codec == "h264":
            fields["qp"] = self.h264_qp
        elif codec == "mjpeg":
            # The intra-only extension codec has no quantiser scale; map
            # the campaign qscale onto its quality axis.
            fields["quality"] = max(5, min(98, 100 - 3 * self.qscale))
        else:
            fields["qscale"] = self.qscale
        return fields


def quick_config() -> BenchConfig:
    """A minimal configuration for smoke tests and pytest-benchmark runs."""
    return BenchConfig(
        frames=5,
        runs=1,
        warmup=0,
        sequences=("rush_hour",),
        tier_names=("576p25",),
    )
