"""Figure 1 driver: decode/encode throughput, scalar vs SIMD.

Measures frames-per-second for every (codec, sequence, resolution tier)
combination — the bar groups of Figure 1(a-d) — for both kernel backends,
and derives the aggregates the paper quotes: per-codec SIMD speed-ups and
real-time (25 fps) feasibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.bench.config import BenchConfig
from repro.bench.harness import REAL_TIME_FPS, Timing, time_callable
from repro.bench.report import render_bars, render_table
from repro.codecs import get_decoder, get_encoder
from repro.common.metrics import mean
from repro.errors import ConfigError
from repro.sequences import generate_sequence
from repro.telemetry.trace import span as telemetry_span

OPERATIONS = ("decode", "encode")
BACKENDS = ("scalar", "simd")

#: Figure 1 panel ids -> (operation, backend).
FIGURE1_PARTS = {
    "a": ("decode", "scalar"),
    "b": ("decode", "simd"),
    "c": ("encode", "scalar"),
    "d": ("encode", "simd"),
}


@dataclass(frozen=True)
class FpsRow:
    """One bar of Figure 1."""

    operation: str
    backend: str
    codec: str
    sequence: str
    resolution: str
    fps: float
    real_time: bool


def _measure(config: BenchConfig, operation: str, backend: str, codec: str,
             sequence_name: str, tier) -> Timing:
    with telemetry_span("bench.generate", sequence=sequence_name,
                        tier=tier.name, frames=config.frames):
        video = generate_sequence(
            sequence_name, tier.name, frames=config.frames, scale=config.scale
        )
    fields = config.encoder_fields(codec, tier, backend=backend)
    # First-touch codec setup (module import, VLC table construction)
    # happens here under its own span, so the stage table attributes it
    # instead of losing it inside the first timed run.
    with telemetry_span("bench.setup", codec=codec, backend=backend):
        get_encoder(codec, **fields)
    if operation == "encode":
        def run():
            get_encoder(codec, **fields).encode_sequence(video)

        return time_callable(run, len(video), runs=config.runs, warmup=config.warmup)
    # Decode: pre-encode once (stream is backend independent — the
    # backends are bit-exact), then time the decoder.
    stream = get_encoder(codec, **config.encoder_fields(codec, tier)).encode_sequence(video)

    def run():
        get_decoder(codec, backend=backend).decode(stream)

    return time_callable(run, len(video), runs=config.runs, warmup=config.warmup)


def run_performance(config: BenchConfig, operation: str, backend: str,
                    progress=None) -> List[FpsRow]:
    """Measure one Figure 1 panel (one operation x backend)."""
    if operation not in OPERATIONS:
        raise ConfigError(f"operation must be one of {OPERATIONS}, got {operation!r}")
    if backend not in BACKENDS:
        raise ConfigError(f"backend must be one of {BACKENDS}, got {backend!r}")
    rows: List[FpsRow] = []
    for codec in config.codecs:
        for tier in config.tiers():
            for sequence_name in config.sequences:
                if progress:
                    progress(f"{operation}/{backend} {codec} {tier.name} {sequence_name}")
                timing = _measure(config, operation, backend, codec, sequence_name, tier)
                rows.append(
                    FpsRow(
                        operation=operation,
                        backend=backend,
                        codec=codec,
                        sequence=sequence_name,
                        resolution=tier.name,
                        fps=timing.fps,
                        real_time=timing.real_time,
                    )
                )
    return rows


def run_figure1_part(config: BenchConfig, part: str, progress=None) -> List[FpsRow]:
    """Measure Figure 1(a), (b), (c) or (d)."""
    try:
        operation, backend = FIGURE1_PARTS[part]
    except KeyError:
        raise ConfigError(f"figure 1 part must be one of a, b, c, d; got {part!r}") from None
    return run_performance(config, operation, backend, progress=progress)


def average_fps(rows: List[FpsRow]) -> Dict[Tuple[str, str], float]:
    """Mean fps per (codec, resolution), averaging over sequences."""
    keys = sorted({(row.codec, row.resolution) for row in rows})
    return {
        key: mean(row.fps for row in rows if (row.codec, row.resolution) == key)
        for key in keys
    }


def simd_speedups(scalar_rows: List[FpsRow], simd_rows: List[FpsRow]) -> Dict[str, float]:
    """Per-codec SIMD speed-up averaged over sequences and resolutions.

    The aggregate the paper quotes: decode 2.13x/1.88x/1.55x and encode
    2.46x/2.42x/2.31x for MPEG-2/MPEG-4/H.264.
    """
    speedups: Dict[str, float] = {}
    codecs = sorted({row.codec for row in scalar_rows})
    for codec in codecs:
        ratios = []
        for scalar_row in scalar_rows:
            if scalar_row.codec != codec:
                continue
            match = _find(simd_rows, codec, scalar_row.sequence, scalar_row.resolution)
            if match and scalar_row.fps > 0:
                ratios.append(match.fps / scalar_row.fps)
        if ratios:
            speedups[codec] = mean(ratios)
    return speedups


def _find(rows: List[FpsRow], codec: str, sequence: str,
          resolution: str) -> Optional[FpsRow]:
    for row in rows:
        if (row.codec, row.sequence, row.resolution) == (codec, sequence, resolution):
            return row
    return None


def real_time_summary(rows: List[FpsRow]) -> Dict[Tuple[str, str], bool]:
    """Is (codec, resolution) real-time on average, per the 25 fps line?"""
    return {
        key: value >= REAL_TIME_FPS for key, value in average_fps(rows).items()
    }


def render_performance(rows: List[FpsRow], title: str) -> str:
    """Render one Figure 1 panel as a table plus a bar chart of averages."""
    table = render_table(
        ["Codec", "Resolution", "Sequence", "fps", "real-time"],
        [
            (row.codec, row.resolution, row.sequence, f"{row.fps:.2f}",
             "yes" if row.real_time else "no")
            for row in rows
        ],
        title=title,
    )
    averages = average_fps(rows)
    labels = [f"{codec} {resolution}" for codec, resolution in averages]
    chart = render_bars(
        labels,
        list(averages.values()),
        reference=REAL_TIME_FPS,
        reference_label="25 fps real time",
    )
    return table + "\n\nAverage fps over sequences:\n" + chart
