"""Benchmark harness: regenerates every table and figure of the paper."""

from repro.bench.config import BenchConfig, quick_config
from repro.bench.harness import REAL_TIME_FPS, Timing, time_callable
from repro.bench.performance import (
    FIGURE1_PARTS,
    FpsRow,
    average_fps,
    real_time_summary,
    run_figure1_part,
    run_performance,
    simd_speedups,
)
from repro.bench.ratedistortion import (
    RdRow,
    compression_gains,
    render_rate_distortion,
    run_rate_distortion,
)

__all__ = [
    "BenchConfig",
    "FIGURE1_PARTS",
    "FpsRow",
    "REAL_TIME_FPS",
    "RdRow",
    "Timing",
    "average_fps",
    "compression_gains",
    "quick_config",
    "real_time_summary",
    "render_rate_distortion",
    "run_figure1_part",
    "run_performance",
    "run_rate_distortion",
    "simd_speedups",
    "time_callable",
]
