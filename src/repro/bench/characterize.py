"""Workload characterisation: per-kernel operation breakdowns.

HD-VideoBench was published at IISWC, and its companion paper (Alvarez et
al. 2005, reference [20]) characterises where H.264 decoding spends its
work.  This module provides that analysis for all the codecs here: an
instrumented kernel backend counts every kernel invocation and the number
of samples it touches, so an encode or decode can be broken down into its
kernel mix — the data that motivates which kernels get SIMD treatment.

    profile, decoded = characterize_decode("h264", stream)
    print(render_profile(profile))
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.bench.report import render_table
from repro.codecs import get_decoder, get_encoder
from repro.kernels import get_kernels
from repro.kernels.api import KERNEL_NAMES


@dataclass
class KernelStats:
    """Counters for one kernel."""

    calls: int = 0
    samples: int = 0


@dataclass
class WorkloadProfile:
    """The kernel mix of one codec run."""

    label: str
    kernels: Dict[str, KernelStats] = field(default_factory=dict)

    @property
    def total_calls(self) -> int:
        return sum(stats.calls for stats in self.kernels.values())

    @property
    def total_samples(self) -> int:
        return sum(stats.samples for stats in self.kernels.values())

    def top(self, count: int = 5) -> List[Tuple[str, KernelStats]]:
        """Kernels ordered by touched samples, heaviest first."""
        ordered = sorted(
            self.kernels.items(), key=lambda item: item[1].samples, reverse=True
        )
        return ordered[:count]


def _operand_samples(kernel_name: str, args) -> int:
    """Samples *produced* by a kernel call.

    Block-producing kernels (motion compensation, ``get_block``) take the
    whole padded reference plane plus ``(x, y, width, height)``; counting
    the plane would massively over-attribute work, so the output block
    size is used instead.  Everything else is sized by its first array
    operand.
    """
    if kernel_name.startswith("mc_") or kernel_name == "get_block":
        width, height = args[3], args[4]
        return int(width) * int(height)
    for arg in args:
        if isinstance(arg, np.ndarray):
            return int(arg.size)
    return 0


class CountingKernels:
    """Wraps a kernel backend, counting calls and samples per kernel."""

    def __init__(self, backend: str = "simd") -> None:
        self._inner = get_kernels(backend)
        self.name = f"counting({backend})"
        self.profile = WorkloadProfile(label=self.name)
        for kernel_name in KERNEL_NAMES:
            self.profile.kernels[kernel_name] = KernelStats()
            setattr(self, kernel_name, self._wrap(kernel_name))

    def _wrap(self, kernel_name: str):
        inner_fn = getattr(self._inner, kernel_name)
        stats = self.profile.kernels[kernel_name]

        def counted(*args, **kwargs):
            stats.calls += 1
            stats.samples += _operand_samples(kernel_name, args)
            return inner_fn(*args, **kwargs)

        return counted


def characterize_encode(codec: str, video, **config_fields) -> Tuple[WorkloadProfile, object]:
    """Encode ``video`` with counting kernels; returns (profile, stream)."""
    encoder = get_encoder(codec, **config_fields)
    counting = CountingKernels(encoder.config.backend)
    counting.profile.label = f"{codec} encode"
    encoder.kernels = counting
    stream = encoder.encode_sequence(video)
    return counting.profile, stream


def characterize_decode(codec: str, stream,
                        backend: str = "simd") -> Tuple[WorkloadProfile, object]:
    """Decode ``stream`` with counting kernels; returns (profile, video)."""
    decoder = get_decoder(codec, backend=backend)
    counting = CountingKernels(backend)
    counting.profile.label = f"{codec} decode"
    decoder.kernels = counting
    video = decoder.decode(stream)
    return counting.profile, video


def render_profile(profile: WorkloadProfile, top: int = 0) -> str:
    """Render a kernel-mix table (all kernels, or the ``top`` heaviest)."""
    entries = profile.top(top) if top else sorted(
        ((name, stats) for name, stats in profile.kernels.items() if stats.calls),
        key=lambda item: item[1].samples,
        reverse=True,
    )
    total_samples = max(1, profile.total_samples)
    rows = [
        (
            name,
            stats.calls,
            stats.samples,
            f"{100.0 * stats.samples / total_samples:.1f}%",
        )
        for name, stats in entries
    ]
    rows.append(("TOTAL", profile.total_calls, profile.total_samples, "100.0%"))
    return render_table(
        ["kernel", "calls", "samples", "share"],
        rows,
        title=f"Kernel mix: {profile.label}",
    )
