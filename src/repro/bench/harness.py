"""Timing methodology: repeated runs, median frames/second.

The paper collects five runs of each application and reports throughput in
frames per second against the 25 fps real-time line (Section VI).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List

from repro.common.resolution import FRAME_RATE
from repro.errors import ConfigError

#: The paper's real-time threshold (25 frames per second).
REAL_TIME_FPS = float(FRAME_RATE)


@dataclass(frozen=True)
class Timing:
    """Result of a timed measurement."""

    seconds: float          # median over runs
    runs: List[float]       # all run durations
    frame_count: int

    @property
    def fps(self) -> float:
        if self.seconds <= 0:
            return float("inf")
        return self.frame_count / self.seconds

    @property
    def real_time(self) -> bool:
        """Does this measurement meet the 25 fps real-time line?"""
        return self.fps >= REAL_TIME_FPS


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[middle]
    return 0.5 * (ordered[middle - 1] + ordered[middle])


def time_callable(fn: Callable[[], object], frame_count: int,
                  runs: int = 3, warmup: int = 1) -> Timing:
    """Time ``fn`` over ``runs`` runs (after ``warmup`` unmeasured runs)."""
    if runs < 1:
        raise ConfigError(f"runs must be >= 1, got {runs}")
    for _ in range(warmup):
        fn()
    durations = []
    for _ in range(runs):
        start = time.perf_counter()
        fn()
        durations.append(time.perf_counter() - start)
    return Timing(seconds=_median(durations), runs=durations, frame_count=frame_count)
