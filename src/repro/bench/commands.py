"""Table IV: the execution command lines of the benchmark.

The paper's Table IV lists one MPlayer/MEncoder/x264 command per
application; this module generates the equivalents for this library's
front end, so ``hdvb-bench table4`` documents exactly how to run each
benchmark application by hand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.bench.report import render_table
from repro.transform.qp import h264_qp_from_mpeg


@dataclass(frozen=True)
class CommandEntry:
    codec: str
    application: str
    command: str


def command_table(sequence: str = "blue_sky", tier: str = "576p25",
                  width: int = 720, height: int = 576,
                  qscale: int = 5) -> Tuple[CommandEntry, ...]:
    """The six benchmark commands for one (sequence, resolution) pair."""
    yuv = f"yuv/{tier}_{sequence}.yuv"
    qp = h264_qp_from_mpeg(qscale)
    raw = f"fps=25:w={width}:h={height}"
    return (
        CommandEntry(
            "MPEG-2 decoder", "libmpeg2",
            f"hdvb-player mpeg2/{tier}_{sequence}.hdvb -vc mpeg12 -nosound "
            f"-vo null -benchmark",
        ),
        CommandEntry(
            "MPEG-2 encoder", "FFmpeg-mpeg2",
            f"hdvb-mencoder {yuv} -demuxer rawvideo -rawvideo {raw} "
            f"-o out/{tier}_{sequence}_mpeg2.hdvb -ofps 25 -ovc lavc "
            f"-lavcopts vcodec=mpeg2video:vqscale={qscale}:psnr",
        ),
        CommandEntry(
            "MPEG-4 decoder", "Xvid",
            f"hdvb-player mpeg4/{tier}_{sequence}.hdvb -vc xvid -nosound "
            f"-vo null -benchmark",
        ),
        CommandEntry(
            "MPEG-4 encoder", "Xvid",
            f"hdvb-mencoder {yuv} -demuxer rawvideo -rawvideo {raw} "
            f"-o out/{tier}_{sequence}_mpeg4.hdvb -ofps 25 -ovc xvid "
            f"-xvidencopts fixed_quant={qscale}:qpel:psnr",
        ),
        CommandEntry(
            "H.264 decoder", "FFmpeg-h264",
            f"hdvb-player h264/{tier}_{sequence}.hdvb -vc ffh264 -nosound "
            f"-vo null -benchmark",
        ),
        CommandEntry(
            "H.264 encoder", "x264",
            f"hdvb-mencoder {yuv} -demuxer rawvideo -rawvideo {raw} "
            f"-o out/{tier}_{sequence}_h264.hdvb -ofps 25 -ovc x264 "
            f"-x264encopts qp={qp}:me=hex:merange=24:ref=2:psnr",
        ),
    )


def table4_data(**kwargs) -> Tuple[List[str], List[Tuple[str, str, str]]]:
    """Headers and rows of Table IV (shared by text and JSON output)."""
    rows: List[Tuple[str, str, str]] = [
        (entry.codec, entry.application, entry.command)
        for entry in command_table(**kwargs)
    ]
    return (["Codec", "Application", "Execution command"], rows)


def render_table4(**kwargs) -> str:
    headers, rows = table4_data(**kwargs)
    return render_table(
        headers, rows, title="Table IV: HD-VideoBench execution commands",
    )
