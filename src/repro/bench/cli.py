"""``hdvb-bench``: regenerate every table and figure of the paper.

    hdvb-bench table1|table2|table3|table4   # descriptive tables
    hdvb-bench table5 [--scale 1/8 --frames 9]   (alias: ratedistortion)
    hdvb-bench figure1 [--part a|b|c|d|all] [--realtime]
    hdvb-bench speedups                      # SIMD speed-up aggregate
    hdvb-bench performance [--operation encode|decode] [--backend simd]
                           [--trace out.json]   # telemetry stage breakdown
    hdvb-bench streaming [--loss 0.02,0.05] [--burst 1,3] [--fec 0,4]
                                             # lossy-transport sweep
    hdvb-bench serve [--clients 200 --seeds 0,1 --chaos 0.3]
                                             # multi-client origin serve

Observability: every subcommand takes ``--json`` (emit the results as a
machine-readable ``repro.observe.records/1`` document instead of the
rendered tables), and every measuring subcommand takes ``--record`` /
``--run-id`` / ``--store`` to append the same records to the persistent
benchmark history that ``hdvb-observe`` gates and exports.
"""

from __future__ import annotations

import argparse
import json as json_module
import sys
from fractions import Fraction
from typing import List, Optional, Tuple

from repro.bench import commands as commands_module
from repro.bench import registry_tables
from repro.bench.config import BenchConfig
from repro.bench.performance import (
    BACKENDS,
    FIGURE1_PARTS,
    OPERATIONS,
    render_performance,
    run_figure1_part,
    run_performance,
    simd_speedups,
)
from repro.bench.ratedistortion import render_rate_distortion, run_rate_distortion
from repro.errors import ReproError
from repro.observe.record import BenchRecord, RunInfo, records_document


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", default="1/8",
                        help="linear tier scale, e.g. 1/8 or 1 (full size)")
    parser.add_argument("--frames", type=int, default=9,
                        help="frames per sequence (paper: 100)")
    parser.add_argument("--runs", type=int, default=3,
                        help="timed runs per measurement (paper: 5)")
    parser.add_argument("--qscale", type=int, default=5,
                        help="MPEG quantiser scale (H.264 QP follows Eq. 1)")
    parser.add_argument("--sequences", default="",
                        help="comma-separated subset of sequences")
    parser.add_argument("--tiers", default="",
                        help="comma-separated subset of resolution tiers")
    parser.add_argument("--codecs", default="",
                        help="comma-separated codecs (paper trio by default; "
                             "extensions: mjpeg, vc1)")


def _add_observe_arguments(parser: argparse.ArgumentParser,
                           record: bool = True) -> None:
    """The observability surface shared by every subcommand."""
    parser.add_argument("--json", action="store_true",
                        help="emit a repro.observe.records/1 JSON document "
                             "instead of the rendered tables")
    if record:
        from repro.observe.store import DEFAULT_STORE_DIR

        parser.add_argument("--record", action="store_true",
                            help="append this run's records to the benchmark "
                                 "history store")
        parser.add_argument("--run-id", default="", dest="run_id",
                            help="run id stamped onto the records "
                                 "(default: generated)")
        parser.add_argument("--store", default=DEFAULT_STORE_DIR,
                            metavar="DIR",
                            help=f"history store directory "
                                 f"(default: {DEFAULT_STORE_DIR})")


def _config_from_args(args) -> BenchConfig:
    fields = dict(
        scale=Fraction(args.scale),
        frames=args.frames,
        runs=args.runs,
        qscale=args.qscale,
    )
    if args.sequences:
        fields["sequences"] = tuple(args.sequences.split(","))
    if args.tiers:
        fields["tier_names"] = tuple(args.tiers.split(","))
    if getattr(args, "codecs", ""):
        fields["codecs"] = tuple(args.codecs.split(","))
    return BenchConfig(**fields)


def _progress(message: str) -> None:
    print(f"  .. {message}", file=sys.stderr)


def _run_info(args, config: Optional[BenchConfig] = None) -> RunInfo:
    """The identity stamped onto this invocation's records."""
    from repro.observe.record import context_from_config

    context = context_from_config(config) if config is not None else {}
    return RunInfo.capture(context=context,
                           run_id=getattr(args, "run_id", ""))


def _emit(args, text: str, records: List[BenchRecord],
          info: Optional[RunInfo] = None) -> None:
    """Common output tail: render or dump JSON, then optionally record."""
    if getattr(args, "json", False):
        print(json_module.dumps(
            records_document(records, run_id=info.run_id if info else None),
            indent=2,
        ))
    elif text:
        print(text)
    if getattr(args, "record", False):
        from repro.observe.store import HistoryStore

        store = HistoryStore(args.store)
        count = store.append_many(records)
        run_id = info.run_id if info else (records[0].run_id if records else "?")
        print(f"recorded {count} record(s) under run {run_id} "
              f"in {store.path}", file=sys.stderr)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="hdvb-bench",
        description="Regenerate the tables and figures of the HD-VideoBench paper.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name, help_text in (
        ("table1", "survey of existing multimedia benchmarks"),
        ("table2", "the HD-VideoBench applications"),
        ("table3", "the input sequences"),
        ("table4", "execution command lines"),
    ):
        static = sub.add_parser(name, help=help_text)
        _add_observe_arguments(static, record=False)

    t5 = sub.add_parser("table5", aliases=["ratedistortion"],
                        help="rate-distortion comparison")
    _add_config_arguments(t5)
    _add_observe_arguments(t5)

    f1 = sub.add_parser("figure1", help="decode/encode throughput, scalar vs SIMD")
    _add_config_arguments(f1)
    _add_observe_arguments(f1)
    f1.add_argument("--part", default="all", choices=tuple(FIGURE1_PARTS) + ("all",),
                    help="panel: a=decode scalar, b=decode simd, "
                         "c=encode scalar, d=encode simd")

    sp = sub.add_parser("speedups", help="per-codec SIMD speed-ups (decode + encode)")
    _add_config_arguments(sp)
    _add_observe_arguments(sp)

    pf = sub.add_parser("performance",
                        help="timed encode/decode run with the telemetry "
                             "stage breakdown (where did the time go)")
    _add_config_arguments(pf)
    _add_observe_arguments(pf)
    pf.add_argument("--operation", default="encode", choices=OPERATIONS,
                    help="what to time (default: encode)")
    pf.add_argument("--backend", default="simd", choices=BACKENDS,
                    help="kernel backend (default: simd)")
    pf.add_argument("--trace", default="", metavar="PATH",
                    help="write the span trace to PATH as JSON")
    pf.add_argument("--trace-format", default="chrome",
                    choices=("chrome", "json"),
                    help="chrome = chrome://tracing loadable (default), "
                         "json = the library's own span schema")

    ch = sub.add_parser("characterize",
                        help="per-kernel workload breakdown (encode + decode)")
    _add_config_arguments(ch)
    _add_observe_arguments(ch)
    ch.add_argument("--codec", default="",
                    help="restrict to one codec (default: all three)")

    rb = sub.add_parser("robustness",
                        help="seeded fault sweep: graceful-failure and "
                             "concealment-success rates per codec")
    _add_observe_arguments(rb)
    rb.add_argument("--codecs", default="",
                    help="comma-separated codecs (default: all five)")
    rb.add_argument("--trials", type=int, default=40,
                    help="corrupted streams per codec")
    rb.add_argument("--seed", type=int, default=0,
                    help="fault-injection seed")
    rb.add_argument("--frames", type=int, default=5,
                    help="frames in the benchmark clip")
    rb.add_argument("--conceal", default="copy-last",
                    help="concealment strategy for the concealed pass")

    st = sub.add_parser("streaming",
                        help="seeded lossy-transport sweep: loss rate x "
                             "burst length x FEC overhead, reporting "
                             "graceful-decode and FEC recovery rates")
    _add_observe_arguments(st)
    st.add_argument("--codecs", default="",
                    help="comma-separated codecs (default: all five)")
    st.add_argument("--loss", default="0.02,0.05,0.10",
                    help="comma-separated packet loss rates")
    st.add_argument("--burst", default="1,3",
                    help="comma-separated mean burst lengths (packets)")
    st.add_argument("--fec", default="0,4",
                    help="comma-separated FEC group sizes (0 = no FEC)")
    st.add_argument("--trials", type=int, default=3,
                    help="seeded channels per grid point")
    st.add_argument("--seed", type=int, default=0,
                    help="channel seed (same seed = same sweep, bit for bit)")
    st.add_argument("--frames", type=int, default=5,
                    help="frames in the benchmark clip")
    st.add_argument("--conceal", default="copy-last",
                    help="concealment strategy at the receiver")

    sv = sub.add_parser("serve",
                        help="multi-client streaming origin under seeded "
                             "traffic and chaos: sessions/s, deadline-miss "
                             "p99, degrade/shed counts, graceful rate")
    _add_observe_arguments(sv)
    sv.add_argument("--clients", type=int, default=16,
                    help="clients in the generated population")
    sv.add_argument("--seeds", default="0",
                    help="comma-separated traffic seeds (one serve run each)")
    sv.add_argument("--codecs", default="h264",
                    help="comma-separated codecs across the population")
    sv.add_argument("--frames", type=int, default=16,
                    help="frames per session (bench clip length)")
    sv.add_argument("--max-sessions", type=int, default=0,
                    dest="max_sessions",
                    help="bounded session table (default: clients, "
                         "i.e. the door never sheds)")
    sv.add_argument("--chaos", type=float, default=0.25,
                    help="fraction of clients with chaos schedules")
    sv.add_argument("--slow-readers", type=float, default=0.2,
                    dest="slow_readers",
                    help="fraction of clients reading slower than realtime")
    sv.add_argument("--max-loss", type=float, default=0.10, dest="max_loss",
                    help="upper bound of per-client packet loss rates")
    sv.add_argument("--ramp", type=float, default=2.0,
                    help="arrival ramp window in virtual seconds")
    sv.add_argument("--events", default="", metavar="PATH",
                    help="enable the structured event log for the run and "
                         "write its canonical JSONL here (bit-reproducible "
                         "per seed); flight dumps land in STORE/flightrec")
    sv.add_argument("--failure-budget", type=int, default=-1,
                    dest="failure_budget",
                    help="transient failures a session tolerates before "
                         "aborting (default: the SessionConfig default; "
                         "0 plus --chaos forces SessionAborted dumps)")

    orc = sub.add_parser("orchestrate",
                         help="run a declarative spec's benchmark matrix "
                              "through the resumable orchestrator and the "
                              "content-addressed artifact cache")
    _add_observe_arguments(orc)
    orc.add_argument("spec", metavar="SPEC",
                     help="run-spec file (JSON; YAML with PyYAML installed)")
    orc.add_argument("--workers", type=int, default=1,
                     help="scheduler process-pool width (default: 1, "
                          "in-process; cells append to the store as they "
                          "finish either way)")
    orc.add_argument("--cache", default="", metavar="DIR",
                     help="artifact cache directory "
                          "(default: .hdvb-artifact-cache)")
    orc.add_argument("--stale-lock-seconds", type=float, default=None,
                     dest="stale_lock_seconds", metavar="SECONDS",
                     help="break single-flight cache locks older than this "
                          "(a dead leader's claim; default: 900)")
    orc.add_argument("--shards", type=int, default=0,
                     help="emit N shard manifests instead of running "
                          "(multi-host execution)")
    orc.add_argument("--manifest-dir", default="manifests",
                     dest="manifest_dir", metavar="DIR",
                     help="where --shards writes the manifests")
    orc.add_argument("--manifest", default="", metavar="PATH",
                     help="run the cells of one shard manifest (written by "
                          "--shards) instead of the full expansion")

    bd = sub.add_parser("bdrate",
                        help="Bjøntegaard deltas vs the MPEG-2 anchor "
                             "(quantiser sweep RD curves)")
    _add_config_arguments(bd)
    _add_observe_arguments(bd)
    bd.add_argument("--qscales", default="2,4,8,16",
                    help="comma-separated quantiser sweep points (>= 4)")

    args = parser.parse_args(argv)
    if args.command == "ratedistortion":
        args.command = "table5"
    try:
        return _dispatch(args)
    except ReproError as error:
        print(f"hdvb-bench: {error}", file=sys.stderr)
        return 1


def _static_table(args) -> Tuple[str, str, List[BenchRecord]]:
    from repro.observe.record import records_from_table

    if args.command == "table4":
        headers, rows = commands_module.table4_data()
        text = commands_module.render_table4()
    else:
        data = {
            "table1": registry_tables.table1_data,
            "table2": registry_tables.table2_data,
            "table3": registry_tables.table3_data,
        }[args.command]
        render = {
            "table1": registry_tables.render_table1,
            "table2": registry_tables.render_table2,
            "table3": registry_tables.render_table3,
        }[args.command]
        headers, rows = data()
        text = render()
    info = RunInfo.capture()
    return text, args.command, records_from_table(args.command, headers, rows, info)


def _dispatch(args) -> int:
    if args.command in ("table1", "table2", "table3", "table4"):
        text, _, records = _static_table(args)
        _emit(args, text, records)
    elif args.command == "table5":
        from repro.observe.record import records_from_rate_distortion

        config = _config_from_args(args)
        info = _run_info(args, config)
        rows = run_rate_distortion(config, progress=_progress)
        _emit(args, render_rate_distortion(rows),
              records_from_rate_distortion(rows, info), info)
    elif args.command == "figure1":
        from repro.observe.record import records_from_performance

        config = _config_from_args(args)
        info = _run_info(args, config)
        parts = list(FIGURE1_PARTS) if args.part == "all" else [args.part]
        sections = []
        records: List[BenchRecord] = []
        for part in parts:
            operation, backend = FIGURE1_PARTS[part]
            rows = run_figure1_part(config, part, progress=_progress)
            title = f"Figure 1({part}): {operation} performance, {backend} backend"
            sections.append(render_performance(rows, title))
            records.extend(records_from_performance(rows, info))
        _emit(args, "\n\n".join(sections), records, info)
    elif args.command == "speedups":
        from repro.observe.record import (
            records_from_performance,
            records_from_speedups,
        )

        config = _config_from_args(args)
        info = _run_info(args, config)
        lines = []
        records = []
        for operation in ("decode", "encode"):
            scalar = run_performance(config, operation, "scalar", progress=_progress)
            simd = run_performance(config, operation, "simd", progress=_progress)
            lines.append(f"{operation} SIMD speed-ups:")
            speedups = simd_speedups(scalar, simd)
            for codec, value in speedups.items():
                lines.append(f"  {codec}: {value:.2f}x")
            records.extend(records_from_performance(scalar + simd, info))
            records.extend(records_from_speedups(operation, speedups, info))
        _emit(args, "\n".join(lines), records, info)
    elif args.command == "robustness":
        from repro.observe.record import records_from_robustness
        from repro.robustness.bench import (
            ALL_CODECS,
            render_robustness,
            run_robustness,
        )

        codecs = tuple(args.codecs.split(",")) if args.codecs else ALL_CODECS
        info = _run_info(args)
        info = RunInfo(run_id=info.run_id, created=info.created,
                       git_sha=info.git_sha,
                       context={"trials": args.trials, "seed": args.seed,
                                "frames": args.frames})
        reports = run_robustness(
            codecs=codecs,
            trials=args.trials,
            seed=args.seed,
            frames=args.frames,
            conceal=args.conceal,
            progress=_progress,
        )
        _emit(args, render_robustness(reports),
              records_from_robustness(reports, info), info)
        # A matrix with raw escapes is a failed sweep: the records are
        # persisted above (a partial matrix is still evidence), but the
        # invocation must not report success.
        failed = [report for report in reports
                  if report.raw_escapes or report.failure_examples]
        if failed:
            print(f"hdvb-bench robustness: {len(failed)} codec sweep(s) "
                  f"with raw escapes", file=sys.stderr)
            return 1
    elif args.command == "streaming":
        from repro.observe.record import records_from_streaming
        from repro.robustness.bench import ALL_CODECS
        from repro.transport.bench import render_streaming, run_streaming

        codecs = tuple(args.codecs.split(",")) if args.codecs else ALL_CODECS
        info = _run_info(args)
        info = RunInfo(run_id=info.run_id, created=info.created,
                       git_sha=info.git_sha,
                       context={"trials": args.trials, "seed": args.seed,
                                "frames": args.frames})
        reports = run_streaming(
            codecs=codecs,
            loss_rates=tuple(float(v) for v in args.loss.split(",")),
            burst_lengths=tuple(float(v) for v in args.burst.split(",")),
            fec_groups=tuple(int(v) for v in args.fec.split(",")),
            trials=args.trials,
            seed=args.seed,
            frames=args.frames,
            conceal=args.conceal,
            progress=_progress,
        )
        _emit(args, render_streaming(reports),
              records_from_streaming(reports, info), info)
        failed = [report for report in reports
                  if report.trials - report.graceful > 0]
        if failed:
            print(f"hdvb-bench streaming: {len(failed)} grid point(s) "
                  f"with non-graceful receptions", file=sys.stderr)
            return 1
    elif args.command == "serve":
        from repro.observe.record import records_from_serve
        from repro.origin.bench import render_serve, run_serve

        seeds = tuple(int(value) for value in args.seeds.split(","))
        info = _run_info(args)
        info = RunInfo(run_id=info.run_id, created=info.created,
                       git_sha=info.git_sha,
                       context={"clients": args.clients,
                                "seeds": args.seeds,
                                "frames": args.frames,
                                "chaos": args.chaos})
        events_path = getattr(args, "events", "")
        if events_path:
            import os as _os

            from repro.telemetry import events as _events
            from repro.telemetry import flightrec as _flightrec

            _events.reset()
            _flightrec.recorder.configure(
                dump_dir=_os.path.join(args.store, "flightrec"))
            _events.enable()
        session_config = None
        if args.failure_budget >= 0:
            from repro.origin.session import SessionConfig
            session_config = SessionConfig(failure_budget=args.failure_budget)
        try:
            reports = run_serve(
                clients=args.clients,
                seeds=seeds,
                codecs=tuple(args.codecs.split(",")),
                frames=args.frames,
                max_sessions=args.max_sessions or None,
                chaos_rate=args.chaos,
                slow_reader_rate=args.slow_readers,
                max_loss=args.max_loss,
                ramp_seconds=args.ramp,
                session=session_config,
                progress=_progress,
            )
        finally:
            if events_path:
                log = _events.current_log()
                # An event log is a report, not durable state: the next
                # run with --events rewrites it whole.
                with open(events_path, "w",  # hdvb: disable=HDVB160,HDVB190
                          encoding="utf-8") as handle:
                    handle.write(log.to_jsonl(canonical=True))
                print(f"hdvb-bench serve: wrote {len(log)} event(s) to "
                      f"{events_path}", file=sys.stderr)
                _events.disable()
        _emit(args, render_serve(reports),
              records_from_serve(reports, info), info)
    elif args.command == "orchestrate":
        return _run_orchestrate(args)
    elif args.command == "performance":
        _run_performance_command(args)
    elif args.command == "characterize":
        _run_characterize(args)
    elif args.command == "bdrate":
        _run_bdrate(args)
    return 0


def _run_orchestrate(args) -> int:
    """``hdvb-bench orchestrate``: spec -> cells -> cache -> store.

    Cell records always flow through the history store (that is what
    makes runs resumable); ``--record`` additionally appends the
    run-level summary records that the OBS207 gate reads.  The default
    run id derives from the spec fingerprint, so rerunning an unchanged
    spec resumes it; pass ``--run-id`` to start a fresh campaign.
    Exits 1 when any cell failed.
    """
    from repro.observe.store import HistoryStore
    from repro.orchestrate.artifacts import DEFAULT_CACHE_DIR, ArtifactCache
    from repro.orchestrate.report import (
        render_orchestrate, summarize, summary_records,
    )
    from repro.orchestrate.scheduler import (
        cell_record, load_manifest, run_cells, write_manifests,
    )
    from repro.orchestrate.spec import expand_cells, load_spec

    spec = load_spec(args.spec)
    cells = None
    if args.manifest:
        manifest_spec, fingerprint, cells = load_manifest(args.manifest)
        if fingerprint != spec.fingerprint():
            print(f"hdvb-bench orchestrate: manifest {args.manifest} was "
                  f"planned from spec {manifest_spec} [{fingerprint}], not "
                  f"{spec.name} [{spec.fingerprint()}]", file=sys.stderr)
            return 1
    if args.shards:
        paths = write_manifests(spec, expand_cells(spec), args.shards,
                                args.manifest_dir)
        for path in paths:
            print(path)
        return 0

    run_id = args.run_id or f"{spec.name}-{spec.fingerprint()}"
    info = RunInfo.capture(run_id=run_id)
    store = HistoryStore(args.store)
    cache_kwargs = {}
    if args.stale_lock_seconds is not None:
        cache_kwargs["stale_lock_seconds"] = args.stale_lock_seconds
    cache = ArtifactCache(args.cache or DEFAULT_CACHE_DIR, **cache_kwargs)
    state = run_cells(spec, store, info, cache=cache,
                      scheduler_workers=args.workers, cells=cells,
                      progress=_progress)
    summary = summarize(spec, state, cache)
    records = [cell_record(result, info, summary.spec_fingerprint)
               for result in state.results]
    records += summary_records(summary, info)
    if getattr(args, "json", False):
        print(json_module.dumps(records_document(records, run_id=run_id),
                                indent=2))
    else:
        print(render_orchestrate(summary))
    if getattr(args, "record", False):
        count = store.append_many(summary_records(summary, info))
        print(f"recorded {count} summary record(s) under run {run_id} "
              f"in {store.path} ({len(state.results)} cell records were "
              f"appended during the run)", file=sys.stderr)
    if summary.cells_failed:
        print(f"hdvb-bench orchestrate: {summary.cells_failed} cell(s) "
              f"failed", file=sys.stderr)
        return 1
    return 0


def _run_performance_command(args) -> None:
    """``hdvb-bench performance``: fps table + telemetry stage breakdown."""
    import time

    import repro.telemetry as telemetry
    from repro.bench.report import render_telemetry_section
    from repro.observe.record import records_from_performance

    config = _config_from_args(args)
    info = _run_info(args, config)
    telemetry.reset()
    telemetry.enable()
    try:
        wall_start = time.perf_counter()
        rows = run_performance(config, args.operation, args.backend,
                               progress=_progress)
        wall_seconds = time.perf_counter() - wall_start
    finally:
        telemetry.disable()

    title = f"Performance: {args.operation}, {args.backend} backend"
    text = "\n".join([
        render_performance(rows, title),
        "",
        render_telemetry_section(telemetry.current_trace(),
                                 telemetry.registry(), wall_seconds),
    ])
    snapshot = telemetry.registry().snapshot().to_dict()
    records = records_from_performance(rows, info, telemetry=snapshot)
    _emit(args, text, records, info)
    if args.trace:
        trace = telemetry.current_trace()
        metadata = {
            "tool": "hdvb-bench performance",
            "operation": args.operation,
            "backend": args.backend,
        }
        if args.trace_format == "chrome":
            payload = trace.to_chrome_json(indent=2, metadata=metadata)
        else:
            payload = trace.to_json(indent=2)
        # The trace file is a span dump for chrome://tracing, not a bench
        # result; results go through the store.
        with open(args.trace, "w", encoding="utf-8") as handle:  # hdvb: disable=HDVB160
            handle.write(payload)
        print(f"trace written to {args.trace} ({args.trace_format} format, "
              f"{len(trace)} spans)", file=sys.stderr)


def _run_bdrate(args) -> None:
    from dataclasses import replace

    from repro.bench.ratedistortion import run_rate_distortion
    from repro.common.bdrate import bd_psnr, bd_rate, rd_points_from_rows

    base = _config_from_args(args)
    info = _run_info(args, base)
    qscales = sorted(int(value) for value in args.qscales.split(","))
    all_rows = []
    for qscale in qscales:
        config = replace(base, qscale=qscale)
        all_rows.extend(run_rate_distortion(config, progress=_progress))

    anchor = "mpeg2"
    sequence = base.sequences[0]
    resolution = base.tier_names[0]
    anchor_points = rd_points_from_rows(all_rows, anchor, sequence, resolution)
    lines = [f"Bjøntegaard deltas vs {anchor} "
             f"({sequence}, {resolution}, qscales {qscales}):"]
    records: List[BenchRecord] = []
    for codec in base.codecs:
        if codec == anchor:
            continue
        points = rd_points_from_rows(all_rows, codec, sequence, resolution)
        delta_rate = bd_rate(anchor_points, points)
        delta_psnr = bd_psnr(anchor_points, points)
        lines.append(f"  {codec}: BD-rate {delta_rate:+.1f}%  "
                     f"BD-PSNR {delta_psnr:+.2f} dB")
        records.append(BenchRecord(
            run_id=info.run_id,
            bench="bdrate",
            axes={"codec": codec, "anchor": anchor,
                  "sequence": sequence, "resolution": resolution},
            metrics={"bd_rate_percent": delta_rate, "bd_psnr_db": delta_psnr},
            created=info.created,
            git_sha=info.git_sha,
            context=dict(info.context, qscales=",".join(map(str, qscales))),
        ))
    _emit(args, "\n".join(lines), records, info)


def _run_characterize(args) -> None:
    from repro.bench.characterize import (
        characterize_decode,
        characterize_encode,
        render_profile,
    )
    from repro.sequences import generate_sequence

    config = _config_from_args(args)
    info = _run_info(args, config)
    codecs = (args.codec,) if args.codec else config.codecs
    tier = config.tiers()[0]
    video = generate_sequence(
        config.sequences[0], tier.name, frames=config.frames, scale=config.scale
    )
    sections = []
    records: List[BenchRecord] = []
    for codec in codecs:
        _progress(f"characterize {codec}")
        fields = config.encoder_fields(codec, tier)
        encode_profile, stream = characterize_encode(codec, video, **fields)
        decode_profile, _ = characterize_decode(codec, stream)
        sections.append(render_profile(encode_profile))
        sections.append(render_profile(decode_profile))
        for operation, profile in (("encode", encode_profile),
                                   ("decode", decode_profile)):
            for kernel, stats in sorted(profile.kernels.items()):
                if not stats.calls:
                    continue
                records.append(BenchRecord(
                    run_id=info.run_id,
                    bench="characterize",
                    axes={"codec": codec, "operation": operation,
                          "kernel": kernel},
                    metrics={"calls": float(stats.calls),
                             "samples": float(stats.samples)},
                    created=info.created,
                    git_sha=info.git_sha,
                    context=dict(info.context),
                ))
    _emit(args, "\n\n".join(sections), records, info)


if __name__ == "__main__":
    raise SystemExit(main())
