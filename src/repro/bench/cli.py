"""``hdvb-bench``: regenerate every table and figure of the paper.

    hdvb-bench table1|table2|table3|table4   # descriptive tables
    hdvb-bench table5 [--scale 1/8 --frames 9]
    hdvb-bench figure1 [--part a|b|c|d|all] [--realtime]
    hdvb-bench speedups                      # SIMD speed-up aggregate
    hdvb-bench performance [--operation encode|decode] [--backend simd]
                           [--trace out.json]   # telemetry stage breakdown
    hdvb-bench streaming [--loss 0.02,0.05] [--burst 1,3] [--fec 0,4]
                                             # lossy-transport sweep
"""

from __future__ import annotations

import argparse
import sys
from fractions import Fraction
from typing import List, Optional

from repro.bench import commands as commands_module
from repro.bench import registry_tables
from repro.bench.config import BenchConfig
from repro.bench.performance import (
    BACKENDS,
    FIGURE1_PARTS,
    OPERATIONS,
    render_performance,
    run_figure1_part,
    run_performance,
    simd_speedups,
)
from repro.bench.ratedistortion import render_rate_distortion, run_rate_distortion
from repro.errors import ReproError


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", default="1/8",
                        help="linear tier scale, e.g. 1/8 or 1 (full size)")
    parser.add_argument("--frames", type=int, default=9,
                        help="frames per sequence (paper: 100)")
    parser.add_argument("--runs", type=int, default=3,
                        help="timed runs per measurement (paper: 5)")
    parser.add_argument("--qscale", type=int, default=5,
                        help="MPEG quantiser scale (H.264 QP follows Eq. 1)")
    parser.add_argument("--sequences", default="",
                        help="comma-separated subset of sequences")
    parser.add_argument("--tiers", default="",
                        help="comma-separated subset of resolution tiers")
    parser.add_argument("--codecs", default="",
                        help="comma-separated codecs (paper trio by default; "
                             "extensions: mjpeg, vc1)")


def _config_from_args(args) -> BenchConfig:
    fields = dict(
        scale=Fraction(args.scale),
        frames=args.frames,
        runs=args.runs,
        qscale=args.qscale,
    )
    if args.sequences:
        fields["sequences"] = tuple(args.sequences.split(","))
    if args.tiers:
        fields["tier_names"] = tuple(args.tiers.split(","))
    if getattr(args, "codecs", ""):
        fields["codecs"] = tuple(args.codecs.split(","))
    return BenchConfig(**fields)


def _progress(message: str) -> None:
    print(f"  .. {message}", file=sys.stderr)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="hdvb-bench",
        description="Regenerate the tables and figures of the HD-VideoBench paper.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("table1", help="survey of existing multimedia benchmarks")
    sub.add_parser("table2", help="the HD-VideoBench applications")
    sub.add_parser("table3", help="the input sequences")
    sub.add_parser("table4", help="execution command lines")

    t5 = sub.add_parser("table5", help="rate-distortion comparison")
    _add_config_arguments(t5)

    f1 = sub.add_parser("figure1", help="decode/encode throughput, scalar vs SIMD")
    _add_config_arguments(f1)
    f1.add_argument("--part", default="all", choices=tuple(FIGURE1_PARTS) + ("all",),
                    help="panel: a=decode scalar, b=decode simd, "
                         "c=encode scalar, d=encode simd")

    sp = sub.add_parser("speedups", help="per-codec SIMD speed-ups (decode + encode)")
    _add_config_arguments(sp)

    pf = sub.add_parser("performance",
                        help="timed encode/decode run with the telemetry "
                             "stage breakdown (where did the time go)")
    _add_config_arguments(pf)
    pf.add_argument("--operation", default="encode", choices=OPERATIONS,
                    help="what to time (default: encode)")
    pf.add_argument("--backend", default="simd", choices=BACKENDS,
                    help="kernel backend (default: simd)")
    pf.add_argument("--trace", default="", metavar="PATH",
                    help="write the span trace to PATH as JSON")
    pf.add_argument("--trace-format", default="chrome",
                    choices=("chrome", "json"),
                    help="chrome = chrome://tracing loadable (default), "
                         "json = the library's own span schema")

    ch = sub.add_parser("characterize",
                        help="per-kernel workload breakdown (encode + decode)")
    _add_config_arguments(ch)
    ch.add_argument("--codec", default="",
                    help="restrict to one codec (default: all three)")

    rb = sub.add_parser("robustness",
                        help="seeded fault sweep: graceful-failure and "
                             "concealment-success rates per codec")
    rb.add_argument("--codecs", default="",
                    help="comma-separated codecs (default: all five)")
    rb.add_argument("--trials", type=int, default=40,
                    help="corrupted streams per codec")
    rb.add_argument("--seed", type=int, default=0,
                    help="fault-injection seed")
    rb.add_argument("--frames", type=int, default=5,
                    help="frames in the benchmark clip")
    rb.add_argument("--conceal", default="copy-last",
                    help="concealment strategy for the concealed pass")

    st = sub.add_parser("streaming",
                        help="seeded lossy-transport sweep: loss rate x "
                             "burst length x FEC overhead, reporting "
                             "graceful-decode and FEC recovery rates")
    st.add_argument("--codecs", default="",
                    help="comma-separated codecs (default: all five)")
    st.add_argument("--loss", default="0.02,0.05,0.10",
                    help="comma-separated packet loss rates")
    st.add_argument("--burst", default="1,3",
                    help="comma-separated mean burst lengths (packets)")
    st.add_argument("--fec", default="0,4",
                    help="comma-separated FEC group sizes (0 = no FEC)")
    st.add_argument("--trials", type=int, default=3,
                    help="seeded channels per grid point")
    st.add_argument("--seed", type=int, default=0,
                    help="channel seed (same seed = same sweep, bit for bit)")
    st.add_argument("--frames", type=int, default=5,
                    help="frames in the benchmark clip")
    st.add_argument("--conceal", default="copy-last",
                    help="concealment strategy at the receiver")

    bd = sub.add_parser("bdrate",
                        help="Bjøntegaard deltas vs the MPEG-2 anchor "
                             "(quantiser sweep RD curves)")
    _add_config_arguments(bd)
    bd.add_argument("--qscales", default="2,4,8,16",
                    help="comma-separated quantiser sweep points (>= 4)")

    args = parser.parse_args(argv)
    try:
        return _dispatch(args)
    except ReproError as error:
        print(f"hdvb-bench: {error}", file=sys.stderr)
        return 1


def _dispatch(args) -> int:
    if args.command == "table1":
        print(registry_tables.render_table1())
    elif args.command == "table2":
        print(registry_tables.render_table2())
    elif args.command == "table3":
        print(registry_tables.render_table3())
    elif args.command == "table4":
        print(commands_module.render_table4())
    elif args.command == "table5":
        config = _config_from_args(args)
        rows = run_rate_distortion(config, progress=_progress)
        print(render_rate_distortion(rows))
    elif args.command == "figure1":
        config = _config_from_args(args)
        parts = list(FIGURE1_PARTS) if args.part == "all" else [args.part]
        for part in parts:
            operation, backend = FIGURE1_PARTS[part]
            rows = run_figure1_part(config, part, progress=_progress)
            title = f"Figure 1({part}): {operation} performance, {backend} backend"
            print(render_performance(rows, title))
            print()
    elif args.command == "speedups":
        config = _config_from_args(args)
        for operation in ("decode", "encode"):
            scalar = run_performance(config, operation, "scalar", progress=_progress)
            simd = run_performance(config, operation, "simd", progress=_progress)
            print(f"{operation} SIMD speed-ups:")
            for codec, value in simd_speedups(scalar, simd).items():
                print(f"  {codec}: {value:.2f}x")
    elif args.command == "robustness":
        from repro.robustness.bench import (
            ALL_CODECS,
            render_robustness,
            run_robustness,
        )

        codecs = tuple(args.codecs.split(",")) if args.codecs else ALL_CODECS
        reports = run_robustness(
            codecs=codecs,
            trials=args.trials,
            seed=args.seed,
            frames=args.frames,
            conceal=args.conceal,
            progress=_progress,
        )
        print(render_robustness(reports))
    elif args.command == "streaming":
        from repro.robustness.bench import ALL_CODECS
        from repro.transport.bench import render_streaming, run_streaming

        codecs = tuple(args.codecs.split(",")) if args.codecs else ALL_CODECS
        reports = run_streaming(
            codecs=codecs,
            loss_rates=tuple(float(v) for v in args.loss.split(",")),
            burst_lengths=tuple(float(v) for v in args.burst.split(",")),
            fec_groups=tuple(int(v) for v in args.fec.split(",")),
            trials=args.trials,
            seed=args.seed,
            frames=args.frames,
            conceal=args.conceal,
            progress=_progress,
        )
        print(render_streaming(reports))
    elif args.command == "performance":
        _run_performance_command(args)
    elif args.command == "characterize":
        _run_characterize(args)
    elif args.command == "bdrate":
        _run_bdrate(args)
    return 0


def _run_performance_command(args) -> None:
    """``hdvb-bench performance``: fps table + telemetry stage breakdown."""
    import time

    import repro.telemetry as telemetry
    from repro.bench.report import render_telemetry_section

    config = _config_from_args(args)
    telemetry.reset()
    telemetry.enable()
    try:
        wall_start = time.perf_counter()
        rows = run_performance(config, args.operation, args.backend,
                               progress=_progress)
        wall_seconds = time.perf_counter() - wall_start
    finally:
        telemetry.disable()

    title = f"Performance: {args.operation}, {args.backend} backend"
    print(render_performance(rows, title))
    print()
    print(render_telemetry_section(telemetry.current_trace(),
                                   telemetry.registry(), wall_seconds))
    if args.trace:
        trace = telemetry.current_trace()
        metadata = {
            "tool": "hdvb-bench performance",
            "operation": args.operation,
            "backend": args.backend,
        }
        if args.trace_format == "chrome":
            payload = trace.to_chrome_json(indent=2, metadata=metadata)
        else:
            payload = trace.to_json(indent=2)
        with open(args.trace, "w", encoding="utf-8") as handle:
            handle.write(payload)
        print(f"trace written to {args.trace} ({args.trace_format} format, "
              f"{len(trace)} spans)", file=sys.stderr)


def _run_bdrate(args) -> None:
    from dataclasses import replace

    from repro.bench.ratedistortion import run_rate_distortion
    from repro.common.bdrate import bd_psnr, bd_rate, rd_points_from_rows

    base = _config_from_args(args)
    qscales = sorted(int(value) for value in args.qscales.split(","))
    all_rows = []
    for qscale in qscales:
        config = replace(base, qscale=qscale)
        all_rows.extend(run_rate_distortion(config, progress=_progress))

    anchor = "mpeg2"
    sequence = base.sequences[0]
    resolution = base.tier_names[0]
    anchor_points = rd_points_from_rows(all_rows, anchor, sequence, resolution)
    print(f"Bjøntegaard deltas vs {anchor} "
          f"({sequence}, {resolution}, qscales {qscales}):")
    for codec in base.codecs:
        if codec == anchor:
            continue
        points = rd_points_from_rows(all_rows, codec, sequence, resolution)
        print(f"  {codec}: BD-rate {bd_rate(anchor_points, points):+.1f}%  "
              f"BD-PSNR {bd_psnr(anchor_points, points):+.2f} dB")


def _run_characterize(args) -> None:
    from repro.bench.characterize import (
        characterize_decode,
        characterize_encode,
        render_profile,
    )
    from repro.sequences import generate_sequence

    config = _config_from_args(args)
    codecs = (args.codec,) if args.codec else config.codecs
    tier = config.tiers()[0]
    video = generate_sequence(
        config.sequences[0], tier.name, frames=config.frames, scale=config.scale
    )
    for codec in codecs:
        _progress(f"characterize {codec}")
        fields = config.encoder_fields(codec, tier)
        encode_profile, stream = characterize_encode(codec, video, **fields)
        decode_profile, _ = characterize_decode(codec, stream)
        print(render_profile(encode_profile))
        print()
        print(render_profile(decode_profile))
        print()


if __name__ == "__main__":
    raise SystemExit(main())
