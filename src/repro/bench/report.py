"""Plain-text rendering of benchmark tables, bar charts and telemetry."""

from __future__ import annotations

import re
from typing import Iterable, List, Optional, Sequence

#: A table cell that reads as a measurement: an optionally signed number,
#: optionally followed by a unit suffix (``%``, ``dB``, ``fps``, ``x``,
#: ``kbit/s``).  Placeholders (``-``, empty) do not break a numeric column.
_NUMERIC_CELL = re.compile(
    r"^[+-]?\d+(\.\d+)?\s*(%|dB|fps|x|kbit/s)?$"
)


def _is_numeric_column(cells: Sequence[str]) -> bool:
    seen_number = False
    for cell in cells:
        text = cell.strip()
        if text in ("", "-"):
            continue
        if not _NUMERIC_CELL.match(text):
            return False
        seen_number = True
    return seen_number


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Render an aligned ASCII table.

    Columns whose cells are all numeric (a value with an optional unit)
    are right-aligned so magnitudes line up — a 4-digit fps next to a
    2-digit fps reads off the same column edge instead of drifting left.
    """
    materialised: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    numeric = [
        _is_numeric_column([row[index] for row in materialised if index < len(row)])
        for index in range(len(headers))
    ]

    def align(cell: str, index: int) -> str:
        if numeric[index]:
            return cell.rjust(widths[index])
        return cell.ljust(widths[index])

    lines = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * width for width in widths)
    lines.append(" | ".join(align(h, i) for i, h in enumerate(headers)))
    lines.append(separator)
    for row in materialised:
        lines.append(" | ".join(align(cell, i) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_bars(labels: Sequence[str], values: Sequence[float],
                unit: str = "fps", width: int = 46,
                reference: float = 0.0, reference_label: str = "") -> str:
    """Render a horizontal ASCII bar chart (Figure 1 style).

    ``reference`` draws a marker column (the 25 fps real-time line in the
    paper's plots).
    """
    if not labels:
        return "(no data)"
    peak = max(list(values) + [reference if reference else 0.0])
    if peak <= 0:
        peak = 1.0
    label_width = max(len(label) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        length = int(round(width * value / peak))
        bar = "#" * length
        if reference:
            marker = int(round(width * reference / peak))
            if marker >= len(bar):
                bar = bar.ljust(marker) + "|"
        lines.append(f"{label.ljust(label_width)} {bar} {value:.2f} {unit}")
    if reference and reference_label:
        lines.append(f"{'':{label_width}} ('|' marks {reference_label})")
    return "\n".join(lines)


def render_telemetry_section(trace, registry,
                             wall_seconds: Optional[float] = None) -> str:
    """Render the telemetry section of a performance report.

    ``trace`` is a :class:`repro.telemetry.Trace`, ``registry`` a
    :class:`repro.telemetry.MetricsRegistry`.  Produces the Figure-1-style
    stage table (where did the time go), a coverage line against
    ``wall_seconds``, and the collected counters/gauges/histograms.
    """
    from repro.telemetry.profile import coverage, render_stage_table, stage_table

    rows = stage_table(trace)
    if not rows:
        return "Telemetry: no spans recorded (is telemetry enabled?)"
    parts = [render_stage_table(rows, title="Telemetry: stage profile")]
    if wall_seconds is not None and wall_seconds > 0:
        covered = coverage(trace, wall_seconds)
        parts.append(
            f"Stage coverage: root spans account for {100.0 * covered:.1f}% "
            f"of {wall_seconds:.3f}s measured wall time"
        )
    metric_rows = []
    for name in registry.names():
        instrument = registry.get(name)
        data = instrument.to_dict()
        if data["kind"] == "histogram":
            value = (f"count={data['count']} sum={data['sum']:.0f} "
                     f"mean={instrument.mean:.1f}")
        elif data["kind"] == "gauge":
            value = f"{data['value']} (max {data['max']})"
        else:
            value = str(data["value"])
        metric_rows.append((name, data["kind"], value))
    if metric_rows:
        parts.append(render_table(["metric", "kind", "value"], metric_rows,
                                  title="Telemetry: metrics"))
    if trace.dropped:
        parts.append(f"(note: {trace.dropped} spans dropped at the "
                     f"{trace.max_spans}-span buffer cap)")
    return "\n\n".join(parts)
