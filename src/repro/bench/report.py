"""Plain-text rendering of benchmark tables and bar charts."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Render an aligned ASCII table."""
    materialised: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * width for width in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(separator)
    for row in materialised:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_bars(labels: Sequence[str], values: Sequence[float],
                unit: str = "fps", width: int = 46,
                reference: float = 0.0, reference_label: str = "") -> str:
    """Render a horizontal ASCII bar chart (Figure 1 style).

    ``reference`` draws a marker column (the 25 fps real-time line in the
    paper's plots).
    """
    if not labels:
        return "(no data)"
    peak = max(list(values) + [reference if reference else 0.0])
    if peak <= 0:
        peak = 1.0
    label_width = max(len(label) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        length = int(round(width * value / peak))
        bar = "#" * length
        if reference:
            marker = int(round(width * reference / peak))
            if marker >= len(bar):
                bar = bar.ljust(marker) + "|"
        lines.append(f"{label.ljust(label_width)} {bar} {value:.2f} {unit}")
    if reference and reference_label:
        lines.append(f"{'':{label_width}} ('|' marks {reference_label})")
    return "\n".join(lines)
