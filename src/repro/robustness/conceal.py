"""Error-concealment strategies for corrupt or missing pictures.

When the hardened decode loop (:mod:`repro.robustness.engine`) fails to
decode a picture, a :class:`Concealer` synthesises a replacement frame so
the stream degrades instead of aborting:

``skip``       drop the picture from the output (frame count shrinks)
``copy-last``  repeat the most recently decoded picture (freeze frame)
``grey``       mid-grey fill -- the classic "lost I picture" fallback
``motion``     motion-projected copy: estimate the global motion between
               the two most recent reference frames and continue it one
               frame forward; falls back to copy/grey where no references
               exist (e.g. a lost leading I picture)

Every strategy returns a *new* :class:`~repro.codecs.frames.WorkingFrame`
(never an alias of a reference), so concealed frames can safely enter the
reference chain for subsequent inter pictures.
"""

from __future__ import annotations

import abc
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.codecs.frames import WorkingFrame
from repro.errors import ConfigError

#: Strategy names accepted by ``get_concealer`` (and the CLIs).
CONCEAL_STRATEGIES: Tuple[str, ...] = ("skip", "copy-last", "grey", "motion")

#: Mid-scale sample value used for grey fill.
GREY_LEVEL = 128


def _grey_frame(width: int, height: int) -> WorkingFrame:
    return WorkingFrame(
        np.full((height, width), GREY_LEVEL, dtype=np.int64),
        np.full((height // 2, width // 2), GREY_LEVEL, dtype=np.int64),
        np.full((height // 2, width // 2), GREY_LEVEL, dtype=np.int64),
    )


def _copy_frame(frame: WorkingFrame) -> WorkingFrame:
    return WorkingFrame(frame.y.copy(), frame.u.copy(), frame.v.copy())


def _shift_plane(plane: np.ndarray, dx: int, dy: int) -> np.ndarray:
    """Translate a plane by (dx, dy) with edge replication."""
    if dx == 0 and dy == 0:
        return plane.copy()
    pad_y, pad_x = abs(dy), abs(dx)
    padded = np.pad(plane, ((pad_y, pad_y), (pad_x, pad_x)), mode="edge")
    y0 = pad_y - dy
    x0 = pad_x - dx
    height, width = plane.shape
    return padded[y0 : y0 + height, x0 : x0 + width].copy()


def estimate_global_motion(
    previous: WorkingFrame, current: WorkingFrame, radius: int = 3
) -> Tuple[int, int]:
    """Estimate the dominant translation from ``previous`` to ``current``.

    Exhaustive SAD search on 4x-decimated luma; returns full-pel (dx, dy).
    Cheap by construction -- concealment runs on the error path, not the
    hot path -- and good enough to carry a pan across a lost picture.
    """
    coarse_prev = previous.y[::4, ::4]
    coarse_cur = current.y[::4, ::4]
    best = (0, 0)
    best_sad: Optional[int] = None
    for dy in range(-radius, radius + 1):
        for dx in range(-radius, radius + 1):
            shifted = _shift_plane(coarse_prev, dx, dy)
            sad = int(np.abs(shifted - coarse_cur).sum())
            if best_sad is None or sad < best_sad:
                best_sad = sad
                best = (dx, dy)
    return (4 * best[0], 4 * best[1])


class Concealer(abc.ABC):
    """Synthesises a replacement for a picture that failed to decode."""

    name = ""

    @abc.abstractmethod
    def conceal(
        self,
        stream,
        picture,
        references: Dict[int, WorkingFrame],
        last_recon: Optional[WorkingFrame],
    ) -> Optional[WorkingFrame]:
        """Return a replacement frame, or ``None`` to skip the picture."""

    # ------------------------------------------------------------------

    def _nearest_reference(
        self, references: Dict[int, WorkingFrame]
    ) -> Optional[WorkingFrame]:
        if not references:
            return None
        return references[max(references)]

    def fill_missing(
        self,
        stream,
        display_index: int,
        previous: Optional[WorkingFrame],
    ) -> Optional[WorkingFrame]:
        """Replacement for a display-order hole (a dropped picture).

        Default: repeat the nearest earlier output frame, grey when the
        hole is at the head of the stream.  ``skip`` overrides to ``None``.
        """
        if previous is not None:
            return _copy_frame(previous)
        return _grey_frame(stream.width, stream.height)


class SkipConcealer(Concealer):
    """Drop corrupt pictures; the output simply has fewer frames."""

    name = "skip"

    def conceal(self, stream, picture, references, last_recon):
        return None

    def fill_missing(self, stream, display_index, previous):
        return None


class CopyLastConcealer(Concealer):
    """Freeze-frame: repeat the most recently decoded picture."""

    name = "copy-last"

    def conceal(self, stream, picture, references, last_recon):
        source = last_recon or self._nearest_reference(references)
        if source is None:
            return _grey_frame(stream.width, stream.height)
        return _copy_frame(source)


class GreyConcealer(Concealer):
    """Mid-grey fill: the visible-but-safe choice for lost I pictures."""

    name = "grey"

    def conceal(self, stream, picture, references, last_recon):
        return _grey_frame(stream.width, stream.height)


class MotionConcealer(Concealer):
    """Motion-projected copy for P/B pictures, grey for lost I pictures."""

    name = "motion"

    def conceal(self, stream, picture, references, last_recon):
        from repro.common.gop import FrameType

        ordered = sorted(references)
        if picture.frame_type is FrameType.I or not ordered:
            # An I picture carries fresh content; projecting old motion
            # into it is wrong.  Freeze on the last output if any, else
            # grey fill.
            if picture.frame_type is not FrameType.I and last_recon is not None:
                return _copy_frame(last_recon)
            if last_recon is None and not ordered:
                return _grey_frame(stream.width, stream.height)
            return _copy_frame(last_recon or references[ordered[-1]])
        newest = references[ordered[-1]]
        if len(ordered) < 2:
            return _copy_frame(newest)
        dx, dy = estimate_global_motion(references[ordered[-2]], newest)
        # ``estimate_global_motion`` spans the anchor gap (bframes + 1
        # display frames); scale down to one frame of continued motion.
        span = max(1, ordered[-1] - ordered[-2])
        step_x = int(round(dx / span))
        step_y = int(round(dy / span))
        return WorkingFrame(
            _shift_plane(newest.y, step_x, step_y),
            _shift_plane(newest.u, step_x // 2, step_y // 2),
            _shift_plane(newest.v, step_x // 2, step_y // 2),
        )


_STRATEGIES = {
    concealer.name: concealer
    for concealer in (SkipConcealer, CopyLastConcealer, GreyConcealer, MotionConcealer)
}


def get_concealer(
    strategy: Union[None, str, Concealer]
) -> Optional[Concealer]:
    """Resolve a strategy name to a :class:`Concealer` instance.

    ``None``, ``"none"`` and ``"strict"`` select strict decoding (no
    concealment); a :class:`Concealer` instance passes through unchanged.
    """
    if strategy is None or strategy in ("none", "strict"):
        return None
    if isinstance(strategy, Concealer):
        return strategy
    concealer_cls = _STRATEGIES.get(strategy)
    if concealer_cls is None:
        raise ConfigError(
            f"unknown concealment strategy {strategy!r} "
            f"(known: {', '.join(CONCEAL_STRATEGIES)})"
        )
    return concealer_cls()
