"""The hardened per-picture decode loop shared by every codec decoder.

:meth:`repro.codecs.base.VideoDecoder.decode` delegates here.  The engine
owns everything the five decoders used to duplicate -- the coding-order
loop, duplicate/missing display-index detection, the reference window --
and adds the robustness layer:

* every ``decode_picture`` call runs inside a guard that normalises any
  escaping exception into a :class:`~repro.errors.ReproError` subclass
  carrying codec, picture index, frame type and bit position;
* with a concealment strategy, a failed picture is replaced instead of
  aborting the stream, the event is reported, and decoding resynchronises
  at the next intact I picture;
* display-order holes (dropped pictures) are filled after the main pass,
  so concealed decodes keep the full frame count.

Strict mode (``conceal=None``) reproduces the historical behaviour
exactly, except that the error raised is always a normalised
:class:`~repro.errors.ReproError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Union

from repro.common.gop import FrameType
from repro.common.yuv import YuvFrame, YuvSequence
from repro.errors import BitstreamError, CodecError, ConcealmentEvent, ReproError
from repro.robustness.conceal import Concealer, get_concealer
from repro.robustness.guard import (
    check_payload_present,
    check_stream_geometry,
    normalize_decode_error,
)
from repro.telemetry.metrics import registry as telemetry_registry
from repro.telemetry.trace import span as telemetry_span, state as telemetry_state

EventCallback = Callable[[ConcealmentEvent], None]


@dataclass
class DecodeResult:
    """Outcome of a hardened decode: frames plus concealment telemetry."""

    frames: YuvSequence
    events: List[ConcealmentEvent] = field(default_factory=list)

    @property
    def concealed_count(self) -> int:
        return len(self.events)

    @property
    def clean(self) -> bool:
        return not self.events


def decode_stream(
    decoder,
    stream,
    conceal: Union[None, str, Concealer] = None,
    on_event: Optional[EventCallback] = None,
    packet_context: Optional[Mapping[int, int]] = None,
) -> DecodeResult:
    """Decode ``stream`` with ``decoder`` through the hardened loop.

    ``packet_context`` maps a coding-order picture index to the first lost
    transport packet sequence number behind its damage (supplied by
    :mod:`repro.transport.receiver`); a failure on such a picture carries
    that ``packet_seq`` in its normalised :class:`~repro.errors.ReproError`.
    """
    concealer = get_concealer(conceal)
    codec = decoder.codec_name

    decoder._check_stream(stream)
    check_stream_geometry(stream.width, stream.height, stream.fps)

    references: Dict[int, object] = {}
    decoded: Dict[int, YuvFrame] = {}
    events: List[ConcealmentEvent] = []
    recon_by_display: Dict[int, object] = {}
    last_recon = None
    awaiting_resync = False

    def report(event: ConcealmentEvent) -> None:
        events.append(event)
        if telemetry_state.enabled:
            reg = telemetry_registry()
            reg.counter("decode.concealments").inc()
            reg.counter(f"decode.{codec}.concealments").inc()
        if on_event is not None:
            on_event(event)

    for coding_index, picture in enumerate(stream.pictures):
        picture_span = telemetry_span(
            f"{codec}.decode.picture",
            codec=codec,
            frame_type=picture.frame_type.name,
            display_index=picture.display_index,
            coding_index=coding_index,
        )
        with picture_span:
            decoder.begin_picture()
            recon = None
            failure: Optional[ReproError] = None
            try:
                if picture.display_index in decoded:
                    raise CodecError(
                        f"duplicate display index {picture.display_index} in stream"
                    )
                check_payload_present(picture.payload)
                recon = decoder.decode_picture(stream, picture, references)
                if recon.width != stream.width or recon.height != stream.height:
                    raise BitstreamError(
                        f"decoded picture is {recon.width}x{recon.height}, "
                        f"stream header says {stream.width}x{stream.height}"
                    )
            except Exception as error:  # normalised below; never escapes raw
                failure = normalize_decode_error(
                    error,
                    codec=codec,
                    picture_index=coding_index,
                    frame_type=picture.frame_type,
                    bit_position=decoder.bit_position(),
                    packet_seq=(packet_context or {}).get(coding_index),
                )

            if failure is not None:
                picture_span.set(error=type(failure).__name__)
                if failure.packet_seq is not None:
                    picture_span.set(packet_seq=failure.packet_seq)
                if concealer is None:
                    raise failure
                picture_span.set(concealed=concealer.name)
                replacement = concealer.conceal(stream, picture, references, last_recon)
                report(
                    ConcealmentEvent(
                        codec=codec,
                        strategy=concealer.name,
                        display_index=picture.display_index,
                        picture_index=coding_index,
                        frame_type=picture.frame_type,
                        error=failure,
                    )
                )
                awaiting_resync = True
                if replacement is None or picture.display_index in decoded:
                    continue
                recon = replacement
            elif awaiting_resync and picture.frame_type is FrameType.I:
                # An intact I picture takes no references: prediction drift
                # introduced by concealed anchors ends here.
                awaiting_resync = False

            decoded[picture.display_index] = recon.to_yuv()
            recon_by_display[picture.display_index] = recon
            last_recon = recon
            if picture.frame_type.is_anchor:
                references[picture.display_index] = recon
                window = decoder.reference_window()
                for key in sorted(references)[:-window]:
                    del references[key]

    if concealer is not None and decoded:
        _fill_display_holes(
            decoder, stream, concealer, decoded, recon_by_display, report
        )

    frames = [decoded[index] for index in sorted(decoded)]
    if concealer is None and sorted(decoded) != list(range(len(frames))):
        missing = next(i for i in range(len(frames)) if i not in decoded)
        raise CodecError(
            f"stream is missing display index {missing}",
            codec=codec,
            picture_index=missing,
            bit_position=0,
        )
    return DecodeResult(YuvSequence(frames, fps=stream.fps), events)


def _fill_display_holes(
    decoder,
    stream,
    concealer: Concealer,
    decoded: Dict[int, YuvFrame],
    recon_by_display: Dict[int, object],
    report: EventCallback,
) -> None:
    """Fill display-order gaps left by dropped pictures.

    A dropped *interior* picture leaves a hole in the display indices
    (``0, 1, 3, 4``); after the main pass the concealer plugs each hole
    from its nearest earlier neighbour so the sequence plays through at
    full length.
    """
    previous = None
    for index in range(max(decoded) + 1):
        if index in decoded:
            previous = recon_by_display[index]
            continue
        replacement = concealer.fill_missing(stream, index, previous)
        if replacement is None:
            continue
        decoded[index] = replacement.to_yuv()
        recon_by_display[index] = replacement
        previous = replacement
        report(
            ConcealmentEvent(
                codec=decoder.codec_name,
                strategy=concealer.name,
                display_index=index,
            )
        )
