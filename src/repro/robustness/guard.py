"""Decode guards: error normalisation and header/MV sanity checks.

Two kinds of protection live here:

* :func:`normalize_decode_error` turns *any* exception escaping a picture
  decode into a :class:`~repro.errors.ReproError` subclass carrying codec,
  picture index, frame type and bit position.  Raw ``IndexError`` /
  ``KeyError`` / ``ValueError`` / numpy errors never reach callers.

* ``read_frame_type`` / ``check_header`` / ``check_motion_vector`` detect
  corruption that happens to parse: out-of-range quantisers, impossible
  frame-type codes, motion vectors pointing outside the padded reference
  window.  Without these, damaged payloads decode into silent garbage or
  crash deep inside a kernel.

This module deliberately imports nothing from :mod:`repro.codecs`, so the
codec packages (and the shared prediction helpers) can use it freely.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.common.bitstream import BitReader
from repro.common.gop import FrameType
from repro.errors import BitstreamError, ReproError, TruncationError

#: Frame-type header code -> type, shared by every codec's picture header.
FRAME_TYPE_FROM_CODE = {0: FrameType.I, 1: FrameType.P, 2: FrameType.B}


def normalize_decode_error(
    error: BaseException,
    *,
    codec: str,
    picture_index: int,
    frame_type: Any = None,
    bit_position: Optional[int] = None,
    packet_seq: Optional[int] = None,
) -> ReproError:
    """Return ``error`` as a :class:`ReproError` with full decode context.

    An existing :class:`ReproError` keeps its class and message; missing
    context fields are filled in.  Anything else is wrapped in a
    :class:`BitstreamError` describing the original exception, so callers
    can treat every decode failure uniformly.  ``packet_seq`` (from the
    transport layer, :mod:`repro.transport`) names the first lost packet
    behind the damage, so bitstream faults and network losses share one
    error taxonomy.
    """
    if isinstance(error, ReproError):
        if error.codec is None:
            error.codec = codec
        if error.picture_index is None:
            error.picture_index = picture_index
        if error.frame_type is None:
            error.frame_type = frame_type
        if error.bit_position is None:
            error.bit_position = bit_position if bit_position is not None else 0
        if error.packet_seq is None:
            error.packet_seq = packet_seq
        return error
    wrapped = BitstreamError(
        f"decoder raised {type(error).__name__}: {error}",
        codec=codec,
        picture_index=picture_index,
        frame_type=frame_type,
        bit_position=bit_position if bit_position is not None else 0,
        packet_seq=packet_seq,
    )
    wrapped.__cause__ = error
    return wrapped


def read_frame_type(
    reader: BitReader, expected: Optional[FrameType] = None
) -> FrameType:
    """Read the 2-bit picture-type code, validating it.

    Code 3 is unassigned in every codec here; when ``expected`` (the
    container metadata) is given, a mismatch is rejected as corruption --
    the scheduling metadata and the payload header must agree.
    """
    code = reader.read_bits(2)
    frame_type = FRAME_TYPE_FROM_CODE.get(code)
    if frame_type is None:
        raise BitstreamError(f"invalid picture type code {code}")
    if expected is not None and frame_type is not expected:
        raise BitstreamError(
            f"picture type {frame_type} disagrees with container metadata "
            f"({expected})"
        )
    return frame_type


def check_header(name: str, value: int, low: int, high: int) -> int:
    """Validate a decoded header field against its legal range."""
    if not low <= value <= high:
        raise BitstreamError(
            f"header field {name}={value} outside legal range [{low}, {high}]"
        )
    return value


def check_motion_vector(mv, search_range: int, pel_scale: int) -> None:
    """Reject motion vectors outside the padded reference window.

    ``pel_scale`` is the fractional precision (2 = half-pel, 4 =
    quarter-pel).  Encoders clamp integer search to ``search_range`` and
    sub-pel refinement adds at most one more pel, so anything beyond
    ``pel_scale * (search_range + 1)`` can only come from corruption -- and
    would otherwise index outside the padded plane (wrapping silently via
    negative indices or crashing with a shape error).
    """
    limit = pel_scale * (search_range + 1)
    if abs(mv.x) > limit or abs(mv.y) > limit:
        raise BitstreamError(
            f"motion vector {mv} exceeds search range "
            f"(limit {limit} at 1/{pel_scale} pel)"
        )


def check_stream_geometry(width: int, height: int, fps: int) -> None:
    """Validate container-level stream dimensions before decoding.

    Streams normally come out of :mod:`repro.codecs.container`, whose
    header fields are attacker-controlled bytes; impossible geometry must
    fail here, not as a numpy shape error half-way through a picture.
    """
    if width <= 0 or height <= 0 or width % 16 or height % 16:
        raise BitstreamError(
            f"stream dimensions {width}x{height} are not macroblock aligned"
        )
    if width > 16384 or height > 16384:
        raise BitstreamError(f"stream dimensions {width}x{height} exceed 16384")
    if fps <= 0:
        raise BitstreamError(f"stream fps must be positive, got {fps}")


def check_payload_present(payload: bytes) -> None:
    """An empty payload is a lost packet: report it as truncation."""
    if not payload:
        raise TruncationError("picture payload is empty")
