"""Fault injection, decode hardening and error concealment.

Production decode paths consume untrusted bytes: truncated downloads, bit
errors and dropped packets are the norm, not the exception.  This package
gives the library the three tools the adaptive-streaming literature
assumes every deployed codec has:

``inject``
    Deterministic, seeded corruption models (bit flips, bursts, byte
    truncation, payload erasure/swap, picture drop) operating on
    :class:`~repro.codecs.base.EncodedVideo` streams.

``guard`` / ``engine``
    A hardened per-picture decode loop shared by every codec decoder.  Any
    exception escaping a picture decode -- ``IndexError``, ``KeyError``,
    numpy shape errors -- is normalised into a
    :class:`~repro.errors.ReproError` subclass carrying codec, picture
    index and bit position; decoded headers and motion vectors are
    sanity-checked so garbage is detected instead of propagated.

``conceal``
    Pluggable error-concealment strategies (``skip``, ``copy-last``,
    ``motion``, ``grey``) so one corrupt picture degrades the output
    instead of aborting the stream, with resynchronisation at the next
    intact I picture.

``bench``
    A seeded fuzz sweep per codec reporting graceful-failure rate,
    concealment success rate and post-concealment PSNR delta -- the
    regression-checkable resilience score (``hdvb-bench robustness``).
"""

from repro.errors import ConcealmentEvent, TruncationError
from repro.robustness.conceal import (
    CONCEAL_STRATEGIES,
    Concealer,
    get_concealer,
)
from repro.robustness.engine import DecodeResult, decode_stream
from repro.robustness.guard import normalize_decode_error
from repro.robustness.inject import (
    FAULT_MODELS,
    Fault,
    FaultInjector,
    burst_flip,
    drop_picture,
    erase_payload,
    flip_bit,
    swap_payloads,
    truncate_payload,
)

__all__ = [
    "CONCEAL_STRATEGIES",
    "ConcealmentEvent",
    "Concealer",
    "DecodeResult",
    "FAULT_MODELS",
    "Fault",
    "FaultInjector",
    "TruncationError",
    "burst_flip",
    "decode_stream",
    "drop_picture",
    "erase_payload",
    "flip_bit",
    "get_concealer",
    "normalize_decode_error",
    "swap_payloads",
    "truncate_payload",
]
