"""Deterministic, seeded fault injection on encoded streams.

Corruption models (``FAULT_MODELS``):

``bitflip``   flip one bit of one picture payload
``burst``     flip a contiguous run of bits (burst error)
``truncate``  cut a payload short (partial download)
``erase``     replace a payload with zero bytes (lost packet; the picture's
              scheduling metadata survives, as it would in a container)
``swap``      exchange the payloads of two pictures (reordered packets)
``drop``      remove a picture entirely from the stream

Every function is pure: the input stream is never mutated, a corrupted
copy is returned.  :class:`FaultInjector` drives the models from a seeded
``random.Random`` so fuzz sweeps are exactly reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.codecs.base import EncodedPicture, EncodedVideo
from repro.errors import ConfigError

FAULT_MODELS: Tuple[str, ...] = (
    "bitflip",
    "burst",
    "truncate",
    "erase",
    "swap",
    "drop",
)


@dataclass(frozen=True)
class Fault:
    """A description of one injected fault (for logs and reports)."""

    model: str
    picture_index: int      # coding-order index of the (first) hit picture
    display_index: int
    position: int = 0       # bit offset (flips) or byte count kept (truncate)
    length: int = 1         # bits flipped / pictures involved

    def __str__(self) -> str:
        detail = {
            "bitflip": f"bit {self.position}",
            "burst": f"bits {self.position}..{self.position + self.length - 1}",
            "truncate": f"kept {self.position} bytes",
            "erase": "payload erased",
            "swap": f"swapped with picture {self.length}",
            "drop": "picture removed",
        }[self.model]
        return (
            f"{self.model} on picture {self.picture_index} "
            f"(display {self.display_index}): {detail}"
        )


def _copy_with(stream: EncodedVideo, pictures: List[EncodedPicture]) -> EncodedVideo:
    return EncodedVideo(
        codec=stream.codec,
        width=stream.width,
        height=stream.height,
        fps=stream.fps,
        pictures=pictures,
    )


def _replace_payload(
    stream: EncodedVideo, picture_index: int, payload: bytes
) -> EncodedVideo:
    pictures = list(stream.pictures)
    old = pictures[picture_index]
    pictures[picture_index] = EncodedPicture(payload, old.display_index, old.frame_type)
    return _copy_with(stream, pictures)


def _check_picture_index(stream: EncodedVideo, picture_index: int) -> EncodedPicture:
    if not 0 <= picture_index < len(stream.pictures):
        raise ConfigError(
            f"picture index {picture_index} outside stream of "
            f"{len(stream.pictures)} pictures"
        )
    return stream.pictures[picture_index]


def flip_bit(stream: EncodedVideo, picture_index: int, bit: int) -> EncodedVideo:
    """Flip one bit of one picture payload."""
    return burst_flip(stream, picture_index, bit, 1)


def burst_flip(
    stream: EncodedVideo, picture_index: int, bit: int, length: int
) -> EncodedVideo:
    """Flip ``length`` consecutive bits starting at bit offset ``bit``."""
    picture = _check_picture_index(stream, picture_index)
    payload = bytearray(picture.payload)
    total_bits = 8 * len(payload)
    if length < 1:
        raise ConfigError(f"burst length must be >= 1, got {length}")
    if not 0 <= bit < total_bits:
        raise ConfigError(
            f"bit offset {bit} outside payload of {total_bits} bits"
        )
    for offset in range(bit, min(bit + length, total_bits)):
        payload[offset >> 3] ^= 0x80 >> (offset & 7)
    return _replace_payload(stream, picture_index, bytes(payload))


def truncate_payload(
    stream: EncodedVideo, picture_index: int, keep_bytes: int
) -> EncodedVideo:
    """Cut a payload down to its first ``keep_bytes`` bytes."""
    picture = _check_picture_index(stream, picture_index)
    if keep_bytes < 0:
        raise ConfigError(f"keep_bytes must be >= 0, got {keep_bytes}")
    return _replace_payload(stream, picture_index, picture.payload[:keep_bytes])


def erase_payload(stream: EncodedVideo, picture_index: int) -> EncodedVideo:
    """Replace a payload with zero bytes (a lost packet)."""
    _check_picture_index(stream, picture_index)
    return _replace_payload(stream, picture_index, b"")


def swap_payloads(stream: EncodedVideo, first: int, second: int) -> EncodedVideo:
    """Exchange the payloads of two pictures, keeping their metadata."""
    a = _check_picture_index(stream, first)
    b = _check_picture_index(stream, second)
    pictures = list(stream.pictures)
    pictures[first] = EncodedPicture(b.payload, a.display_index, a.frame_type)
    pictures[second] = EncodedPicture(a.payload, b.display_index, b.frame_type)
    return _copy_with(stream, pictures)


def drop_picture(stream: EncodedVideo, picture_index: int) -> EncodedVideo:
    """Remove one picture from the stream entirely."""
    _check_picture_index(stream, picture_index)
    pictures = list(stream.pictures)
    del pictures[picture_index]
    return _copy_with(stream, pictures)


class FaultInjector:
    """Seeded generator of corrupted streams.

    >>> injector = FaultInjector(seed=7)
    >>> corrupted, fault = injector.inject(stream)          # doctest: +SKIP

    The same seed always produces the same sequence of faults, so a fuzz
    failure is reproducible from its (seed, trial) pair alone.
    """

    def __init__(self, seed: int = 0, models: Optional[Sequence[str]] = None) -> None:
        for model in models or ():
            if model not in FAULT_MODELS:
                raise ConfigError(
                    f"unknown fault model {model!r} (known: {', '.join(FAULT_MODELS)})"
                )
        self.seed = seed
        self.models: Tuple[str, ...] = tuple(models) if models else FAULT_MODELS
        self._rng = random.Random(seed)

    def _pick_payload_picture(self, stream: EncodedVideo) -> int:
        """A random picture that still has payload bytes to corrupt."""
        candidates = [
            index
            for index, picture in enumerate(stream.pictures)
            if len(picture.payload) > 0
        ]
        if not candidates:
            raise ConfigError("stream has no non-empty payloads to corrupt")
        return self._rng.choice(candidates)

    def _pick_droppable_picture(self, stream: EncodedVideo) -> int:
        """A random picture other than the last display frame.

        Losing the final display frame is indistinguishable from the
        stream simply ending earlier, so ``drop`` keeps it intact; that
        way concealment can always restore the full display length.
        """
        last_display = max(p.display_index for p in stream.pictures)
        candidates = [
            index
            for index, picture in enumerate(stream.pictures)
            if picture.display_index != last_display
        ]
        if not candidates:
            raise ConfigError("stream too short to drop a picture from")
        return self._rng.choice(candidates)

    def inject(
        self, stream: EncodedVideo, model: Optional[str] = None
    ) -> Tuple[EncodedVideo, Fault]:
        """Apply one randomly parameterised fault; returns (stream, fault)."""
        rng = self._rng
        model = model or rng.choice(self.models)
        if model in ("bitflip", "burst"):
            index = self._pick_payload_picture(stream)
            picture = stream.pictures[index]
            total_bits = 8 * len(picture.payload)
            bit = rng.randrange(total_bits)
            length = 1 if model == "bitflip" else rng.randint(2, 32)
            corrupted = burst_flip(stream, index, bit, length)
            fault = Fault(model, index, picture.display_index, bit, length)
        elif model == "truncate":
            index = self._pick_payload_picture(stream)
            picture = stream.pictures[index]
            keep = rng.randrange(len(picture.payload))
            corrupted = truncate_payload(stream, index, keep)
            fault = Fault(model, index, picture.display_index, keep)
        elif model == "erase":
            index = rng.randrange(len(stream.pictures))
            picture = stream.pictures[index]
            corrupted = erase_payload(stream, index)
            fault = Fault(model, index, picture.display_index)
        elif model == "swap":
            if len(stream.pictures) < 2:
                raise ConfigError("swap needs at least two pictures")
            first, second = rng.sample(range(len(stream.pictures)), 2)
            corrupted = swap_payloads(stream, first, second)
            fault = Fault(
                model, first, stream.pictures[first].display_index, length=second
            )
        elif model == "drop":
            index = self._pick_droppable_picture(stream)
            picture = stream.pictures[index]
            corrupted = drop_picture(stream, index)
            fault = Fault(model, index, picture.display_index)
        else:
            raise ConfigError(
                f"unknown fault model {model!r} (known: {', '.join(FAULT_MODELS)})"
            )
        return corrupted, fault

    def sweep(self, stream: EncodedVideo, trials: int):
        """Yield ``trials`` independent (corrupted stream, fault) pairs."""
        for _ in range(trials):
            yield self.inject(stream)
