"""Resilience benchmark: seeded fault sweeps over every codec.

For each codec a tiny synthetic clip is encoded once, then a seeded
:class:`~repro.robustness.inject.FaultInjector` produces ``trials``
corrupted copies of the stream.  Each copy is decoded twice:

* **strict** (``conceal=None``) -- the decode must either succeed (a
  benign corruption) or raise a :class:`~repro.errors.ReproError`
  subclass carrying codec, picture index and bit position.  Anything
  else (a raw ``IndexError``, a hang, a silent crash) counts against the
  graceful-failure rate.
* **concealed** -- the decode must always return a full-length sequence.
  The post-concealment quality is reported as the PSNR delta against the
  clean decode of the same stream (0 dB when the corruption was benign).

Exposed through ``hdvb-bench robustness`` and exercised by
``benchmarks/test_robustness.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, ClassVar, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.codecs import CODEC_NAMES, EXTENSION_CODEC_NAMES, get_decoder, get_encoder
from repro.common.metrics import PSNR_IDENTICAL, sequence_psnr
from repro.common.yuv import YuvFrame, YuvSequence
from repro.errors import ConfigError, ReproError
from repro.robustness.engine import decode_stream
from repro.robustness.inject import FaultInjector

#: Codecs the benchmark sweeps by default: the paper trio plus extensions.
ALL_CODECS: Tuple[str, ...] = CODEC_NAMES + EXTENSION_CODEC_NAMES

#: Per-codec quality knob for the tiny benchmark clip (matched subjective
#: operating points; the absolute value is irrelevant to resilience).
_QUALITY_FIELDS: Dict[str, Dict[str, int]] = {
    "mpeg2": {"qscale": 5},
    "mpeg4": {"qscale": 5},
    "vc1": {"qscale": 5},
    "h264": {"qp": 26},
    "mjpeg": {"quality": 80},
}


def make_bench_clip(width: int = 32, height: int = 32, frames: int = 5,
                    seed: int = 11) -> YuvSequence:
    """A deterministic translating clip, small enough for fast sweeps."""
    rng = np.random.default_rng(seed)
    margin = frames + 8
    world_h, world_w = height + 2 * margin, width + 2 * margin
    coarse = rng.integers(32, 224, (world_h // 8 + 2, world_w // 8 + 2))
    world = np.kron(coarse, np.ones((8, 8)))[:world_h, :world_w]
    built = []
    for index in range(frames):
        luma = world[
            margin + index : margin + index + height,
            margin + index : margin + index + width,
        ].astype(np.uint8)
        built.append(
            YuvFrame(luma, luma[::2, ::2] // 2 + 64, 255 - luma[::2, ::2] // 2)
        )
    return YuvSequence(built, fps=25, name="robustness_clip")


def encoder_fields(codec: str, width: int, height: int) -> Dict[str, int]:
    """Encoder configuration for the benchmark clip."""
    if codec not in _QUALITY_FIELDS:
        raise ConfigError(
            f"unknown codec {codec!r} (known: {', '.join(ALL_CODECS)})"
        )
    fields = dict(width=width, height=height, **_QUALITY_FIELDS[codec])
    if codec != "mjpeg":
        fields["search_range"] = 4
    return fields


@dataclass
class RobustnessReport:
    """Fault-sweep outcome for one codec."""

    codec: str
    trials: int
    conceal: str
    #: strict decodes that ended in a ReproError with full decode context
    graceful_failures: int = 0
    #: strict decodes that succeeded despite the fault (benign corruption)
    benign: int = 0
    #: strict decodes that escaped with a raw/contextless exception
    raw_escapes: int = 0
    #: concealed decodes that returned the full frame count
    conceal_successes: int = 0
    #: pictures replaced or filled across all concealed decodes
    concealed_pictures: int = 0
    #: combined-PSNR delta of each concealed decode vs the clean decode (dB)
    psnr_deltas: List[float] = field(default_factory=list)
    #: repr() of the first few raw escapes / concealment crashes, so a
    #: non-zero raw count in a sweep is diagnosable from the report alone
    failure_examples: List[str] = field(default_factory=list)

    #: cap on retained examples; the counters keep the full totals
    MAX_FAILURE_EXAMPLES: ClassVar[int] = 5

    def record_failure(self, kind: str, error: BaseException) -> None:
        """Keep a bounded sample of unexpected errors for diagnosis."""
        if len(self.failure_examples) < self.MAX_FAILURE_EXAMPLES:
            self.failure_examples.append(f"{kind}: {error!r}")

    @property
    def graceful_rate(self) -> float:
        """Fraction of strict decodes that failed cleanly or were benign."""
        if not self.trials:
            return 1.0
        return (self.graceful_failures + self.benign) / self.trials

    @property
    def conceal_rate(self) -> float:
        if not self.trials:
            return 1.0
        return self.conceal_successes / self.trials

    @property
    def mean_psnr_delta(self) -> float:
        if not self.psnr_deltas:
            return 0.0
        return sum(self.psnr_deltas) / len(self.psnr_deltas)

    @property
    def worst_psnr_delta(self) -> float:
        if not self.psnr_deltas:
            return 0.0
        return min(self.psnr_deltas)

    def to_record_fields(self) -> Dict[str, Dict[str, object]]:
        """The axes/metrics split :mod:`repro.observe.record` persists."""
        return {
            "axes": {"codec": self.codec, "conceal": self.conceal},
            "metrics": {
                "trials": float(self.trials),
                "graceful_rate": self.graceful_rate,
                "conceal_rate": self.conceal_rate,
                "benign": float(self.benign),
                "raw_escapes": float(self.raw_escapes),
                "concealed_pictures": float(self.concealed_pictures),
                "mean_psnr_delta_db": self.mean_psnr_delta,
                "worst_psnr_delta_db": self.worst_psnr_delta,
            },
        }


ProgressCallback = Callable[[str], None]


def run_robustness(
    codecs: Sequence[str] = ALL_CODECS,
    trials: int = 40,
    seed: int = 0,
    frames: int = 5,
    width: int = 32,
    height: int = 32,
    conceal: str = "copy-last",
    progress: Optional[ProgressCallback] = None,
) -> List[RobustnessReport]:
    """Run the seeded fault sweep and return one report per codec."""
    video = make_bench_clip(width=width, height=height, frames=frames)
    reports = []
    for codec in codecs:
        if progress is not None:
            progress(f"robustness {codec}: {trials} seeded faults")
        encoder = get_encoder(codec, **encoder_fields(codec, width, height))
        stream = encoder.encode_sequence(video)
        clean = decode_stream(get_decoder(codec), stream).frames
        clean_psnr = sequence_psnr(video, clean).combined

        report = RobustnessReport(codec=codec, trials=trials, conceal=conceal)
        injector = FaultInjector(seed=seed)
        for corrupted, fault in injector.sweep(stream, trials):
            _strict_trial(codec, corrupted, report)
            _conceal_trial(codec, corrupted, video, clean_psnr, report)
        reports.append(report)
    return reports


def _strict_trial(codec: str, corrupted, report: RobustnessReport) -> None:
    try:
        get_decoder(codec).decode(corrupted)
    except ReproError as error:
        if error.has_decode_context():
            report.graceful_failures += 1
        else:
            report.raw_escapes += 1
    except Exception as error:  # noqa: BLE001 -- the metric counts raw escapes
        report.raw_escapes += 1
        report.record_failure("raw escape", error)
    else:
        report.benign += 1


def _conceal_trial(codec: str, corrupted, video: YuvSequence,
                   clean_psnr: float, report: RobustnessReport) -> None:
    try:
        result = decode_stream(
            get_decoder(codec), corrupted, conceal=report.conceal
        )
    except Exception as error:  # noqa: BLE001 -- concealment must never raise
        report.record_failure("concealment raised", error)
        return
    if len(result.frames) != len(video):
        return
    report.conceal_successes += 1
    report.concealed_pictures += result.concealed_count
    concealed_psnr = sequence_psnr(video, result.frames).combined
    delta = concealed_psnr - clean_psnr
    if concealed_psnr >= PSNR_IDENTICAL and clean_psnr >= PSNR_IDENTICAL:
        delta = 0.0
    report.psnr_deltas.append(delta)


def render_robustness(reports: Sequence[RobustnessReport],
                      title: str = "Robustness: seeded fault sweep") -> str:
    """Render the fault-sweep reports as an aligned table."""
    from repro.bench.report import render_table

    headers = (
        "codec", "trials", "graceful", "benign", "raw",
        "conceal ok", "concealed", "dPSNR mean", "dPSNR worst",
    )
    rows = []
    for report in reports:
        rows.append((
            report.codec,
            report.trials,
            f"{report.graceful_rate * 100:.0f}%",
            report.benign,
            report.raw_escapes,
            f"{report.conceal_rate * 100:.0f}%",
            report.concealed_pictures,
            f"{report.mean_psnr_delta:+.2f} dB",
            f"{report.worst_psnr_delta:+.2f} dB",
        ))
    lines = [render_table(headers, rows, title=title)]
    for report in reports:
        if report.failure_examples:
            lines.append(f"{report.codec}: {report.raw_escapes} raw "
                         f"escape(s); first "
                         f"{len(report.failure_examples)} example(s):")
            for example in report.failure_examples:
                lines.append(f"  - {example}")
    return "\n".join(lines)
