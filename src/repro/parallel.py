"""Parallel encoding: the paper's chip-multiprocessing extension.

Section VII: "Currently, we are working on extending HD-VideoBench by
including parallel versions of the video Codecs for multiprocessor
architectures, specially for emerging chip multiprocessing architectures."

This module provides the coarsest-grained of the parallelisation levels
the paper names (data/function/thread): **GOP-level parallelism**.  The
sequence is split into closed chunks, each chunk is encoded independently
(its first frame becomes an I frame, so no prediction crosses a chunk
boundary), and the coded pictures are concatenated with their display
indices offset back into place.  Closed chunks decode with the ordinary
single-threaded decoders.

With one worker and one chunk the output is bit-identical to the serial
encoder; with more chunks the stream carries extra I frames (the classic
parallel-encoding rate overhead, measurable with the scaling benchmark).
"""

from __future__ import annotations

import warnings
from concurrent.futures import ProcessPoolExecutor, TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict
from typing import Dict, List, Optional, Tuple

from repro.codecs import get_encoder
from repro.codecs.base import EncodedPicture, EncodedVideo
from repro.common.yuv import YuvSequence
from repro.errors import ConfigError, ReproError

#: Per-chunk result timeout (seconds); generous, chunks are small.
DEFAULT_CHUNK_TIMEOUT = 600.0


def split_chunks(frame_count: int, chunks: int, min_chunk: int = 3) -> List[Tuple[int, int]]:
    """Split ``frame_count`` display frames into up to ``chunks`` spans.

    Spans are contiguous half-open (start, stop) ranges; every span has at
    least ``min_chunk`` frames (so a span can hold a small GOP), which may
    reduce the number of spans actually produced.
    """
    if frame_count <= 0:
        raise ConfigError(f"frame_count must be positive, got {frame_count}")
    if chunks < 1:
        raise ConfigError(f"chunks must be >= 1, got {chunks}")
    chunks = max(1, min(chunks, frame_count // max(1, min_chunk)) or 1)
    base = frame_count // chunks
    remainder = frame_count % chunks
    spans = []
    start = 0
    for index in range(chunks):
        size = base + (1 if index < remainder else 0)
        spans.append((start, start + size))
        start += size
    return [span for span in spans if span[0] < span[1]]


def _encode_chunk(codec: str, fields: Dict, frames, fps: int) -> EncodedVideo:
    """Worker entry point (must be importable for multiprocessing)."""
    encoder = get_encoder(codec, **fields)
    return encoder.encode_sequence(YuvSequence(list(frames), fps=fps))


def _run_pool(jobs, workers: int, chunk_timeout: float,
              executor_factory) -> List[EncodedVideo]:
    """Run the chunk jobs in one process pool, one result per job in order.

    Raises :class:`BrokenProcessPool`/``TimeoutError``/``OSError`` on pool
    failure; :class:`~repro.errors.ReproError` from a worker propagates
    unchanged (a bad configuration does not become less bad on retry).
    """
    pool = executor_factory(max_workers=workers)
    clean = False
    try:
        futures = [pool.submit(_encode_chunk, *job) for job in jobs]
        results = [future.result(timeout=chunk_timeout) for future in futures]
        clean = True
        return results
    finally:
        # A timed-out future may never finish; don't block shutdown on it.
        pool.shutdown(wait=clean, cancel_futures=not clean)


def parallel_encode(
    codec: str,
    video: YuvSequence,
    workers: int = 2,
    chunks: int = 0,
    chunk_timeout: float = DEFAULT_CHUNK_TIMEOUT,
    executor_factory=ProcessPoolExecutor,
    **config_fields,
) -> EncodedVideo:
    """Encode ``video`` with GOP-level parallelism.

    ``chunks`` defaults to ``workers``; each chunk is encoded in its own
    process.  ``config_fields`` are the usual encoder configuration fields
    (``width``/``height`` required).  Returns a stream indistinguishable
    in structure from a serial encode apart from the per-chunk I frames.

    Pool failures (a crashed worker, a chunk exceeding ``chunk_timeout``
    seconds, an OS-level spawn error) are retried once on a fresh pool;
    if the retry also fails, the encode falls back to serial execution
    with a :class:`RuntimeWarning`.  :class:`~repro.errors.ReproError`
    raised by a worker (bad configuration, bad input) propagates
    immediately -- it would fail identically on retry.
    """
    if workers < 1:
        raise ConfigError(f"workers must be >= 1, got {workers}")
    if chunk_timeout <= 0:
        raise ConfigError(f"chunk_timeout must be positive, got {chunk_timeout}")
    if not chunks:
        chunks = workers
    spans = split_chunks(len(video), chunks)

    jobs = [
        (codec, config_fields, video.frames[start:stop], video.fps)
        for start, stop in spans
    ]
    if workers == 1 or len(jobs) == 1:
        results = [_encode_chunk(*job) for job in jobs]
    else:
        results = None
        failure: Optional[BaseException] = None
        for attempt in range(2):
            try:
                results = _run_pool(jobs, workers, chunk_timeout, executor_factory)
                break
            except ReproError:
                raise
            except (BrokenProcessPool, FutureTimeout, OSError) as error:
                failure = error
        if results is None:
            warnings.warn(
                f"parallel encode failed twice ({failure!r}); "
                "falling back to serial execution",
                RuntimeWarning,
                stacklevel=2,
            )
            results = [_encode_chunk(*job) for job in jobs]

    merged = EncodedVideo(
        codec=results[0].codec,
        width=results[0].width,
        height=results[0].height,
        fps=video.fps,
    )
    for (start, _), chunk_stream in zip(spans, results):
        for picture in chunk_stream.pictures:
            merged.pictures.append(
                EncodedPicture(
                    picture.payload,
                    picture.display_index + start,
                    picture.frame_type,
                )
            )
    return merged
