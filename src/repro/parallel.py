"""Parallel encoding: the paper's chip-multiprocessing extension.

Section VII: "Currently, we are working on extending HD-VideoBench by
including parallel versions of the video Codecs for multiprocessor
architectures, specially for emerging chip multiprocessing architectures."

This module provides the coarsest-grained of the parallelisation levels
the paper names (data/function/thread): **GOP-level parallelism**.  The
sequence is split into closed chunks, each chunk is encoded independently
(its first frame becomes an I frame, so no prediction crosses a chunk
boundary), and the coded pictures are concatenated with their display
indices offset back into place.  Closed chunks decode with the ordinary
single-threaded decoders.

With one worker and one chunk the output is bit-identical to the serial
encoder; with more chunks the stream carries extra I frames (the classic
parallel-encoding rate overhead, measurable with the scaling benchmark).

Telemetry: every chunk is timed inside its worker (the serial-fallback
path included), and when :mod:`repro.telemetry` is enabled each worker
ships a metrics-registry snapshot back with its chunk, which the parent
folds into the process-global registry.  Pass ``return_stats=True`` to
also receive the per-chunk stats dict (wall times, retry and fallback
events).
"""

from __future__ import annotations

import random
import time
import warnings
from concurrent.futures import ProcessPoolExecutor, TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.codecs import get_encoder
from repro.codecs.base import EncodedPicture, EncodedVideo
from repro.common.yuv import YuvSequence
from repro.errors import ConfigError, ReproError
from repro.telemetry import flightrec
from repro.telemetry.events import emit
from repro.telemetry.metrics import registry as telemetry_registry
from repro.telemetry.trace import span as telemetry_span, state as telemetry_state

#: Per-chunk result deadline (seconds); generous, chunks are small.
DEFAULT_CHUNK_TIMEOUT = 600.0

#: Base of the jittered exponential backoff between pool retries (seconds).
DEFAULT_RETRY_BACKOFF = 0.25


def split_chunks(frame_count: int, chunks: int, min_chunk: int = 3) -> List[Tuple[int, int]]:
    """Split ``frame_count`` display frames into up to ``chunks`` spans.

    Spans are contiguous half-open (start, stop) ranges; every span has at
    least ``min_chunk`` frames (so a span can hold a small GOP), which may
    reduce the number of spans actually produced.
    """
    if frame_count <= 0:
        raise ConfigError(f"frame_count must be positive, got {frame_count}")
    if chunks < 1:
        raise ConfigError(f"chunks must be >= 1, got {chunks}")
    chunks = max(1, min(chunks, frame_count // max(1, min_chunk)) or 1)
    base = frame_count // chunks
    remainder = frame_count % chunks
    spans = []
    start = 0
    for index in range(chunks):
        size = base + (1 if index < remainder else 0)
        spans.append((start, start + size))
        start += size
    return [span for span in spans if span[0] < span[1]]


@dataclass
class ChunkResult:
    """What one chunk encode returns from its worker (picklable)."""

    stream: EncodedVideo
    seconds: float
    metrics: Optional[Dict] = None   # telemetry registry snapshot


def _encode_chunk(codec: str, fields: Dict, frames, fps: int,
                  telemetry_on: bool = False) -> ChunkResult:
    """Worker entry point (must be importable for multiprocessing)."""
    if telemetry_on:
        # Pool workers are reused across chunks (and, under fork, inherit
        # the parent's enabled state): start from a clean registry so each
        # snapshot is this chunk's delta only.
        import repro.telemetry as telemetry

        telemetry.reset()
        telemetry.enable()
    start = time.perf_counter()
    encoder = get_encoder(codec, **fields)
    stream = encoder.encode_sequence(YuvSequence(list(frames), fps=fps))
    seconds = time.perf_counter() - start
    metrics = telemetry_registry().snapshot() if telemetry_on else None
    return ChunkResult(stream, seconds, metrics)


def _encode_chunk_inline(codec: str, fields: Dict, frames, fps: int,
                         telemetry_on: bool = False) -> ChunkResult:
    """Serial (in-process) chunk worker.

    Telemetry, if enabled here, records into the live trace and registry
    directly, so the chunk must not reset it or ship a snapshot back
    (``telemetry_on`` is forced off) -- that is the worker protocol.
    """
    del telemetry_on
    return _encode_chunk(codec, fields, frames, fps, False)


def _run_serial(worker, jobs) -> List:
    """Run the jobs in this process, one after another."""
    return [worker(*job) for job in jobs]


def _run_pool(worker, jobs, workers: int, job_timeout: float,
              executor_factory) -> List:
    """Run the jobs in one process pool, one result per job in order.

    ``job_timeout`` is a per-job *deadline* measured from submission:
    every job must have produced its result within ``job_timeout``
    seconds of the batch going in, so a stuck worker costs at most one
    timeout even when many jobs queue behind it (the old behaviour —
    a fresh timeout per sequential wait — let total stall time grow with
    the job count).

    Raises :class:`BrokenProcessPool`/``TimeoutError``/``OSError`` on pool
    failure; :class:`~repro.errors.ReproError` from a worker propagates
    unchanged (a bad configuration does not become less bad on retry).
    """
    pool = executor_factory(max_workers=workers)
    clean = False
    try:
        deadline = time.monotonic() + job_timeout
        # ``worker`` is required (and documented on run_pooled) to be a
        # module-level function; the static rule cannot see through the
        # parameter.
        futures = [pool.submit(worker, *job) for job in jobs]  # hdvb: disable=HDVB130
        results = [
            future.result(timeout=max(0.0, deadline - time.monotonic()))
            for future in futures
        ]
        clean = True
        return results
    finally:
        # A timed-out future may never finish; don't block shutdown on it.
        pool.shutdown(wait=clean, cancel_futures=not clean)


def run_pooled(
    worker,
    jobs,
    workers: int,
    job_timeout: float = DEFAULT_CHUNK_TIMEOUT,
    retry_backoff: float = DEFAULT_RETRY_BACKOFF,
    executor_factory=ProcessPoolExecutor,
    serial_worker=None,
    rng: Optional[random.Random] = None,
) -> Tuple[List, Dict]:
    """Run ``worker(*job)`` over ``jobs`` with pooled, hardened execution.

    The generic engine behind :func:`parallel_encode`, reused by the
    benchmark orchestrator (:mod:`repro.orchestrate.scheduler`): one
    process pool, per-job deadlines measured from batch submission,
    one retry on a fresh pool after a jittered exponential backoff
    (``retry_backoff * 2^attempt``, jittered by a uniform 0.5-1.5x
    factor), and a serial in-process fallback when the pool fails twice.
    :class:`~repro.errors.ReproError` raised by a worker propagates
    immediately -- it would fail identically on retry.

    ``worker`` must be picklable (a module-level function); each job is
    a tuple of its positional arguments.  ``serial_worker`` — defaulting
    to ``worker`` — runs the serial path (one worker, one job, or the
    fallback), for callers whose pool worker does process-local setup
    that must not happen in the parent.

    ``rng`` supplies the backoff jitter.  It defaults to a fresh
    ``random.Random()`` — never the module-state RNG, whose hidden
    global state a draw here would perturb for every other consumer —
    and callers that need the backoff schedule itself to be replayable
    (the orchestrator) pass a seeded instance.

    Returns ``(results, stats)`` with one result per job in submission
    order and ``stats`` describing the execution::

        {"mode": "pool", "workers": 2, "retries": 0, "fallback": False,
         "failures": [], "job_timeout": 600.0, "backoff_seconds": []}
    """
    if workers < 1:
        raise ConfigError(f"workers must be >= 1, got {workers}")
    if job_timeout <= 0:
        raise ConfigError(f"job_timeout must be positive, got {job_timeout}")
    if retry_backoff < 0:
        raise ConfigError(f"retry_backoff must be >= 0, got {retry_backoff}")
    if serial_worker is None:
        serial_worker = worker
    if rng is None:
        rng = random.Random()
    jobs = list(jobs)
    retries = 0
    fallback = False
    failures: List[str] = []
    backoffs: List[float] = []
    if workers == 1 or len(jobs) <= 1:
        mode = "serial"
        results = _run_serial(serial_worker, jobs)
    else:
        mode = "pool"
        results = None
        failure: Optional[BaseException] = None
        for attempt in range(2):
            if attempt:
                # Jittered exponential backoff before the fresh pool: an
                # immediate re-submit tends to hit the same starved
                # machine that broke the first pool.
                pause = (retry_backoff * (2 ** (attempt - 1))
                         * rng.uniform(0.5, 1.5))
                backoffs.append(pause)
                if pause > 0:
                    time.sleep(pause)
            try:
                results = _run_pool(worker, jobs, workers, job_timeout,
                                    executor_factory)
                break
            except ReproError:
                raise
            except (BrokenProcessPool, FutureTimeout, OSError) as error:
                failure = error
                failures.append(repr(error))
                retries += 1
                emit("chunk.retry", attempt=attempt, error=repr(error),
                     jobs=len(jobs))
        if results is None:
            warnings.warn(
                f"pooled execution failed twice ({failure!r}); "
                "falling back to serial execution",
                RuntimeWarning,
                stacklevel=2,
            )
            mode = "pool-fallback-serial"
            fallback = True
            emit("chunk.fallback", failures=failures, jobs=len(jobs))
            flightrec.recorder.dump(
                "pool.fallback", error=failure,
                extra={"failures": failures, "jobs": len(jobs)})
            results = _run_serial(serial_worker, jobs)
    stats = {
        "mode": mode,
        "workers": workers,
        "retries": retries,
        "fallback": fallback,
        "failures": failures,
        "job_timeout": job_timeout,
        "backoff_seconds": backoffs,
    }
    return results, stats


def parallel_encode(
    codec: str,
    video: YuvSequence,
    workers: int = 2,
    chunks: int = 0,
    chunk_timeout: float = DEFAULT_CHUNK_TIMEOUT,
    retry_backoff: float = DEFAULT_RETRY_BACKOFF,
    executor_factory=ProcessPoolExecutor,
    return_stats: bool = False,
    rng: Optional[random.Random] = None,
    **config_fields,
) -> Union[EncodedVideo, Tuple[EncodedVideo, Dict]]:
    """Encode ``video`` with GOP-level parallelism.

    ``chunks`` defaults to ``workers``; each chunk is encoded in its own
    process.  ``config_fields`` are the usual encoder configuration fields
    (``width``/``height`` required).  Returns a stream indistinguishable
    in structure from a serial encode apart from the per-chunk I frames.

    ``chunk_timeout`` is the per-chunk deadline in seconds: every chunk
    must deliver its result within that long of batch submission.
    ``retry_backoff`` is the base of the jittered exponential backoff
    slept between pool retries (``backoff * 2^attempt``, jittered by a
    uniform 0.5-1.5x factor so restarted pools don't stampede a
    contended machine; 0 disables the sleep).  ``rng`` seeds that
    jitter — see :func:`run_pooled`.

    With ``return_stats=True`` the call returns ``(stream, stats)`` where
    ``stats`` is a dict carrying per-chunk encode wall time (measured
    inside the worker, so the serial-fallback path keeps its timing too),
    pool retry and fallback events, the deadline and backoff actually
    used, and the execution mode::

        {"mode": "pool", "workers": 2, "retries": 0, "fallback": False,
         "failures": [], "chunk_timeout": 600.0, "backoff_seconds": [],
         "chunks": [{"span": [0, 5], "frames": 5, "seconds": 0.41,
         "pictures": 5, "bytes": 7431}, ...],
         "encode_seconds": ..., "wall_seconds": ...}

    When :mod:`repro.telemetry` is enabled, each worker also ships a
    metrics-registry snapshot which is merged into the parent's
    process-global registry, and retry/fallback events are counted
    (``parallel.retries`` / ``parallel.fallbacks``).

    Pool failures (a crashed worker, a chunk missing its ``chunk_timeout``
    deadline, an OS-level spawn error) are retried once on a fresh pool
    after the backoff sleep; if the retry also fails, the encode falls
    back to serial execution with a :class:`RuntimeWarning`.
    :class:`~repro.errors.ReproError` raised by a worker (bad
    configuration, bad input) propagates immediately -- it would fail
    identically on retry.
    """
    if workers < 1:
        raise ConfigError(f"workers must be >= 1, got {workers}")
    if chunk_timeout <= 0:
        raise ConfigError(f"chunk_timeout must be positive, got {chunk_timeout}")
    if retry_backoff < 0:
        raise ConfigError(f"retry_backoff must be >= 0, got {retry_backoff}")
    if not chunks:
        chunks = workers
    spans = split_chunks(len(video), chunks)
    telemetry_on = telemetry_state.enabled

    jobs = [
        (codec, config_fields, video.frames[start:stop], video.fps, telemetry_on)
        for start, stop in spans
    ]
    wall_start = time.perf_counter()
    with telemetry_span("parallel.encode", codec=codec, workers=workers,
                        chunks=len(jobs)):
        results, pool_stats = run_pooled(
            _encode_chunk, jobs, workers,
            job_timeout=chunk_timeout,
            retry_backoff=retry_backoff,
            executor_factory=executor_factory,
            serial_worker=_encode_chunk_inline,
            rng=rng,
        )
    wall_seconds = time.perf_counter() - wall_start
    mode = pool_stats["mode"]
    retries = pool_stats["retries"]
    fallback = pool_stats["fallback"]
    failures = pool_stats["failures"]
    backoffs = pool_stats["backoff_seconds"]

    if telemetry_on:
        reg = telemetry_registry()
        for chunk in results:
            if chunk.metrics is not None:
                reg.merge(chunk.metrics)
        if retries:
            reg.counter("parallel.retries").inc(retries)
        if fallback:
            reg.counter("parallel.fallbacks").inc()
        reg.counter("parallel.chunks").inc(len(results))
        histogram = reg.histogram(
            "parallel.chunk_seconds",
            buckets=(0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 300.0),
        )
        for chunk in results:
            histogram.observe(chunk.seconds)

    merged = EncodedVideo(
        codec=results[0].stream.codec,
        width=results[0].stream.width,
        height=results[0].stream.height,
        fps=video.fps,
    )
    for (start, _), chunk in zip(spans, results):
        for picture in chunk.stream.pictures:
            merged.pictures.append(
                EncodedPicture(
                    picture.payload,
                    picture.display_index + start,
                    picture.frame_type,
                )
            )
    if not return_stats:
        return merged

    stats = {
        "mode": mode,
        "workers": workers,
        "retries": retries,
        "fallback": fallback,
        "failures": failures,
        "chunk_timeout": chunk_timeout,
        "backoff_seconds": backoffs,
        "chunks": [
            {
                "span": [start, stop],
                "frames": stop - start,
                "seconds": chunk.seconds,
                "pictures": chunk.stream.frame_count,
                "bytes": chunk.stream.total_bytes,
            }
            for (start, stop), chunk in zip(spans, results)
        ],
        "encode_seconds": sum(chunk.seconds for chunk in results),
        "wall_seconds": wall_seconds,
    }
    return merged, stats
