"""The extended codec set: the paper's trio plus the Section VII codecs.

Runs all five codec families at the Equation-1-equivalent constant-quality
settings on one clip and prints the RD landscape.  Expected shape: the
hybrid codecs order MPEG-2 > VC-1 ~ MPEG-4 > H.264 in bits, and the
intra-only Motion-JPEG codec costs several times more than any of them —
the temporal-redundancy gap the hybrid designs exist to close.

Run:  python examples/extension_codecs.py
"""

from repro import generate_sequence, get_decoder, get_encoder, sequence_psnr
from repro.transform import h264_qp_from_mpeg

QSCALE = 5
CODECS = ("mpeg2", "mpeg4", "vc1", "h264", "mjpeg")


def fields_for(codec, video):
    fields = dict(width=video.width, height=video.height)
    if codec == "h264":
        fields["qp"] = h264_qp_from_mpeg(QSCALE)
    elif codec == "mjpeg":
        fields["quality"] = 100 - 3 * QSCALE
    else:
        fields["qscale"] = QSCALE
    return fields


def main() -> None:
    video = generate_sequence("rush_hour", "576p25", frames=9, scale=(1, 8))
    print(f"workload: {video.name}, {video.width}x{video.height}, "
          f"{len(video)} frames, qscale {QSCALE} (H.264 QP "
          f"{h264_qp_from_mpeg(QSCALE)})\n")
    print(f"{'codec':6s} {'PSNR':>7s} {'kbit/s':>8s} {'bytes':>7s}  notes")
    notes = {
        "mpeg2": "paper baseline",
        "mpeg4": "ASP: qpel + 4MV + AC/DC pred",
        "vc1": "extension: adaptive transform size",
        "h264": "best compression, priciest",
        "mjpeg": "extension: intra-only",
    }
    for codec in CODECS:
        stream = get_encoder(codec, **fields_for(codec, video)).encode_sequence(video)
        decoded = get_decoder(codec).decode(stream)
        psnr = sequence_psnr(video, decoded)
        print(f"{codec:6s} {psnr.combined:7.2f} {stream.bitrate_kbps:8.1f} "
              f"{stream.total_bytes:7d}  {notes[codec]}")


if __name__ == "__main__":
    main()
