"""Constant-bitrate encoding with the rate-control extension.

The paper fixes constant-QP coding by design (it benchmarks codecs, not
rate control); this example shows the extension a deployment needs: a
one-pass CBR controller tracking a bitrate target, with its per-segment
quantiser trace.

Run:  python examples/rate_control.py
"""

from repro import generate_sequence, get_decoder, sequence_psnr
from repro.ratecontrol import cbr_encode


def main() -> None:
    video = generate_sequence("riverbed", "576p25", frames=18, scale=(1, 8))
    fields = dict(width=video.width, height=video.height)
    print(f"workload: {video.name} ({video.width}x{video.height}, "
          f"{len(video)} frames) — the hardest clip to code\n")
    for target in (150.0, 400.0):
        stream, trace = cbr_encode("mpeg4", video, target_kbps=target, **fields)
        decoded = get_decoder("mpeg4").decode(stream)
        psnr = sequence_psnr(video, decoded)
        print(f"target {target:6.0f} kbit/s -> achieved {stream.bitrate_kbps:6.0f} "
              f"kbit/s at {psnr.combined:.2f} dB")
        steps = ", ".join(
            f"[{step.start_frame}-{step.stop_frame}) q={step.qscale} "
            f"{step.fullness:4.2f}x" for step in trace
        )
        print(f"  controller trace: {steps}\n")


if __name__ == "__main__":
    main()
