"""Transcoding: decode an MPEG-2 stream and re-encode it as H.264.

The paper motivates its applications as "part of real life programs used
... for coding, transcoding and playing multimedia content" (Section VII);
this example is the transcoding pipeline: an MPEG-2 "broadcast" stream is
decoded and re-encoded with the H.264 codec, roughly halving the bitrate
at similar quality.

Run:  python examples/transcode.py
"""

import tempfile
from pathlib import Path

from repro import generate_sequence, get_decoder, get_encoder, sequence_psnr
from repro.codecs import container


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="hdvb_transcode_"))
    source = generate_sequence("rush_hour", "720p25", frames=9, scale=(1, 8))

    # 1. Produce the "broadcast" MPEG-2 stream.
    mpeg2 = get_encoder(
        "mpeg2", width=source.width, height=source.height, qscale=5
    ).encode_sequence(source)
    mpeg2_path = workdir / "broadcast_mpeg2.hdvb"
    container.write_file(mpeg2_path, mpeg2)
    print(f"MPEG-2 source stream: {mpeg2.total_bytes} bytes "
          f"({mpeg2.bitrate_kbps:.1f} kbit/s) -> {mpeg2_path}")

    # 2. Transcode: decode MPEG-2, re-encode as H.264.
    decoded = get_decoder(container.probe_codec(mpeg2_path)).decode(
        container.read_file(mpeg2_path)
    )
    h264 = get_encoder(
        "h264", width=decoded.width, height=decoded.height, qp=26
    ).encode_sequence(decoded)
    h264_path = workdir / "transcoded_h264.hdvb"
    container.write_file(h264_path, h264)
    saved = 100.0 * (1.0 - h264.total_bytes / mpeg2.total_bytes)
    print(f"H.264 transcode:      {h264.total_bytes} bytes "
          f"({h264.bitrate_kbps:.1f} kbit/s) -> {h264_path}")
    print(f"bitrate saved by transcoding: {saved:.1f}%")

    # 3. End-to-end quality (source -> MPEG-2 -> H.264 -> decoded).
    final = get_decoder("h264").decode(container.read_file(h264_path))
    generation_loss = sequence_psnr(source, final)
    first_generation = sequence_psnr(source, decoded)
    print(f"PSNR after MPEG-2:    {first_generation.combined:.2f} dB")
    print(f"PSNR after transcode: {generation_loss.combined:.2f} dB "
          f"(generation loss {first_generation.combined - generation_loss.combined:.2f} dB)")


if __name__ == "__main__":
    main()
