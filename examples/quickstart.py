"""Quickstart: generate a clip, encode it with H.264, decode, measure quality.

Run:  python examples/quickstart.py
"""

from repro import generate_sequence, get_decoder, get_encoder, sequence_psnr
from repro.codecs import container


def main() -> None:
    # 1. One of the four HD-VideoBench sequences, at a benchmark-scaled
    #    "576p25" tier (96x80) so the example runs in seconds.
    video = generate_sequence("blue_sky", "576p25", frames=9, scale=(1, 8))
    print(f"generated {video.name}: {video.width}x{video.height}, "
          f"{len(video)} frames at {video.fps} fps")

    # 2. Encode with the H.264-class codec at the paper's settings
    #    (QP 26 = Equation 1 applied to qscale 5, hexagon search, I-P-B-B).
    encoder = get_encoder("h264", width=video.width, height=video.height, qp=26)
    stream = encoder.encode_sequence(video)
    print(f"encoded: {stream.total_bytes} bytes "
          f"({stream.bitrate_kbps:.1f} kbit/s), "
          f"frame types {dict((str(k), v) for k, v in stream.frame_types().items())}")

    # 3. Containers round-trip through bytes/files like any codec stream.
    packed = container.pack(stream)
    stream = container.unpack(packed)

    # 4. Decode and measure PSNR against the source.
    decoded = get_decoder("h264").decode(stream)
    psnr = sequence_psnr(video, decoded)
    print(f"decoded {len(decoded)} frames; "
          f"PSNR Y={psnr.y:.2f} U={psnr.u:.2f} V={psnr.v:.2f} dB "
          f"(combined {psnr.combined:.2f} dB)")


if __name__ == "__main__":
    main()
