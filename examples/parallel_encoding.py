"""GOP-parallel encoding: the paper's chip-multiprocessing extension.

Section VII of the paper announces parallel codec versions for emerging
chip multiprocessors; this example runs the GOP-level parallel encoder and
shows the classic trade: near-linear encode speed-up against a small
bitrate overhead from the extra per-chunk I frames.

Run:  python examples/parallel_encoding.py
"""

import os
import time

from repro import generate_sequence, get_decoder, sequence_psnr
from repro.parallel import parallel_encode


def main() -> None:
    # The largest benchmark tier: big enough that process start-up costs
    # amortise and the speed-up becomes visible.
    video = generate_sequence("pedestrian_area", "1088p25", frames=16, scale=(1, 8))
    fields = dict(width=video.width, height=video.height, qscale=5)
    cores = os.cpu_count() or 1
    print(f"workload: {video.name}, {video.width}x{video.height}, "
          f"{len(video)} frames, MPEG-4 encode")
    print(f"available cores: {cores} "
          f"(speed-up is bounded by this; the bitrate overhead is not)\n")
    print(f"{'workers':>7s} {'chunks':>6s} {'seconds':>8s} {'speedup':>8s} "
          f"{'bytes':>7s} {'I-frames':>8s} {'PSNR':>6s}")
    baseline = None
    for workers in (1, 2, 4):
        start = time.perf_counter()
        stream = parallel_encode("mpeg4", video, workers=workers, **fields)
        elapsed = time.perf_counter() - start
        if baseline is None:
            baseline = elapsed
        decoded = get_decoder("mpeg4").decode(stream)
        psnr = sequence_psnr(video, decoded)
        i_frames = sum(1 for p in stream.pictures if p.frame_type.value == "I")
        print(f"{workers:7d} {workers:6d} {elapsed:8.2f} {baseline / elapsed:7.2f}x "
              f"{stream.total_bytes:7d} {i_frames:8d} {psnr.combined:6.2f}")


if __name__ == "__main__":
    main()
