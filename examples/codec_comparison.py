"""Codec comparison: a miniature of the paper's Table V.

Encodes two sequences with all three codecs at equivalent constant-QP
settings (qscale 5 for the MPEG codecs, QP 26 for H.264 via Equation 1)
and prints PSNR and bitrate side by side.  The expected shape, as in the
paper: every codec lands in the same quality band while the bitrate drops
MPEG-2 -> MPEG-4 -> H.264, and riverbed costs several times more bits than
rush_hour at every codec.

Run:  python examples/codec_comparison.py
"""

from repro import generate_sequence, get_decoder, get_encoder, sequence_psnr
from repro.common.metrics import compression_gain
from repro.transform import h264_qp_from_mpeg

QSCALE = 5
SEQUENCES = ("rush_hour", "riverbed")


def encode_one(codec: str, video):
    fields = dict(width=video.width, height=video.height)
    if codec == "h264":
        fields["qp"] = h264_qp_from_mpeg(QSCALE)
    else:
        fields["qscale"] = QSCALE
    stream = get_encoder(codec, **fields).encode_sequence(video)
    decoded = get_decoder(codec).decode(stream)
    return stream, sequence_psnr(video, decoded)


def main() -> None:
    print(f"constant quality: qscale={QSCALE} -> H.264 QP {h264_qp_from_mpeg(QSCALE)}"
          f" (Equation 1)\n")
    for name in SEQUENCES:
        video = generate_sequence(name, "576p25", frames=9, scale=(1, 8))
        print(f"{name} ({video.width}x{video.height}, {len(video)} frames):")
        results = {}
        for codec in ("mpeg2", "mpeg4", "h264"):
            stream, psnr = encode_one(codec, video)
            results[codec] = stream
            print(f"  {codec:6s} {psnr.combined:6.2f} dB  "
                  f"{stream.bitrate_kbps:8.1f} kbit/s  {stream.total_bytes:6d} bytes")
        base = results["mpeg2"].bitrate_kbps
        print(f"  gains vs MPEG-2: "
              f"MPEG-4 {compression_gain(base, results['mpeg4'].bitrate_kbps):.1f}%, "
              f"H.264 {compression_gain(base, results['h264'].bitrate_kbps):.1f}%\n")


if __name__ == "__main__":
    main()
