"""Scalar vs SIMD: a miniature of the paper's Figure 1.

Times decode and encode of each codec under both kernel backends and
prints fps plus the SIMD speed-up.  The two backends are bit-exact, so the
comparison isolates data-level parallelism, exactly like the paper's
scalar-vs-SIMD axis.  Expected shape: simd faster everywhere, decode much
faster than encode, MPEG-2 fastest and H.264 slowest.

Run:  python examples/simd_speedup.py
"""

import time

from repro import generate_sequence, get_decoder, get_encoder
from repro.transform import h264_qp_from_mpeg


def timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def main() -> None:
    video = generate_sequence("pedestrian_area", "576p25", frames=5, scale=(1, 8))
    frames = len(video)
    print(f"workload: {video.name}, {video.width}x{video.height}, {frames} frames\n")
    print(f"{'codec':6s} {'op':7s} {'scalar fps':>10s} {'simd fps':>10s} {'speedup':>8s}")
    for codec in ("mpeg2", "mpeg4", "h264"):
        fields = dict(width=video.width, height=video.height)
        if codec == "h264":
            fields["qp"] = h264_qp_from_mpeg(5)
        else:
            fields["qscale"] = 5
        stream = get_encoder(codec, **fields).encode_sequence(video)

        fps = {}
        for backend in ("scalar", "simd"):
            enc_seconds = timed(
                lambda b=backend: get_encoder(codec, backend=b, **fields).encode_sequence(video)
            )
            dec_seconds = timed(
                lambda b=backend: get_decoder(codec, backend=b).decode(stream)
            )
            fps[backend] = (frames / dec_seconds, frames / enc_seconds)
        for index, op in enumerate(("decode", "encode")):
            scalar_fps = fps["scalar"][index]
            simd_fps = fps["simd"][index]
            print(f"{codec:6s} {op:7s} {scalar_fps:10.2f} {simd_fps:10.2f} "
                  f"{simd_fps / scalar_fps:7.2f}x")


if __name__ == "__main__":
    main()
