"""Tests for the bit-level writer and reader."""

import pytest
from hypothesis import given, strategies as st

from repro.common.bitstream import BitReader, BitWriter
from repro.errors import BitstreamError


class TestBitWriter:
    def test_empty_writer_is_empty(self):
        writer = BitWriter()
        assert len(writer) == 0
        assert writer.to_bytes() == b""

    def test_single_bit(self):
        writer = BitWriter()
        writer.write_bit(1)
        assert len(writer) == 1
        assert writer.to_bytes() == b"\x80"

    def test_bits_msb_first(self):
        writer = BitWriter()
        writer.write_bits(0b10110, 5)
        assert writer.to_bytes() == bytes([0b10110000])

    def test_docstring_example(self):
        writer = BitWriter()
        writer.write_bits(0b101, 3)
        writer.write_bit(1)
        writer.align()
        assert writer.to_bytes() == b"\xb0"

    def test_bit_rejects_non_binary(self):
        with pytest.raises(BitstreamError):
            BitWriter().write_bit(2)

    def test_value_must_fit(self):
        with pytest.raises(BitstreamError):
            BitWriter().write_bits(8, 3)

    def test_negative_count_rejected(self):
        with pytest.raises(BitstreamError):
            BitWriter().write_bits(0, -1)

    def test_zero_count_writes_nothing(self):
        writer = BitWriter()
        writer.write_bits(0, 0)
        assert len(writer) == 0

    def test_signed_roundtrips_through_two_complement(self):
        writer = BitWriter()
        writer.write_signed(-3, 8)
        reader = BitReader(writer.to_bytes())
        assert reader.read_signed(8) == -3

    def test_signed_range_checked(self):
        with pytest.raises(BitstreamError):
            BitWriter().write_signed(128, 8)
        with pytest.raises(BitstreamError):
            BitWriter().write_signed(-129, 8)

    def test_align_returns_padding_count(self):
        writer = BitWriter()
        writer.write_bits(0b101, 3)
        assert writer.align() == 5
        assert writer.align() == 0

    def test_write_bytes_requires_alignment(self):
        writer = BitWriter()
        writer.write_bit(1)
        with pytest.raises(BitstreamError):
            writer.write_bytes(b"x")

    def test_write_bytes_when_aligned(self):
        writer = BitWriter()
        writer.write_bytes(b"ab")
        assert writer.to_bytes() == b"ab"

    def test_partial_byte_zero_padded(self):
        writer = BitWriter()
        writer.write_bits(0b11, 2)
        assert writer.to_bytes() == bytes([0b11000000])


class TestBitReader:
    def test_read_single_bits(self):
        reader = BitReader(b"\xa0")  # 1010 0000
        assert [reader.read_bit() for _ in range(4)] == [1, 0, 1, 0]

    def test_read_bits_msb_first(self):
        reader = BitReader(bytes([0b11010010]))
        assert reader.read_bits(3) == 0b110
        assert reader.read_bits(5) == 0b10010

    def test_read_bits_across_byte_boundary(self):
        reader = BitReader(bytes([0xFF, 0x00, 0xFF]))
        reader.read_bits(4)
        assert reader.read_bits(12) == 0xF00 >> 0  # 1111 0000 0000
        assert reader.read_bits(8) == 0xFF

    def test_read_past_end_raises(self):
        reader = BitReader(b"\x00")
        reader.read_bits(8)
        with pytest.raises(BitstreamError):
            reader.read_bit()

    def test_read_bits_past_end_raises(self):
        with pytest.raises(BitstreamError):
            BitReader(b"\x00").read_bits(9)

    def test_bits_remaining(self):
        reader = BitReader(b"\x00\x00")
        assert reader.bits_remaining == 16
        reader.read_bits(5)
        assert reader.bits_remaining == 11

    def test_at_end(self):
        reader = BitReader(b"\xff")
        assert not reader.at_end()
        reader.read_bits(8)
        assert reader.at_end()

    def test_peek_does_not_consume(self):
        reader = BitReader(bytes([0b10110000]))
        assert reader.peek_bits(3) == 0b101
        assert reader.read_bits(3) == 0b101

    def test_peek_pads_with_zeros_past_end(self):
        reader = BitReader(bytes([0b11000000]))
        assert reader.peek_bits(16) == 0b1100000000000000

    def test_skip_bits(self):
        reader = BitReader(bytes([0b00001111]))
        reader.skip_bits(4)
        assert reader.read_bits(4) == 0b1111

    def test_skip_past_end_raises(self):
        with pytest.raises(BitstreamError):
            BitReader(b"").skip_bits(1)

    def test_align(self):
        reader = BitReader(bytes([0xFF, 0xAB]))
        reader.read_bits(3)
        assert reader.align() == 5
        assert reader.read_bits(8) == 0xAB

    def test_read_bytes_requires_alignment(self):
        reader = BitReader(b"\x00\x00")
        reader.read_bit()
        with pytest.raises(BitstreamError):
            reader.read_bytes(1)

    def test_read_bytes(self):
        reader = BitReader(b"abcd")
        assert reader.read_bytes(2) == b"ab"
        assert reader.read_bytes(2) == b"cd"

    def test_signed_negative(self):
        reader = BitReader(bytes([0xFF]))
        assert reader.read_signed(8) == -1

    def test_zero_count_read(self):
        assert BitReader(b"").read_bits(0) == 0


class TestRoundTrip:
    @given(st.lists(st.tuples(st.integers(0, 1 << 20), st.integers(1, 24)), max_size=50))
    def test_write_read_roundtrip(self, fields):
        writer = BitWriter()
        expected = []
        for value, width in fields:
            value &= (1 << width) - 1
            writer.write_bits(value, width)
            expected.append((value, width))
        writer.align()
        reader = BitReader(writer.to_bytes())
        for value, width in expected:
            assert reader.read_bits(width) == value

    @given(st.lists(st.integers(-1000, 1000), max_size=30))
    def test_signed_roundtrip(self, values):
        writer = BitWriter()
        for value in values:
            writer.write_signed(value, 12)
        writer.align()
        reader = BitReader(writer.to_bytes())
        for value in values:
            assert reader.read_signed(12) == value

    @given(st.binary(max_size=64))
    def test_bytes_roundtrip(self, data):
        writer = BitWriter()
        writer.write_bytes(data)
        reader = BitReader(writer.to_bytes())
        assert reader.read_bytes(len(data)) == data


class TestWideFieldValidation:
    """write_bits range checks at and past 64 bits (the numpy-shift edge)."""

    def test_wide_values_roundtrip(self):
        for count in (64, 65, 100):
            value = (1 << count) - 1
            writer = BitWriter()
            writer.write_bits(value, count)
            assert BitReader(writer.to_bytes()).read_bits(count) == value

    def test_oversized_value_rejected_at_64_bits(self):
        with pytest.raises(BitstreamError):
            BitWriter().write_bits(1 << 64, 64)
        with pytest.raises(BitstreamError):
            BitWriter().write_bits(1 << 70, 70)

    def test_negative_value_rejected(self):
        with pytest.raises(BitstreamError):
            BitWriter().write_bits(-1, 64)

    def test_numpy_integers_accepted(self):
        import numpy as np

        writer = BitWriter()
        writer.write_bits(np.int64(5), 8)
        assert BitReader(writer.to_bytes()).read_bits(8) == 5


class TestReaderBounds:
    """align() and past-end reads must fail as TruncationError, in bounds."""

    def test_align_past_end_raises(self):
        from repro.errors import TruncationError

        reader = BitReader(b"\xff")
        reader.read_bits(3)
        reader.align()  # still in bounds: consumes the padding
        with pytest.raises(TruncationError):
            reader.read_bit()

    def test_align_with_no_remaining_padding_raises_cleanly(self):
        from repro.errors import TruncationError

        reader = BitReader(b"")
        assert reader.align() == 0  # aligned already: nothing to skip
        reader = BitReader(b"\xff")
        reader.read_bits(8)
        assert reader.align() == 0
        with pytest.raises(TruncationError):
            reader.read_bits(1)

    def test_past_end_reads_raise_truncation_error(self):
        from repro.errors import TruncationError

        assert issubclass(TruncationError, BitstreamError)
        with pytest.raises(TruncationError):
            BitReader(b"").read_bit()
        with pytest.raises(TruncationError):
            BitReader(b"\x00").read_bits(9)
        with pytest.raises(TruncationError):
            BitReader(b"").skip_bits(1)
        with pytest.raises(TruncationError):
            BitReader(b"\x00").read_bytes(2)
