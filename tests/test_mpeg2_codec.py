"""End-to-end tests for the MPEG-2 class codec."""

import numpy as np
import pytest

from repro.codecs.mpeg2 import Mpeg2Config, Mpeg2Decoder, Mpeg2Encoder
from repro.common.gop import FrameType, GopStructure
from repro.common.metrics import sequence_psnr
from repro.common.yuv import YuvSequence
from repro.errors import CodecError, ConfigError
from tests.conftest import make_frame, make_moving_sequence


def encode(video, **overrides):
    fields = dict(width=video.width, height=video.height,
                  qscale=5, search_range=4)
    fields.update(overrides)
    encoder = Mpeg2Encoder(Mpeg2Config(**fields))
    return encoder, encoder.encode_sequence(video)


class TestRoundTrip:
    def test_psnr_reasonable(self, tiny_video):
        _, stream = encode(tiny_video)
        decoded = Mpeg2Decoder().decode(stream)
        psnr = sequence_psnr(tiny_video, decoded)
        assert psnr.y > 30.0
        assert psnr.u > 30.0

    def test_display_order_restored(self, tiny_video):
        _, stream = encode(tiny_video)
        # Stream is in coding order (frame 1 and 2 coded after frame 3)...
        indices = [picture.display_index for picture in stream.pictures]
        assert indices != sorted(indices)
        # ... but decode returns display order.
        decoded = Mpeg2Decoder().decode(stream)
        assert len(decoded) == len(tiny_video)

    def test_frame_types_follow_gop(self, tiny_video):
        _, stream = encode(tiny_video)
        counts = stream.frame_types()
        assert counts[FrameType.I] == 1
        assert counts[FrameType.B] >= 1
        assert counts[FrameType.P] >= 1

    def test_deterministic(self, tiny_video):
        _, first = encode(tiny_video)
        _, second = encode(tiny_video)
        assert all(
            a.payload == b.payload
            for a, b in zip(first.pictures, second.pictures)
        )

    def test_decode_is_deterministic(self, tiny_video):
        _, stream = encode(tiny_video)
        first = Mpeg2Decoder().decode(stream)
        second = Mpeg2Decoder().decode(stream)
        assert all(a == b for a, b in zip(first, second))

    def test_intra_only_gop(self, tiny_video):
        _, stream = encode(tiny_video, gop=GopStructure(bframes=0, intra_period=1))
        assert stream.frame_types()[FrameType.I] == len(tiny_video)
        decoded = Mpeg2Decoder().decode(stream)
        assert sequence_psnr(tiny_video, decoded).y > 30.0

    def test_ip_only_gop(self, tiny_video):
        _, stream = encode(tiny_video, gop=GopStructure(bframes=0))
        counts = stream.frame_types()
        assert counts[FrameType.B] == 0
        assert counts[FrameType.P] == len(tiny_video) - 1


class TestRateDistortionBehaviour:
    def test_coarser_qscale_means_fewer_bits(self, tiny_video):
        _, fine = encode(tiny_video, qscale=2)
        _, coarse = encode(tiny_video, qscale=20)
        assert coarse.total_bytes < fine.total_bytes

    def test_coarser_qscale_means_lower_psnr(self, tiny_video):
        _, fine = encode(tiny_video, qscale=2)
        _, coarse = encode(tiny_video, qscale=20)
        psnr_fine = sequence_psnr(tiny_video, Mpeg2Decoder().decode(fine))
        psnr_coarse = sequence_psnr(tiny_video, Mpeg2Decoder().decode(coarse))
        assert psnr_fine.y > psnr_coarse.y

    def test_motion_exploited(self):
        # A purely translating scene must cost far less than noise.
        moving = make_moving_sequence(width=48, height=32, frames=5, dx=2, dy=0)
        rng = np.random.default_rng(0)
        noise_frames = []
        for index in range(5):
            noise_frames.append(make_frame(48, 32, seed=100 + index))
        noise = YuvSequence(noise_frames)
        _, stream_moving = encode(moving)
        _, stream_noise = encode(noise)
        assert stream_moving.total_bytes < stream_noise.total_bytes / 2

    def test_static_scene_mostly_skipped(self):
        # A flat static scene reconstructs exactly, so every inter MB can
        # use skip mode.
        from repro.common.yuv import YuvFrame

        frame = YuvFrame.blank(32, 32, y=128, u=128, v=128)
        static = YuvSequence([frame.copy() for _ in range(4)])
        encoder, stream = encode(static)
        assert encoder.stats.skipped_macroblocks > 0
        # Inter frames of a static scene are tiny compared to the I frame.
        assert len(stream.pictures[1].payload) < len(stream.pictures[0].payload)

    def test_noisy_static_scene_cheaper_than_noise(self):
        frame = make_frame(32, 32, seed=9)
        static = YuvSequence([frame.copy() for _ in range(4)])
        _, stream = encode(static)
        # Inter frames cost far less than the intra frame even when quant
        # noise prevents exact skips.
        inter_bytes = sum(len(p.payload) for p in stream.pictures[1:])
        assert inter_bytes < len(stream.pictures[0].payload)


class TestStats:
    def test_stats_populated(self, tiny_video):
        encoder, stream = encode(tiny_video)
        assert len(encoder.stats.frame_bits) == len(tiny_video)
        assert encoder.stats.total_bits == 8 * stream.total_bytes
        assert encoder.stats.macroblocks > 0


class TestValidation:
    def test_dimension_mismatch(self, tiny_video):
        encoder = Mpeg2Encoder(Mpeg2Config(width=64, height=64))
        with pytest.raises(CodecError):
            encoder.encode_sequence(tiny_video)

    def test_empty_sequence(self):
        encoder = Mpeg2Encoder(Mpeg2Config(width=32, height=32))
        with pytest.raises(CodecError):
            encoder.encode_sequence(YuvSequence([]))

    def test_invalid_qscale(self):
        with pytest.raises(ConfigError):
            Mpeg2Config(width=32, height=32, qscale=0)

    def test_unaligned_dimensions(self):
        with pytest.raises(ConfigError):
            Mpeg2Config(width=30, height=32)

    def test_wrong_codec_stream_rejected(self, tiny_video):
        _, stream = encode(tiny_video)
        stream.codec = "h264"
        with pytest.raises(CodecError):
            Mpeg2Decoder().decode(stream)


class TestMeAlgorithms:
    @pytest.mark.parametrize("algorithm", ["epzs", "full", "hex"])
    def test_all_search_algorithms_roundtrip(self, tiny_video, algorithm):
        _, stream = encode(tiny_video, me_algorithm=algorithm)
        decoded = Mpeg2Decoder().decode(stream)
        assert sequence_psnr(tiny_video, decoded).y > 30.0
