"""Locally innocent codec entry: no RNG call in sight, but two hops
away ``jitter`` reaches ``random.uniform`` → HDVB200."""

from util.jitter import jitter


def encode(frame):
    return frame * jitter()
