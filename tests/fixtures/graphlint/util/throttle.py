"""Sync throttle helper.  ``time.sleep`` is not a wall-clock *read*, so
HDVB101/102 have no opinion; the defect appears only when a coroutine
reaches it (see ``origin/server.py``)."""

import time


def settle():
    time.sleep(0.1)
