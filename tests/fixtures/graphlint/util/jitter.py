"""Unseeded jitter helper — outside the determinism scope, so HDVB101
never looks at it.  The taint only becomes a defect when a codec calls
it (see ``codecs/enc.py``)."""

import random


def jitter():
    return random.uniform(0.5, 1.5)
