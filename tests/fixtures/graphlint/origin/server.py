"""Locally innocent coroutine: it never sleeps itself, but the sync
helper it calls does → HDVB201 (event-loop stall)."""

from util.throttle import settle


async def serve(session):
    settle()
    return session
