"""Tests for MSE/PSNR/bitrate metrics."""

import math

import numpy as np
import pytest

from repro.common.metrics import (
    PSNR_IDENTICAL,
    bitrate_kbps,
    compression_gain,
    frame_psnr,
    mean,
    mse,
    plane_psnr,
    psnr_from_mse,
    sequence_psnr,
)
from repro.common.yuv import YuvFrame, YuvSequence
from repro.errors import ConfigError
from tests.conftest import make_frame


class TestMse:
    def test_identical_is_zero(self):
        plane = np.arange(64, dtype=np.uint8).reshape(8, 8)
        assert mse(plane, plane) == 0.0

    def test_known_value(self):
        a = np.zeros((2, 2), dtype=np.uint8)
        b = np.full((2, 2), 2, dtype=np.uint8)
        assert mse(a, b) == 4.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ConfigError):
            mse(np.zeros((2, 2)), np.zeros((2, 3)))

    def test_uint8_wraparound_avoided(self):
        a = np.array([[0]], dtype=np.uint8)
        b = np.array([[255]], dtype=np.uint8)
        assert mse(a, b) == 255.0 ** 2


class TestPsnr:
    def test_identical_reports_cap(self):
        assert psnr_from_mse(0.0) == PSNR_IDENTICAL

    def test_known_value(self):
        assert psnr_from_mse(1.0) == pytest.approx(20 * math.log10(255), rel=1e-9)

    def test_monotone_in_mse(self):
        assert psnr_from_mse(1.0) > psnr_from_mse(2.0) > psnr_from_mse(10.0)

    def test_plane_psnr(self):
        a = np.zeros((4, 4), dtype=np.uint8)
        b = np.full((4, 4), 5, dtype=np.uint8)
        expected = 10 * math.log10(255.0 ** 2 / 25.0)
        assert plane_psnr(a, b) == pytest.approx(expected)


class TestFramePsnr:
    def test_combined_weighting(self):
        frame_a = make_frame(16, 16, seed=1)
        frame_b = make_frame(16, 16, seed=2)
        result = frame_psnr(frame_a, frame_b)
        expected = (4 * result.y + result.u + result.v) / 6
        assert result.combined == pytest.approx(expected)

    def test_identical_frames(self):
        frame = make_frame(16, 16)
        result = frame_psnr(frame, frame)
        assert result.y == result.u == result.v == PSNR_IDENTICAL


class TestSequencePsnr:
    def test_averages_mse_not_db(self):
        # One perfect frame + one noisy frame: the dB average of per-frame
        # PSNRs would be inflated by the 100 dB cap; averaging MSE is not.
        clean = make_frame(16, 16, seed=1)
        noisy = clean.copy()
        noisy.y[:, :] = np.clip(noisy.y.astype(int) + 10, 0, 255).astype(np.uint8)
        ref = YuvSequence([clean, clean])
        test = YuvSequence([clean, noisy])
        combined = sequence_psnr(ref, test)
        only_noisy = sequence_psnr(YuvSequence([clean]), YuvSequence([noisy]))
        assert combined.y == pytest.approx(only_noisy.y + 10 * math.log10(2), abs=0.3)

    def test_length_mismatch(self):
        with pytest.raises(ConfigError):
            sequence_psnr(
                YuvSequence([make_frame(16, 16)]),
                YuvSequence([make_frame(16, 16), make_frame(16, 16)]),
            )

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            sequence_psnr(YuvSequence([]), YuvSequence([]))


class TestBitrate:
    def test_known_value(self):
        # 25 frames at 25 fps = 1 second; 1000 bytes = 8 kbit/s.
        assert bitrate_kbps(1000, 25, 25) == pytest.approx(8.0)

    def test_scales_with_fps(self):
        assert bitrate_kbps(1000, 25, 50) == pytest.approx(16.0)

    def test_invalid_inputs(self):
        with pytest.raises(ConfigError):
            bitrate_kbps(100, 0, 25)
        with pytest.raises(ConfigError):
            bitrate_kbps(100, 10, 0)


class TestCompressionGain:
    def test_half_bitrate_is_fifty_percent(self):
        assert compression_gain(1000.0, 500.0) == pytest.approx(50.0)

    def test_equal_is_zero(self):
        assert compression_gain(123.0, 123.0) == pytest.approx(0.0)

    def test_regression_is_negative(self):
        assert compression_gain(100.0, 150.0) == pytest.approx(-50.0)

    def test_zero_baseline_rejected(self):
        with pytest.raises(ConfigError):
            compression_gain(0.0, 1.0)


class TestMean:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            mean([])
