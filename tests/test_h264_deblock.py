"""Tests for the H.264 deblocking filter and its strength rules."""

import numpy as np
import pytest

from repro.codecs.frames import WorkingFrame
from repro.codecs.h264.deblock import (
    CellState,
    DeblockFilter,
    DeblockMeta,
    boundary_strength,
)
from repro.kernels import get_kernels
from repro.me.types import MotionVector

KERNELS = get_kernels("simd")


def intra_cell():
    return CellState(intra=True, nonzero=True)


def inter_cell(mv=(0, 0), ref=0, nonzero=False):
    return CellState(intra=False, nonzero=nonzero, mv=MotionVector(*mv), ref=ref)


class TestBoundaryStrength:
    def test_intra_at_mb_edge_is_4(self):
        assert boundary_strength(intra_cell(), inter_cell(), mb_edge=True) == 4

    def test_intra_internal_is_3(self):
        assert boundary_strength(intra_cell(), intra_cell(), mb_edge=False) == 3

    def test_coded_residual_is_2(self):
        assert boundary_strength(inter_cell(nonzero=True), inter_cell(), False) == 2

    def test_reference_mismatch_is_1(self):
        assert boundary_strength(inter_cell(ref=0), inter_cell(ref=1), False) == 1

    def test_large_mv_difference_is_1(self):
        assert boundary_strength(inter_cell(mv=(0, 0)), inter_cell(mv=(4, 0)), False) == 1

    def test_small_mv_difference_is_0(self):
        assert boundary_strength(inter_cell(mv=(0, 0)), inter_cell(mv=(3, 3)), False) == 0

    def test_matching_inter_is_0(self):
        cell = inter_cell(mv=(8, -4))
        assert boundary_strength(cell, cell, False) == 0


class TestMeta:
    def test_default_is_intra(self):
        meta = DeblockMeta(2, 2)
        assert meta.cell(0, 0).intra

    def test_mark_inter_then_nonzero(self):
        meta = DeblockMeta(2, 2)
        meta.mark_inter(0, 0, 4, 4, MotionVector(4, 0), 1)
        assert not meta.cell(2, 2).intra
        assert meta.cell(2, 2).ref == 1
        meta.set_nonzero(2, 2, True)
        assert meta.cell(2, 2).nonzero
        assert meta.cell(2, 2).mv == MotionVector(4, 0)

    def test_mark_intra_mb(self):
        meta = DeblockMeta(2, 2)
        meta.mark_inter(0, 0, 8, 8, MotionVector(0, 0), 0)
        meta.mark_intra_mb(1, 1)
        assert meta.cell(4, 4).intra
        assert not meta.cell(0, 0).intra


def step_frame(width=32, height=32, level_a=100, level_b=112) -> WorkingFrame:
    """A frame with a blocking-artifact-sized step at the MB boundary x=16.

    The step (12) sits below the alpha threshold at QP 30 (~25), so the
    filter treats it as a coding artifact; a much larger step would be
    protected as a real picture edge.
    """
    frame = WorkingFrame.blank(width, height)
    frame.y[:, :16] = level_a
    frame.y[:, 16:] = level_b
    frame.u[:, :8] = level_a
    frame.u[:, 8:] = level_b
    frame.v[:] = 128
    return frame


class TestFilterBehaviour:
    def test_intra_edge_smooths_step(self):
        frame = step_frame()
        meta = DeblockMeta(2, 2)  # all intra by default
        before = frame.y.copy()
        DeblockFilter(KERNELS, qp=30).apply(frame, meta)
        # The step at x=16 must be softened: boundary difference shrinks.
        assert abs(int(frame.y[8, 16]) - int(frame.y[8, 15])) < abs(
            int(before[8, 16]) - int(before[8, 15])
        )

    def test_bs0_leaves_frame_untouched(self):
        frame = step_frame()
        meta = DeblockMeta(2, 2)
        for mby in range(2):
            for mbx in range(2):
                meta.mark_inter(4 * mbx, 4 * mby, 4, 4, MotionVector(0, 0), 0)
        before = frame.y.copy()
        DeblockFilter(KERNELS, qp=30).apply(frame, meta)
        assert np.array_equal(frame.y, before)

    def test_low_qp_disables_filter(self):
        frame = step_frame()
        meta = DeblockMeta(2, 2)
        before = frame.y.copy()
        DeblockFilter(KERNELS, qp=10).apply(frame, meta)
        assert np.array_equal(frame.y, before)

    def test_flat_frame_unchanged(self):
        frame = WorkingFrame.blank(32, 32)
        frame.y[:] = 100
        meta = DeblockMeta(2, 2)
        DeblockFilter(KERNELS, qp=35).apply(frame, meta)
        assert np.all(frame.y == 100)

    def test_strong_edge_gradient_preserved_far_from_edge(self):
        frame = step_frame()
        meta = DeblockMeta(2, 2)
        DeblockFilter(KERNELS, qp=30).apply(frame, meta)
        # Samples >3 px from any edge cannot change.
        assert int(frame.y[8, 20]) == 112

    def test_chroma_filtered_on_intra_edges(self):
        frame = step_frame()
        meta = DeblockMeta(2, 2)
        before_u = frame.u.copy()
        DeblockFilter(KERNELS, qp=30).apply(frame, meta)
        assert not np.array_equal(frame.u, before_u)

    def test_scalar_and_simd_agree_on_frame(self):
        rng = np.random.default_rng(1)
        frames = []
        for backend in ("scalar", "simd"):
            frame = WorkingFrame.blank(32, 32)
            frame.y[:] = rng.integers(0, 256, (32, 32))
            rng = np.random.default_rng(1)  # reset for identical input
            frame.y[:] = np.random.default_rng(2).integers(0, 256, (32, 32))
            frame.u[:] = np.random.default_rng(3).integers(0, 256, (16, 16))
            frame.v[:] = np.random.default_rng(4).integers(0, 256, (16, 16))
            meta = DeblockMeta(2, 2)
            meta.mark_inter(0, 0, 4, 4, MotionVector(0, 0), 0)
            meta.set_nonzero(3, 1, True)
            DeblockFilter(get_kernels(backend), qp=32).apply(frame, meta)
            frames.append(frame)
        assert np.array_equal(frames[0].y, frames[1].y)
        assert np.array_equal(frames[0].u, frames[1].u)
        assert np.array_equal(frames[0].v, frames[1].v)

    def test_padding_cache_invalidated(self):
        frame = step_frame()
        padded_before = frame.padded("y", 4)
        meta = DeblockMeta(2, 2)
        DeblockFilter(KERNELS, qp=30).apply(frame, meta)
        padded_after = frame.padded("y", 4)
        assert padded_after is not padded_before
