"""Edge-case geometries and lengths for every codec.

Minimum-size frames (one macroblock), extreme aspect ratios and
single-frame sequences exercise the boundary handling of prediction,
padding and the GOP scheduler.
"""

import numpy as np
import pytest

from repro.codecs import CODEC_NAMES, EXTENSION_CODEC_NAMES, get_decoder, get_encoder
from repro.common.metrics import sequence_psnr
from repro.common.yuv import YuvFrame, YuvSequence

ALL_CODECS = CODEC_NAMES + EXTENSION_CODEC_NAMES


def fields_for(codec, width, height):
    fields = dict(width=width, height=height, search_range=4)
    if codec == "h264":
        fields["qp"] = 26
    elif codec == "mjpeg":
        fields["quality"] = 80
    else:
        fields["qscale"] = 5
    return fields


def textured(width, height, count, seed=0):
    rng = np.random.default_rng(seed)
    base = rng.integers(0, 256, (height // 4, width // 4))
    frames = []
    for index in range(count):
        luma = np.kron(np.roll(base, index, axis=1), np.ones((4, 4)))
        frames.append(
            YuvFrame(
                luma.astype(np.uint8),
                np.full((height // 2, width // 2), 120, dtype=np.uint8),
                np.full((height // 2, width // 2), 136, dtype=np.uint8),
            )
        )
    return YuvSequence(frames, fps=25)


def roundtrip(codec, video):
    stream = get_encoder(
        codec, **fields_for(codec, video.width, video.height)
    ).encode_sequence(video)
    decoded = get_decoder(codec).decode(stream)
    assert len(decoded) == len(video)
    return sequence_psnr(video, decoded)


@pytest.mark.parametrize("codec", ALL_CODECS)
class TestGeometries:
    def test_single_macroblock_frame(self, codec):
        video = textured(16, 16, 5, seed=1)
        assert roundtrip(codec, video).y > 26.0

    def test_single_frame_sequence(self, codec):
        video = textured(32, 32, 1, seed=2)
        assert roundtrip(codec, video).y > 28.0

    def test_two_frame_sequence(self, codec):
        # Forces the degenerate GOP: one I, one trailing anchor.
        video = textured(32, 32, 2, seed=3)
        assert roundtrip(codec, video).y > 28.0

    def test_wide_strip(self, codec):
        video = textured(128, 16, 4, seed=4)
        assert roundtrip(codec, video).y > 26.0

    def test_tall_strip(self, codec):
        video = textured(16, 128, 4, seed=5)
        assert roundtrip(codec, video).y > 26.0


@pytest.mark.parametrize("codec", ALL_CODECS)
class TestExtremeContent:
    def test_black_frames(self, codec):
        video = YuvSequence([YuvFrame.blank(32, 32) for _ in range(4)])
        psnr = roundtrip(codec, video)
        assert psnr.y > 40.0  # near-lossless on flat content

    def test_white_frames(self, codec):
        video = YuvSequence(
            [YuvFrame.blank(32, 32, y=235, u=128, v=128) for _ in range(3)]
        )
        assert roundtrip(codec, video).y > 40.0

    def test_checkerboard(self, codec):
        luma = np.zeros((32, 32), dtype=np.uint8)
        luma[::2, ::2] = 255
        luma[1::2, 1::2] = 255
        frame = YuvFrame(luma,
                         np.full((16, 16), 128, dtype=np.uint8),
                         np.full((16, 16), 128, dtype=np.uint8))
        video = YuvSequence([frame.copy() for _ in range(3)])
        # Pathological HF content: only demand a sane round-trip.
        psnr = roundtrip(codec, video)
        assert psnr.y > 10.0

    def test_saturated_chroma(self, codec):
        video = YuvSequence(
            [YuvFrame.blank(32, 32, y=128, u=255, v=0) for _ in range(3)]
        )
        psnr = roundtrip(codec, video)
        assert psnr.u > 30.0
        assert psnr.v > 30.0
