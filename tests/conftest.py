"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.yuv import YuvFrame, YuvSequence
from repro.kernels import get_kernels


@pytest.fixture(scope="session")
def scalar_kernels():
    return get_kernels("scalar")


@pytest.fixture(scope="session")
def simd_kernels():
    return get_kernels("simd")


@pytest.fixture(params=["scalar", "simd"])
def kernels(request):
    """Parametrises a test over both kernel backends."""
    return get_kernels(request.param)


def make_frame(width: int, height: int, seed: int = 0) -> YuvFrame:
    """A deterministic random frame."""
    rng = np.random.default_rng(seed)
    return YuvFrame(
        rng.integers(0, 256, (height, width), dtype=np.uint8),
        rng.integers(0, 256, (height // 2, width // 2), dtype=np.uint8),
        rng.integers(0, 256, (height // 2, width // 2), dtype=np.uint8),
    )


def make_moving_sequence(width: int = 48, height: int = 32, frames: int = 5,
                         dx: int = 2, dy: int = 1, seed: int = 7) -> YuvSequence:
    """A smooth textured sequence translating by (dx, dy) px/frame.

    Built by cropping a shifting window out of a larger static world, so
    motion estimation has a well-defined ground truth.
    """
    rng = np.random.default_rng(seed)
    margin = max(abs(dx), abs(dy)) * frames + 8
    world_h, world_w = height + 2 * margin, width + 2 * margin
    # Smooth world: random coarse grid blown up, so half-pel interpolation
    # behaves sanely.
    coarse = rng.integers(32, 224, (world_h // 8 + 2, world_w // 8 + 2))
    world = np.kron(coarse, np.ones((8, 8)))[:world_h, :world_w]
    frames_list = []
    for index in range(frames):
        x0 = margin + dx * index
        y0 = margin + dy * index
        luma = world[y0 : y0 + height, x0 : x0 + width].astype(np.uint8)
        chroma_u = luma[::2, ::2] // 2 + 64
        chroma_v = 255 - luma[::2, ::2] // 2
        frames_list.append(YuvFrame(luma, chroma_u, chroma_v))
    return YuvSequence(frames_list, fps=25, name="synthetic_motion")


@pytest.fixture(scope="session")
def moving_sequence() -> YuvSequence:
    return make_moving_sequence()


@pytest.fixture(scope="session")
def tiny_video() -> YuvSequence:
    """A 32x32, 5-frame sequence for fast codec round-trips."""
    return make_moving_sequence(width=32, height=32, frames=5, dx=1, dy=0, seed=3)
