"""Tests for the Bjøntegaard-delta metrics."""

import pytest

from repro.common.bdrate import bd_psnr, bd_rate, rd_points_from_rows
from repro.errors import ConfigError


def curve(scale: float, offset: float = 0.0):
    """A synthetic RD curve: psnr = 10*log10(rate/scale) + 30 + offset."""
    import math

    return [
        (rate * scale, 10.0 * math.log10(rate) + 30.0 + offset)
        for rate in (100.0, 200.0, 400.0, 800.0)
    ]


class TestBdPsnr:
    def test_identical_curves_zero(self):
        assert bd_psnr(curve(1.0), curve(1.0)) == pytest.approx(0.0, abs=1e-9)

    def test_offset_curve_reports_offset(self):
        assert bd_psnr(curve(1.0), curve(1.0, offset=2.0)) == pytest.approx(2.0, abs=1e-6)

    def test_sign_convention(self):
        # Worse test curve -> negative BD-PSNR.
        assert bd_psnr(curve(1.0), curve(1.0, offset=-1.5)) < 0

    def test_too_few_points(self):
        with pytest.raises(ConfigError):
            bd_psnr(curve(1.0)[:3], curve(1.0))

    def test_nonpositive_rate_rejected(self):
        bad = [(0.0, 30.0), (1.0, 31.0), (2.0, 32.0), (3.0, 33.0)]
        with pytest.raises(ConfigError):
            bd_psnr(bad, curve(1.0))


class TestBdRate:
    def test_identical_curves_zero(self):
        assert bd_rate(curve(1.0), curve(1.0)) == pytest.approx(0.0, abs=1e-9)

    def test_half_rate_curve(self):
        # Same quality at half the bitrate -> BD-rate = -50%.
        assert bd_rate(curve(1.0), curve(0.5)) == pytest.approx(-50.0, abs=0.5)

    def test_double_rate_curve(self):
        assert bd_rate(curve(1.0), curve(2.0)) == pytest.approx(100.0, abs=1.0)

    def test_real_codec_curves(self, tiny_video):
        # H.264's RD curve must dominate MPEG-2's (negative BD-rate).
        from repro.codecs import get_decoder, get_encoder
        from repro.common.metrics import sequence_psnr
        from repro.transform.qp import h264_qp_from_mpeg

        curves = {}
        for codec in ("mpeg2", "h264"):
            points = []
            for qscale in (2, 4, 8, 16):
                fields = dict(width=tiny_video.width, height=tiny_video.height,
                              search_range=4)
                if codec == "h264":
                    fields["qp"] = h264_qp_from_mpeg(qscale)
                else:
                    fields["qscale"] = qscale
                stream = get_encoder(codec, **fields).encode_sequence(tiny_video)
                decoded = get_decoder(codec).decode(stream)
                points.append((stream.bitrate_kbps,
                               sequence_psnr(tiny_video, decoded).combined))
            curves[codec] = sorted(points)
        assert bd_rate(curves["mpeg2"], curves["h264"]) < -10.0


class TestRdPointExtraction:
    def test_filters_and_sorts(self):
        from repro.bench.ratedistortion import RdRow
        from repro.common.metrics import FramePsnr

        rows = [
            RdRow("576p25", "rush_hour", "h264", FramePsnr(40, 40, 40), 200.0, 1),
            RdRow("576p25", "rush_hour", "h264", FramePsnr(42, 42, 42), 100.0, 1),
            RdRow("576p25", "rush_hour", "mpeg2", FramePsnr(41, 41, 41), 300.0, 1),
        ]
        points = rd_points_from_rows(rows, "h264", "rush_hour", "576p25")
        assert points == [(100.0, 42.0), (200.0, 40.0)]
