"""Tests for ``repro.analysis`` — the hdvb-lint static-analysis engine.

Every shipped rule gets a planted-violation fixture and a corrected twin:
the rule must catch the former and stay silent on the latter.  On top of
that: inline-suppression and baseline round-trips, the JSON reporter
schema, CLI exit codes, and the self-lint gate asserting the shipped
tree is clean.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    FINDINGS_SCHEMA,
    BaselineError,
    all_rules,
    canonical_module,
    empty_baseline,
    findings_document,
    load_baseline,
    render_human,
    run,
    suppressed_ids,
    write_baseline,
)
from repro.analysis.cli import main as lint_main

REPO_ROOT = Path(__file__).resolve().parent.parent


def lint_tree(tmp_path, files, **kwargs):
    """Write {relpath: source} under tmp_path and lint the tree."""
    for relpath, source in files.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))
    return run([str(tmp_path)], **kwargs)


def rule_ids(result):
    return [finding.rule_id for finding in result.findings]


class TestEngineBasics:
    def test_rule_catalogue_is_complete(self):
        ids = [rule.rule_id for rule in all_rules()]
        assert ids == sorted(ids)
        assert {"HDVB101", "HDVB102", "HDVB110", "HDVB111", "HDVB120",
                "HDVB130", "HDVB140", "HDVB150", "HDVB160", "HDVB170",
                "HDVB180", "HDVB190", "HDVB200", "HDVB201", "HDVB202",
                "HDVB203", "HDVB210"} <= set(ids)
        for rule in all_rules():
            assert rule.name and rule.rationale, rule.rule_id

    def test_canonical_module_strips_wrappers(self):
        assert canonical_module(Path("src/repro/codecs/base.py")) == "codecs/base.py"
        assert canonical_module(Path("repro/me/search.py")) == "me/search.py"
        assert canonical_module(Path("codecs/base.py")) == "codecs/base.py"

    def test_unparsable_file_reports_hdvb100(self, tmp_path):
        result = lint_tree(tmp_path, {"codecs/broken.py": "def broken(:\n"})
        assert rule_ids(result) == ["HDVB100"]

    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            run(["no/such/tree"])

    def test_select_and_ignore_filter_rules(self, tmp_path):
        files = {
            "codecs/evil.py": """
                import random

                def jitter():
                    return random.random()

                def parse(value):
                    raise ValueError(value)
            """,
        }
        both = lint_tree(tmp_path, files)
        assert sorted(rule_ids(both)) == ["HDVB101", "HDVB110"]
        only = lint_tree(tmp_path, files, select=["HDVB101"])
        assert rule_ids(only) == ["HDVB101"]
        skipped = lint_tree(tmp_path, files, ignore=["HDVB101"])
        assert rule_ids(skipped) == ["HDVB110"]


class TestDeterminismRules:
    def test_hdvb101_catches_module_state_random(self, tmp_path):
        result = lint_tree(tmp_path, {"robustness/evil.py": """
            import random

            def pick(items):
                return random.choice(items)
        """})
        assert rule_ids(result) == ["HDVB101"]
        assert "random.choice" in result.findings[0].message

    def test_hdvb101_catches_numpy_module_state(self, tmp_path):
        result = lint_tree(tmp_path, {"transport/evil.py": """
            import numpy as np

            def noise(n):
                return np.random.rand(n)
        """})
        assert rule_ids(result) == ["HDVB101"]

    def test_hdvb101_clean_twin_seeded_generators(self, tmp_path):
        result = lint_tree(tmp_path, {"robustness/clean.py": """
            import random
            import numpy as np

            def pick(items, seed):
                return random.Random(seed).choice(items)

            def noise(n, seed):
                return np.random.default_rng(seed).normal(size=n)
        """})
        assert result.clean

    def test_hdvb101_out_of_scope_module_allowed(self, tmp_path):
        result = lint_tree(tmp_path, {"bench/jitterutil.py": """
            import random

            def pause():
                return random.uniform(0.5, 1.5)
        """})
        assert result.clean

    def test_hdvb102_catches_wall_clock(self, tmp_path):
        result = lint_tree(tmp_path, {"transport/clock.py": """
            import time
            from datetime import datetime

            def stamp():
                return time.time(), datetime.now()
        """})
        assert sorted(rule_ids(result)) == ["HDVB102", "HDVB102"]

    def test_hdvb102_clean_twin_perf_counter(self, tmp_path):
        result = lint_tree(tmp_path, {"transport/clock.py": """
            import time

            def measure():
                return time.perf_counter()
        """})
        assert result.clean


class TestTaxonomyRules:
    def test_hdvb110_catches_builtin_raise_in_decode_path(self, tmp_path):
        result = lint_tree(tmp_path, {"codecs/dec.py": """
            def parse_header(value):
                if value < 0:
                    raise ValueError(f"bad header {value}")
                return value
        """})
        assert rule_ids(result) == ["HDVB110"]

    def test_hdvb110_clean_twin_taxonomy_raise(self, tmp_path):
        result = lint_tree(tmp_path, {"codecs/dec.py": """
            from repro.errors import BitstreamError

            def parse_header(value):
                if value < 0:
                    raise BitstreamError(f"bad header {value}")
                return value
        """})
        assert result.clean

    def test_hdvb110_out_of_scope_module_allowed(self, tmp_path):
        result = lint_tree(tmp_path, {"common/yuvish.py": """
            def check(value):
                raise ValueError(value)
        """})
        assert result.clean

    def test_hdvb110_reraise_of_bound_name_allowed(self, tmp_path):
        result = lint_tree(tmp_path, {"robustness/eng.py": """
            def guarded(failure):
                if failure is not None:
                    raise failure
        """})
        assert result.clean

    def test_hdvb111_catches_bare_except(self, tmp_path):
        result = lint_tree(tmp_path, {"bench/sweep.py": """
            def trial(fn):
                try:
                    fn()
                except:
                    pass
        """})
        assert rule_ids(result) == ["HDVB111"]

    def test_hdvb111_catches_blind_exception_swallow(self, tmp_path):
        result = lint_tree(tmp_path, {"bench/sweep.py": """
            def trial(fn):
                try:
                    fn()
                except Exception:
                    return None
        """})
        assert rule_ids(result) == ["HDVB111"]

    def test_hdvb111_clean_twins(self, tmp_path):
        result = lint_tree(tmp_path, {"bench/sweep.py": """
            def rethrow(fn):
                try:
                    fn()
                except Exception:
                    raise

            def recorded(fn, log):
                try:
                    fn()
                except Exception as error:
                    log.append(repr(error))

            def narrow(fn):
                try:
                    fn()
                except KeyError:
                    return None
        """})
        assert result.clean


KERNEL_TRIO_CLEAN = {
    "kernels/scalar.py": """
        class ScalarKernels:
            def sad(self, a, b):
                return 0

            def idct8(self, coeffs):
                return coeffs
    """,
    "kernels/simd.py": """
        class SimdKernels:
            def sad(self, a, b):
                return 0

            def idct8(self, coeffs):
                return coeffs
    """,
    "kernels/api.py": """
        KERNEL_NAMES = ("sad", "idct8")
    """,
}


class TestKernelParityRule:
    def test_clean_trio_passes(self, tmp_path):
        result = lint_tree(tmp_path, dict(KERNEL_TRIO_CLEAN))
        assert result.clean

    def test_missing_simd_counterpart(self, tmp_path):
        files = dict(KERNEL_TRIO_CLEAN)
        files["kernels/simd.py"] = """
            class SimdKernels:
                def sad(self, a, b):
                    return 0
        """
        files["kernels/api.py"] = 'KERNEL_NAMES = ("sad",)\n'
        result = lint_tree(tmp_path, files)
        assert rule_ids(result) == ["HDVB120"]
        assert "idct8" in result.findings[0].message

    def test_signature_divergence(self, tmp_path):
        files = dict(KERNEL_TRIO_CLEAN)
        files["kernels/simd.py"] = """
            class SimdKernels:
                def sad(self, a, b, stride=1):
                    return 0

                def idct8(self, coeffs):
                    return coeffs
        """
        result = lint_tree(tmp_path, files)
        assert rule_ids(result) == ["HDVB120"]
        assert "signature diverges" in result.findings[0].message

    def test_dispatch_table_gap_both_directions(self, tmp_path):
        files = dict(KERNEL_TRIO_CLEAN)
        files["kernels/api.py"] = 'KERNEL_NAMES = ("sad", "phantom")\n'
        result = lint_tree(tmp_path, files)
        messages = " | ".join(f.message for f in result.findings)
        assert rule_ids(result) == ["HDVB120", "HDVB120"]
        assert "idct8" in messages and "phantom" in messages

    def test_annotations_do_not_count_as_divergence(self, tmp_path):
        files = dict(KERNEL_TRIO_CLEAN)
        files["kernels/scalar.py"] = """
            class ScalarKernels:
                def sad(self, a, b) -> int:
                    return 0

                def idct8(self, coeffs):
                    return coeffs
        """
        files["kernels/simd.py"] = """
            import numpy as np

            class SimdKernels:
                def sad(self, a, b) -> np.integer:
                    return np.int64(0)

                def idct8(self, coeffs):
                    return coeffs
        """
        result = lint_tree(tmp_path, files)
        assert result.clean


class TestPickleSafetyRule:
    def test_lambda_submission_flagged(self, tmp_path):
        result = lint_tree(tmp_path, {"parallel.py": """
            from concurrent.futures import ProcessPoolExecutor

            def fan_out(jobs):
                with ProcessPoolExecutor() as pool:
                    return [pool.submit(lambda job: job, job) for job in jobs]
        """})
        assert rule_ids(result) == ["HDVB130"]
        assert "lambda" in result.findings[0].message

    def test_nested_def_submission_flagged(self, tmp_path):
        result = lint_tree(tmp_path, {"parallel.py": """
            from concurrent.futures import ProcessPoolExecutor

            def fan_out(jobs):
                def worker(job):
                    return job
                with ProcessPoolExecutor() as pool:
                    return [pool.submit(worker, job) for job in jobs]
        """})
        assert rule_ids(result) == ["HDVB130"]
        assert "closures" in result.findings[0].message

    def test_lambda_argument_flagged(self, tmp_path):
        result = lint_tree(tmp_path, {"parallel.py": """
            from concurrent.futures import ProcessPoolExecutor

            def encode(job):
                return job

            def fan_out(jobs):
                with ProcessPoolExecutor() as pool:
                    return [pool.submit(encode, key=lambda: 1) for job in jobs]
        """})
        assert rule_ids(result) == ["HDVB130"]

    def test_clean_twin_module_level_worker(self, tmp_path):
        result = lint_tree(tmp_path, {"parallel.py": """
            from concurrent.futures import ProcessPoolExecutor

            def encode(job):
                return job

            def fan_out(jobs):
                with ProcessPoolExecutor() as pool:
                    return [pool.submit(encode, job) for job in jobs]
        """})
        assert result.clean

    def test_modules_without_process_pools_ignored(self, tmp_path):
        result = lint_tree(tmp_path, {"bench/queueing.py": """
            def fan_out(pool, jobs):
                return [pool.submit(lambda job: job, job) for job in jobs]
        """})
        assert result.clean


class TestBitstreamSeamRule:
    def test_ad_hoc_bitreader_flagged(self, tmp_path):
        result = lint_tree(tmp_path, {"codecs/h999/decoder.py": """
            from repro.common.bitstream import BitReader

            def decode(payload):
                return BitReader(payload).read_bits(8)
        """})
        assert rule_ids(result) == ["HDVB140"]
        assert "bit-position" in result.findings[0].message

    def test_stray_struct_unpack_flagged(self, tmp_path):
        result = lint_tree(tmp_path, {"me/wire.py": """
            import struct

            def parse(buffer):
                return struct.unpack(">I", buffer[:4])
        """})
        assert rule_ids(result) == ["HDVB140"]

    def test_clean_twin_inside_guarded_seam(self, tmp_path):
        result = lint_tree(tmp_path, {"transport/packetize.py": """
            import struct
            from repro.common.bitstream import BitReader

            def parse(buffer):
                return struct.unpack(">I", buffer[:4]), BitReader(buffer)
        """})
        assert result.clean


class TestSpanContextRule:
    def test_discarded_span_flagged(self, tmp_path):
        result = lint_tree(tmp_path, {"bench/instrumented.py": """
            from repro.telemetry.trace import span

            def work():
                span("bench.work")
                return 1
        """})
        assert rule_ids(result) == ["HDVB150"]

    def test_never_entered_handle_flagged(self, tmp_path):
        result = lint_tree(tmp_path, {"bench/instrumented.py": """
            from repro.telemetry.trace import span as telemetry_span

            def work():
                handle = telemetry_span("bench.work")
                return handle
        """})
        assert rule_ids(result) == ["HDVB150"]

    def test_clean_twins_with_statement_forms(self, tmp_path):
        result = lint_tree(tmp_path, {"bench/instrumented.py": """
            from repro.telemetry.trace import span as telemetry_span

            def direct():
                with telemetry_span("bench.direct", codec="mpeg2"):
                    return 1

            def via_handle():
                handle = telemetry_span("bench.handle")
                with handle:
                    handle.set(extra=1)
        """})
        assert result.clean


class TestResultSinkRule:
    def test_json_dump_in_bench_module_flagged(self, tmp_path):
        result = lint_tree(tmp_path, {"bench/sweep.py": """
            import json

            def save(rows, path):
                with open(path) as handle:
                    json.dump(rows, handle)
        """})
        assert rule_ids(result) == ["HDVB160"]

    def test_json_dump_from_import_flagged(self, tmp_path):
        result = lint_tree(tmp_path, {"robustness/bench.py": """
            from json import dump

            def save(rows, handle):
                dump(rows, handle)
        """})
        assert rule_ids(result) == ["HDVB160"]

    def test_open_for_writing_flagged(self, tmp_path):
        result = lint_tree(tmp_path, {"transport/bench.py": """
            def save(text, path):
                with open(path, "w", encoding="utf-8") as handle:
                    handle.write(text)
        """})
        assert rule_ids(result) == ["HDVB160"]

    def test_append_mode_keyword_flagged(self, tmp_path):
        result = lint_tree(tmp_path, {"bench/sweep.py": """
            def save(text, path):
                with open(path, mode="a") as handle:
                    handle.write(text)
        """})
        assert rule_ids(result) == ["HDVB160"]

    def test_clean_twin_uses_the_store(self, tmp_path):
        result = lint_tree(tmp_path, {"bench/sweep.py": """
            import json

            from repro.observe.store import HistoryStore

            def save(records, document):
                HistoryStore().append_many(records)
                return json.dumps(document)

            def load(path):
                with open(path, "r", encoding="utf-8") as handle:
                    return handle.read()

            def load_binary(path):
                with open(path, "rb") as handle:
                    return handle.read()
        """})
        assert result.clean

    def test_outside_bench_scope_ignored(self, tmp_path):
        result = lint_tree(tmp_path, {"codecs/dump.py": """
            import json

            def save(rows, path):
                with open(path, "w") as handle:
                    json.dump(rows, handle)
        """})
        assert result.clean

    def test_inline_suppression(self, tmp_path):
        result = lint_tree(tmp_path, {"bench/sweep.py": """
            def save(text, path):
                with open(path, "w") as handle:  # hdvb: disable=HDVB160
                    handle.write(text)
        """})
        assert result.clean
        assert result.suppressed == 1


class TestEventDisciplineRule:
    def test_emit_outside_scope_flagged(self, tmp_path):
        result = lint_tree(tmp_path, {"origin/feeder.py": """
            from repro.telemetry.events import emit

            def feed():
                emit("session.state", state="streaming")
        """})
        assert rule_ids(result) == ["HDVB210"]
        assert "correlation_scope" in result.findings[0].message

    def test_unregistered_name_flagged(self, tmp_path):
        result = lint_tree(tmp_path, {"orchestrate/steps.py": """
            from repro.telemetry.events import correlation_scope, emit

            def step(cell):
                with correlation_scope(cell_id=cell):
                    emit("my.custom.event", cell=cell)
        """})
        assert rule_ids(result) == ["HDVB210"]
        assert "EVENT_NAMES" in result.findings[0].message

    def test_computed_name_flagged(self, tmp_path):
        result = lint_tree(tmp_path, {"origin/feeder.py": """
            from repro.telemetry.events import correlation_scope, emit

            def feed(kind):
                with correlation_scope(session_id="s0"):
                    emit("cache." + kind)
        """})
        assert rule_ids(result) == ["HDVB210"]
        assert "literal" in result.findings[0].message

    def test_clean_twin_scoped_literal_emit(self, tmp_path):
        result = lint_tree(tmp_path, {"origin/feeder.py": """
            from repro.telemetry.events import correlation_scope, emit

            def feed(session_id):
                with correlation_scope(session_id=session_id):
                    emit("session.state", state="streaming")
        """})
        assert result.clean

    def test_class_lifetime_scope_covers_methods(self, tmp_path):
        result = lint_tree(tmp_path, {"origin/runner.py": """
            from repro.telemetry import events as _events
            from repro.telemetry.events import correlation_scope

            class Runner:
                def run(self):
                    with correlation_scope(session_id="s0"):
                        self._step()

                def _step(self):
                    _events.emit("session.state", state="live")

                def _emit(self, name, **fields):
                    _events.emit(name, **fields)
        """})
        assert result.clean

    def test_module_alias_emit_outside_scope_flagged(self, tmp_path):
        result = lint_tree(tmp_path, {"origin/loose.py": """
            from repro.telemetry import events as _events

            def fire():
                _events.emit("session.state", state="live")
        """})
        assert rule_ids(result) == ["HDVB210"]

    def test_outside_event_scope_ignored(self, tmp_path):
        result = lint_tree(tmp_path, {"bench/helper.py": """
            from repro.telemetry.events import emit

            def fire():
                emit("anything.goes")
        """})
        assert result.clean


class TestSuppressionsAndBaseline:
    def test_inline_pragma_parsing(self):
        assert suppressed_ids("x = 1  # hdvb: disable=HDVB101") == {"HDVB101"}
        assert suppressed_ids("x  # hdvb: disable=HDVB101, HDVB110") == {
            "HDVB101", "HDVB110"}
        assert suppressed_ids("plain line") == set()

    def test_inline_suppression_silences_finding(self, tmp_path):
        result = lint_tree(tmp_path, {"codecs/dec.py": """
            def parse(value):
                raise ValueError(value)  # hdvb: disable=HDVB110
        """})
        assert result.clean
        assert result.suppressed == 1

    def test_suppression_of_other_rule_does_not_apply(self, tmp_path):
        result = lint_tree(tmp_path, {"codecs/dec.py": """
            def parse(value):
                raise ValueError(value)  # hdvb: disable=HDVB101
        """})
        assert rule_ids(result) == ["HDVB110"]

    def test_baseline_round_trip(self, tmp_path):
        files = {"codecs/dec.py": """
            def parse(value):
                raise ValueError(value)
        """}
        first = lint_tree(tmp_path, files)
        assert len(first.findings) == 1

        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, first.findings, reason="grandfathered")
        baseline = load_baseline(baseline_path)
        assert len(baseline.entries) == 1

        second = run([str(tmp_path)], baseline=baseline)
        assert second.clean
        assert len(second.baselined) == 1
        assert not second.stale_baseline

    def test_stale_baseline_entry_surfaces(self, tmp_path):
        files = {"codecs/dec.py": """
            def parse(value):
                raise ValueError(value)
        """}
        first = lint_tree(tmp_path, files)
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, first.findings, reason="grandfathered")
        # Fix the violation; the baseline entry is now stale.
        (tmp_path / "codecs/dec.py").write_text(textwrap.dedent("""
            from repro.errors import BitstreamError

            def parse(value):
                raise BitstreamError(str(value))
        """))
        result = run([str(tmp_path)], baseline=load_baseline(baseline_path))
        assert result.clean
        assert len(result.stale_baseline) == 1

    def test_baseline_entries_require_reasons(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text(json.dumps({
            "schema": "repro.analysis.baseline/1",
            "entries": [{"rule": "HDVB110", "module": "m.py",
                         "message": "x", "reason": ""}],
        }))
        with pytest.raises(BaselineError, match="reason"):
            load_baseline(bad)

    def test_malformed_baseline_rejected(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text("{}")
        with pytest.raises(BaselineError):
            load_baseline(bad)


class TestReporters:
    def _findings(self, tmp_path):
        return lint_tree(tmp_path, {"codecs/dec.py": """
            def parse(value):
                raise ValueError(value)
        """}).findings

    def test_json_document_schema(self, tmp_path):
        findings = self._findings(tmp_path)
        document = findings_document(findings, files_scanned=1)
        assert document["schema"] == FINDINGS_SCHEMA
        assert document["summary"]["total"] == 1
        assert document["summary"]["by_rule"] == {"HDVB110": 1}
        record = document["findings"][0]
        assert set(record) == {"rule", "path", "module", "line", "column",
                               "message", "hint"}
        assert record["rule"] == "HDVB110"
        assert record["module"] == "codecs/dec.py"
        assert record["line"] == 3
        # The document must be JSON-serialisable as-is.
        json.loads(json.dumps(document))

    def test_human_report_lines(self, tmp_path):
        findings = self._findings(tmp_path)
        text = render_human(findings, files_scanned=1)
        assert "HDVB110" in text
        assert "codecs/dec.py:3" in text
        assert "1 finding(s)" in text
        assert render_human([], files_scanned=3).endswith("no findings")


class TestCli:
    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        (tmp_path / "clean.py").write_text("x = 1\n")
        assert lint_main([str(tmp_path), "--no-baseline"]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_exit_one_on_findings_and_json_format(self, tmp_path, capsys):
        target = tmp_path / "codecs"
        target.mkdir()
        (target / "dec.py").write_text(
            "def parse(v):\n    raise ValueError(v)\n")
        code = lint_main([str(tmp_path), "--no-baseline", "--format", "json"])
        assert code == 1
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == FINDINGS_SCHEMA
        assert document["summary"]["total"] == 1

    def test_exit_two_on_missing_path(self, tmp_path, capsys):
        assert lint_main([str(tmp_path / "missing")]) == 2

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("HDVB101", "HDVB110", "HDVB120", "HDVB130",
                        "HDVB140", "HDVB150", "HDVB160"):
            assert rule_id in out

    def test_write_baseline_round_trip(self, tmp_path, capsys):
        target = tmp_path / "codecs"
        target.mkdir()
        (target / "dec.py").write_text(
            "def parse(v):\n    raise ValueError(v)\n")
        baseline_path = tmp_path / "baseline.json"
        assert lint_main([str(tmp_path), "--baseline", str(baseline_path),
                          "--write-baseline"]) == 0
        assert lint_main([str(tmp_path), "--baseline",
                          str(baseline_path)]) == 0
        capsys.readouterr()


class TestSelfLint:
    """The shipped tree must satisfy its own invariants."""

    def test_src_is_clean_without_baseline(self):
        result = run([str(REPO_ROOT / "src")], baseline=empty_baseline())
        assert result.findings == [], render_human(result.findings)

    def test_committed_baseline_is_near_empty_and_fresh(self):
        baseline_path = REPO_ROOT / ".hdvb-lint-baseline.json"
        baseline = load_baseline(baseline_path)
        # Fix violations instead of baselining them (ISSUE 4 satellite).
        assert len(baseline.entries) <= 3
        result = run([str(REPO_ROOT / "src")], baseline=baseline)
        assert result.clean
        assert not result.stale_baseline, result.stale_descriptions()


class TestSupervisedTaskRule:
    def test_bare_create_task_in_origin_flagged(self, tmp_path):
        result = lint_tree(tmp_path, {"origin/evil.py": """
            import asyncio

            def fire(coro):
                return asyncio.create_task(coro)
        """})
        assert rule_ids(result) == ["HDVB170"]

    def test_from_import_ensure_future_flagged(self, tmp_path):
        result = lint_tree(tmp_path, {"origin/evil.py": """
            from asyncio import ensure_future

            def fire(coro):
                return ensure_future(coro)
        """})
        assert rule_ids(result) == ["HDVB170"]

    def test_loop_method_form_flagged(self, tmp_path):
        result = lint_tree(tmp_path, {"origin/evil.py": """
            import asyncio

            def fire(coro):
                loop = asyncio.get_running_loop()
                return loop.create_task(coro)
        """})
        assert rule_ids(result) == ["HDVB170"]

    def test_aliased_import_resolved(self, tmp_path):
        result = lint_tree(tmp_path, {"origin/evil.py": """
            import asyncio as aio

            def fire(coro):
                return aio.create_task(coro)
        """})
        assert rule_ids(result) == ["HDVB170"]

    def test_supervise_module_is_sanctioned(self, tmp_path):
        result = lint_tree(tmp_path, {"origin/supervise.py": """
            import asyncio

            def spawn(coro, name):
                return asyncio.create_task(coro, name=name)
        """})
        assert result.clean

    def test_outside_origin_scope_ignored(self, tmp_path):
        result = lint_tree(tmp_path, {"transport/util.py": """
            import asyncio

            def fire(coro):
                return asyncio.create_task(coro)
        """})
        assert result.clean

    def test_clean_twin_spawns_through_supervisor(self, tmp_path):
        result = lint_tree(tmp_path, {"origin/clean.py": """
            def fire(supervisor, coro):
                return supervisor.spawn(coro, "session.reader")
        """})
        assert result.clean


class TestOrchestratorCellRule:
    def test_builtin_raise_in_orchestrate_flagged(self, tmp_path):
        result = lint_tree(tmp_path, {"orchestrate/evil.py": """
            def parse(value):
                raise ValueError(f"bad spec value {value!r}")
        """})
        assert rule_ids(result) == ["HDVB180"]

    def test_json_dump_sink_flagged(self, tmp_path):
        result = lint_tree(tmp_path, {"orchestrate/evil.py": """
            import json

            def save(results, handle):
                json.dump(results, handle)
        """})
        assert rule_ids(result) == ["HDVB180"]

    def test_text_write_sink_flagged(self, tmp_path):
        # Also a non-atomic write, so the HDVB190 atomicity rule co-fires.
        result = lint_tree(tmp_path, {"orchestrate/evil.py": """
            def save(results, path):
                with open(path, "w") as handle:
                    handle.write(str(results))
        """})
        assert sorted(rule_ids(result)) == ["HDVB180", "HDVB190"]

    def test_binary_atomic_write_is_legal(self, tmp_path):
        # Artifact/manifest files are binary temp+replace writes -- the
        # sanctioned layout, not an ad-hoc result sink.
        result = lint_tree(tmp_path, {"orchestrate/clean.py": """
            import json
            import os

            def commit(path, payload):
                with open(path + ".tmp", "wb") as handle:
                    handle.write(json.dumps(payload).encode("utf-8"))
                os.replace(path + ".tmp", path)
        """})
        assert result.clean

    def test_clean_twin_uses_store_and_taxonomy(self, tmp_path):
        result = lint_tree(tmp_path, {"orchestrate/clean.py": """
            from repro.errors import OrchestrateError

            def persist(store, records, cell_id):
                if not records:
                    raise OrchestrateError("cell produced no records",
                                           cell=cell_id)
                store.append_many(records)
        """})
        assert result.clean

    def test_outside_orchestrate_scope_ignored(self, tmp_path):
        # A private helper: public origin/ entries raising builtins are
        # HDVB202's business, which is not what this test probes.
        result = lint_tree(tmp_path, {"origin/util.py": """
            def _parse(value):
                raise ValueError(value)
        """})
        assert result.clean

    def test_shipped_orchestrate_tree_is_clean(self):
        result = run([str(REPO_ROOT / "src" / "repro" / "orchestrate")],
                     baseline=empty_baseline())
        assert result.clean, render_human(result.findings)


class TestAtomicWriteRule:
    def test_plain_write_open_flagged(self, tmp_path):
        result = lint_tree(tmp_path, {"observe/evil.py": """
            def save(path, text):
                with open(path, "w") as handle:
                    handle.write(text)
        """})
        assert rule_ids(result) == ["HDVB190"]

    def test_binary_write_open_flagged_unlike_hdvb160(self, tmp_path):
        result = lint_tree(tmp_path, {"orchestrate/evil.py": """
            def save(path, payload):
                with open(path, "wb") as handle:
                    handle.write(payload)
        """})
        assert "HDVB190" in rule_ids(result)

    def test_path_write_text_flagged(self, tmp_path):
        result = lint_tree(tmp_path, {"observe/evil.py": """
            def save(path, text):
                path.write_text(text)
        """})
        assert rule_ids(result) == ["HDVB190"]

    def test_replace_in_same_function_is_atomic(self, tmp_path):
        result = lint_tree(tmp_path, {"observe/clean.py": """
            import os

            def save(path, payload):
                with open(path + ".tmp", "wb") as handle:
                    handle.write(payload)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(path + ".tmp", path)
        """})
        assert result.clean

    def test_fileops_seam_is_atomic(self, tmp_path):
        result = lint_tree(tmp_path, {"observe/clean.py": """
            import os

            from repro.chaos.fsops import fileops

            def append(path, payload):
                ops = fileops()
                fd = ops.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND)
                try:
                    ops.write(fd, payload, path=path)
                finally:
                    ops.close(fd)
        """})
        assert result.clean

    def test_read_open_not_flagged(self, tmp_path):
        result = lint_tree(tmp_path, {"observe/clean.py": """
            def load(path):
                with open(path, "r") as handle:
                    return handle.read()
        """})
        assert result.clean

    def test_outside_scope_ignored(self, tmp_path):
        result = lint_tree(tmp_path, {"bench/report_writer.py": """
            def save(path, text):
                path.write_text(text)
        """})
        assert result.clean

    def test_inline_suppression_respected(self, tmp_path):
        result = lint_tree(tmp_path, {"observe/cli_like.py": """
            def export(path, text):
                with open(path, "w") as handle:  # hdvb: disable=HDVB190
                    handle.write(text)
        """})
        assert result.clean
        assert result.suppressed == 1

    def test_shipped_observe_tree_is_clean(self):
        result = run([str(REPO_ROOT / "src" / "repro" / "observe")],
                     baseline=empty_baseline())
        assert result.clean, render_human(result.findings)
