"""Tests for the VC-1 class extension codec."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.codecs import get_decoder, get_encoder
from repro.codecs.vc1 import Vc1Config, Vc1Decoder, Vc1Encoder
from repro.codecs.vc1 import tables
from repro.codecs.vc1.coefficients import (
    decode_run_level,
    encode_run_level,
    run_level_bits,
)
from repro.codecs.vc1.transform import (
    TransformedBlock,
    forward_adaptive,
    inverse_adaptive,
)
from repro.common.bitstream import BitReader, BitWriter
from repro.common.gop import FrameType, GopStructure
from repro.common.metrics import sequence_psnr
from repro.kernels import get_kernels

KERNELS = get_kernels("simd")


class TestCoefficients:
    def roundtrip(self, scanned, start=0):
        writer = BitWriter()
        encode_run_level(writer, scanned, start=start)
        writer.align()
        return decode_run_level(BitReader(writer.to_bytes()), len(scanned), start=start)

    def test_both_block_sizes(self):
        for size in (16, 64):
            scanned = [0] * size
            scanned[size - 1] = -3
            assert self.roundtrip(scanned) == scanned

    def test_bits_estimate_matches(self):
        scanned = [5, 0, -1, 0, 0, 2] + [0] * 58
        writer = BitWriter()
        encode_run_level(writer, scanned)
        assert len(writer) == run_level_bits(scanned)

    @given(st.lists(st.integers(-2000, 2000), min_size=16, max_size=16))
    @settings(max_examples=40)
    def test_roundtrip_property_4x4(self, scanned):
        assert self.roundtrip(scanned) == scanned


class TestAdaptiveTransform:
    def test_flat_residual_picks_8x8(self):
        # A smooth residual concentrates into few 8x8 coefficients.
        ys, xs = np.mgrid[0:8, 0:8]
        residual = (2 * xs + ys).astype(np.int64)
        block = forward_adaptive(KERNELS, residual, 5, 26)
        assert block.size == tables.TRANSFORM_8X8

    def test_localised_residual_picks_4x4(self):
        # Energy confined to one quadrant: three empty 4x4s are cheap.
        residual = np.zeros((8, 8), dtype=np.int64)
        residual[0:4, 0:4] = np.random.default_rng(0).integers(-60, 60, (4, 4))
        block = forward_adaptive(KERNELS, residual, 5, 26)
        assert block.size == tables.TRANSFORM_4X4

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_inverse_reconstructs_within_quantiser(self, seed):
        residual = np.random.default_rng(seed).integers(-80, 80, (8, 8)).astype(np.int64)
        block = forward_adaptive(KERNELS, residual, 5, 26)
        rebuilt = inverse_adaptive(KERNELS, block, 5, 26)
        assert np.max(np.abs(rebuilt - residual)) <= 2 * 5 + 8

    def test_empty_block_flag(self):
        zero = TransformedBlock(tables.TRANSFORM_8X8,
                                levels8=np.zeros((8, 8), dtype=np.int64))
        assert not zero.any_nonzero


def encode(video, **overrides):
    fields = dict(width=video.width, height=video.height, qscale=5, search_range=4)
    fields.update(overrides)
    encoder = Vc1Encoder(Vc1Config(**fields))
    return encoder, encoder.encode_sequence(video)


class TestCodec:
    def test_roundtrip(self, tiny_video):
        _, stream = encode(tiny_video)
        decoded = Vc1Decoder().decode(stream)
        assert sequence_psnr(tiny_video, decoded).y > 29.0

    def test_deterministic(self, tiny_video):
        _, first = encode(tiny_video)
        _, second = encode(tiny_video)
        assert all(a.payload == b.payload for a, b in zip(first.pictures, second.pictures))

    def test_gop(self, tiny_video):
        _, stream = encode(tiny_video)
        assert stream.frame_types()[FrameType.I] == 1
        assert stream.frame_types()[FrameType.B] >= 1

    def test_intra_only(self, tiny_video):
        _, stream = encode(tiny_video, gop=GopStructure(bframes=0, intra_period=1))
        decoded = Vc1Decoder().decode(stream)
        assert sequence_psnr(tiny_video, decoded).y > 29.0

    def test_adaptive_transform_saves_bits(self, tiny_video):
        _, with_ats = encode(tiny_video, adaptive_transform=True)
        _, without = encode(tiny_video, adaptive_transform=False)
        assert with_ats.total_bytes <= without.total_bytes

    def test_adaptive_off_roundtrips(self, tiny_video):
        _, stream = encode(tiny_video, adaptive_transform=False)
        decoded = Vc1Decoder().decode(stream)
        assert sequence_psnr(tiny_video, decoded).y > 29.0

    def test_qscale_monotone(self, tiny_video):
        _, fine = encode(tiny_video, qscale=2)
        _, coarse = encode(tiny_video, qscale=15)
        assert coarse.total_bytes < fine.total_bytes

    def test_backend_bit_exact(self, tiny_video):
        _, scalar = encode(tiny_video, backend="scalar")
        _, simd = encode(tiny_video, backend="simd")
        assert all(a.payload == b.payload
                   for a, b in zip(scalar.pictures, simd.pictures))

    def test_registry(self, tiny_video):
        encoder = get_encoder("vc1", width=tiny_video.width, height=tiny_video.height)
        stream = encoder.encode_sequence(tiny_video)
        decoded = get_decoder("vc1").decode(stream)
        assert len(decoded) == len(tiny_video)
