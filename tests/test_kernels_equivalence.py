"""Property tests: the scalar and SIMD kernel backends are bit-exact.

This is the invariant the whole scalar-vs-SIMD benchmark axis rests on
(the paper compares identical algorithms, optimised vs not).
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.kernels import get_kernels

SCALAR = get_kernels("scalar")
SIMD = get_kernels("simd")


def blocks(size: int, low: int = -255, high: int = 255):
    return st.lists(
        st.lists(st.integers(low, high), min_size=size, max_size=size),
        min_size=size,
        max_size=size,
    ).map(lambda rows: np.array(rows, dtype=np.int64))


def pixel_blocks(size: int):
    return blocks(size, 0, 255)


def planes(height: int, width: int):
    return st.lists(
        st.lists(st.integers(0, 255), min_size=width, max_size=width),
        min_size=height,
        max_size=height,
    ).map(lambda rows: np.array(rows, dtype=np.int64))


def assert_same(a, b):
    assert np.array_equal(np.asarray(a), np.asarray(b))


def test_both_backends_implement_full_api():
    from repro.kernels.api import implements_kernel_api

    assert implements_kernel_api(SCALAR)
    assert implements_kernel_api(SIMD)


class TestCostKernels:
    @given(pixel_blocks(8), pixel_blocks(8))
    def test_sad(self, a, b):
        assert SCALAR.sad(a, b) == SIMD.sad(a, b)

    @given(pixel_blocks(8), pixel_blocks(8))
    def test_ssd(self, a, b):
        assert SCALAR.ssd(a, b) == SIMD.ssd(a, b)

    @given(pixel_blocks(4), pixel_blocks(4))
    def test_satd4(self, a, b):
        assert SCALAR.satd4(a, b) == SIMD.satd4(a, b)


class TestBlockArithmetic:
    @given(blocks(4), blocks(4))
    def test_sub(self, a, b):
        assert_same(SCALAR.sub(a, b), SIMD.sub(a, b))

    @given(pixel_blocks(4), blocks(4, -512, 512))
    def test_add_clip(self, pred, res):
        assert_same(SCALAR.add_clip(pred, res), SIMD.add_clip(pred, res))

    @given(pixel_blocks(8), pixel_blocks(8))
    def test_average(self, a, b):
        assert_same(SCALAR.average(a, b), SIMD.average(a, b))


class TestTransforms:
    @given(blocks(8))
    def test_fdct8(self, block):
        assert_same(SCALAR.fdct8(block), SIMD.fdct8(block))

    @given(blocks(8, -2048, 2048))
    def test_idct8(self, coeffs):
        assert_same(SCALAR.idct8(coeffs), SIMD.idct8(coeffs))

    @given(blocks(4))
    def test_fwd_transform4(self, block):
        assert_same(SCALAR.fwd_transform4(block), SIMD.fwd_transform4(block))

    @given(blocks(4, -30000, 30000))
    def test_inv_transform4(self, coeffs):
        assert_same(SCALAR.inv_transform4(coeffs), SIMD.inv_transform4(coeffs))

    @given(blocks(4, -4096, 4096))
    def test_hadamard4(self, block):
        assert_same(SCALAR.hadamard4_forward(block), SIMD.hadamard4_forward(block))
        assert_same(SCALAR.hadamard4_inverse(block), SIMD.hadamard4_inverse(block))

    @given(st.lists(st.lists(st.integers(-4096, 4096), min_size=2, max_size=2),
                    min_size=2, max_size=2).map(lambda r: np.array(r, dtype=np.int64)))
    def test_hadamard2(self, block):
        assert_same(SCALAR.hadamard2(block), SIMD.hadamard2(block))


class TestQuantisers:
    @given(blocks(8, -2040, 2040), st.integers(1, 31), st.booleans())
    def test_quant_mpeg(self, coeffs, qscale, intra):
        from repro.kernels.tables import MPEG_INTER_MATRIX, MPEG_INTRA_MATRIX

        matrix = MPEG_INTRA_MATRIX if intra else MPEG_INTER_MATRIX
        assert_same(
            SCALAR.quant_mpeg(coeffs, matrix, qscale, intra),
            SIMD.quant_mpeg(coeffs, matrix, qscale, intra),
        )

    @given(blocks(8, -600, 600), st.integers(1, 31), st.booleans())
    def test_dequant_mpeg(self, levels, qscale, intra):
        from repro.kernels.tables import MPEG_INTER_MATRIX, MPEG_INTRA_MATRIX

        matrix = MPEG_INTRA_MATRIX if intra else MPEG_INTER_MATRIX
        assert_same(
            SCALAR.dequant_mpeg(levels, matrix, qscale, intra),
            SIMD.dequant_mpeg(levels, matrix, qscale, intra),
        )

    @given(blocks(8, -2040, 2040))
    def test_quant_matrix(self, coeffs):
        from repro.codecs.mjpeg.tables import LUMA_MATRIX

        assert_same(
            SCALAR.quant_matrix(coeffs, LUMA_MATRIX),
            SIMD.quant_matrix(coeffs, LUMA_MATRIX),
        )

    @given(blocks(8, -255, 255))
    def test_dequant_matrix(self, levels):
        from repro.codecs.mjpeg.tables import CHROMA_MATRIX

        assert_same(
            SCALAR.dequant_matrix(levels, CHROMA_MATRIX),
            SIMD.dequant_matrix(levels, CHROMA_MATRIX),
        )

    @given(blocks(8, -2040, 2040), st.integers(1, 31), st.booleans())
    def test_quant_h263(self, coeffs, qp, intra):
        assert_same(SCALAR.quant_h263(coeffs, qp, intra), SIMD.quant_h263(coeffs, qp, intra))

    @given(blocks(8, -600, 600), st.integers(1, 31), st.booleans())
    def test_dequant_h263(self, levels, qp, intra):
        assert_same(
            SCALAR.dequant_h263(levels, qp, intra), SIMD.dequant_h263(levels, qp, intra)
        )

    @given(blocks(4, -8160, 8160), st.integers(0, 51), st.booleans())
    def test_quant_h264(self, coeffs, qp, intra):
        assert_same(
            SCALAR.quant_h264_4x4(coeffs, qp, intra),
            SIMD.quant_h264_4x4(coeffs, qp, intra),
        )

    @given(blocks(4, -2047, 2047), st.integers(0, 51))
    def test_dequant_h264(self, levels, qp):
        assert_same(SCALAR.dequant_h264_4x4(levels, qp), SIMD.dequant_h264_4x4(levels, qp))

    @given(blocks(4, -16000, 16000), st.integers(0, 51), st.booleans())
    def test_h264_dc4(self, dc, qp, intra):
        assert_same(SCALAR.quant_h264_dc4(dc, qp, intra), SIMD.quant_h264_dc4(dc, qp, intra))

    @given(blocks(4, -2047, 2047), st.integers(0, 51))
    def test_h264_dc4_dequant(self, levels, qp):
        assert_same(SCALAR.dequant_h264_dc4(levels, qp), SIMD.dequant_h264_dc4(levels, qp))

    @given(st.lists(st.lists(st.integers(-8000, 8000), min_size=2, max_size=2),
                    min_size=2, max_size=2).map(lambda r: np.array(r, dtype=np.int64)),
           st.integers(0, 51), st.booleans())
    def test_h264_dc2(self, dc, qp, intra):
        assert_same(SCALAR.quant_h264_dc2(dc, qp, intra), SIMD.quant_h264_dc2(dc, qp, intra))
        levels = SCALAR.quant_h264_dc2(dc, qp, intra)
        assert_same(SCALAR.dequant_h264_dc2(levels, qp), SIMD.dequant_h264_dc2(levels, qp))


class TestMotionCompensation:
    @given(planes(24, 24), st.integers(-7, 7), st.integers(-7, 7))
    @settings(max_examples=40)
    def test_mc_halfpel(self, plane, mvx, mvy):
        args = (plane, 8, 8, 8, 8, mvx, mvy)
        assert_same(SCALAR.mc_halfpel(*args), SIMD.mc_halfpel(*args))

    @given(planes(24, 24), st.integers(-15, 15), st.integers(-15, 15))
    @settings(max_examples=40)
    def test_mc_qpel_bilinear(self, plane, mvx, mvy):
        args = (plane, 8, 8, 8, 8, mvx, mvy)
        assert_same(SCALAR.mc_qpel_bilinear(*args), SIMD.mc_qpel_bilinear(*args))

    @given(planes(28, 28), st.integers(-12, 12), st.integers(-12, 12))
    @settings(max_examples=60)
    def test_mc_qpel_h264(self, plane, mvx, mvy):
        args = (plane, 10, 10, 8, 8, mvx, mvy)
        assert_same(SCALAR.mc_qpel_h264(*args), SIMD.mc_qpel_h264(*args))

    def test_mc_qpel_h264_all_subpositions(self):
        rng = np.random.default_rng(11)
        plane = rng.integers(0, 256, (32, 32)).astype(np.int64)
        for fy in range(4):
            for fx in range(4):
                args = (plane, 12, 12, 4, 4, fx - 8, fy + 4)
                assert_same(SCALAR.mc_qpel_h264(*args), SIMD.mc_qpel_h264(*args))

    @given(planes(20, 20), st.integers(-20, 20), st.integers(-20, 20))
    @settings(max_examples=40)
    def test_mc_chroma_bilinear8(self, plane, mvx, mvy):
        args = (plane, 8, 8, 4, 4, mvx, mvy)
        assert_same(SCALAR.mc_chroma_bilinear8(*args), SIMD.mc_chroma_bilinear8(*args))


def line(n: int):
    return st.lists(st.integers(0, 255), min_size=n, max_size=n).map(
        lambda v: np.array(v, dtype=np.int64)
    )


class TestDeblock:
    @given(line(8), line(8), line(8), line(8), line(8), line(8),
           st.integers(0, 64), st.integers(0, 18),
           st.lists(st.integers(-1, 9), min_size=8, max_size=8),
           st.booleans())
    @settings(max_examples=60)
    def test_deblock_normal(self, p2, p1, p0, q0, q1, q2, alpha, beta, c0, chroma):
        c0_array = np.array(c0, dtype=np.int64)
        out_scalar = SCALAR.deblock_normal(p2, p1, p0, q0, q1, q2, alpha, beta, c0_array, chroma)
        out_simd = SIMD.deblock_normal(p2, p1, p0, q0, q1, q2, alpha, beta, c0_array, chroma)
        for a, b in zip(out_scalar, out_simd):
            assert_same(a, b)

    @given(line(8), line(8), line(8), line(8), line(8), line(8), line(8), line(8),
           st.integers(0, 128), st.integers(0, 18),
           st.lists(st.integers(0, 1), min_size=8, max_size=8),
           st.booleans())
    @settings(max_examples=60)
    def test_deblock_strong(self, p3, p2, p1, p0, q0, q1, q2, q3,
                            alpha, beta, mask, chroma):
        mask_array = np.array(mask, dtype=np.int64)
        out_scalar = SCALAR.deblock_strong(
            p3, p2, p1, p0, q0, q1, q2, q3, alpha, beta, mask_array, chroma
        )
        out_simd = SIMD.deblock_strong(
            p3, p2, p1, p0, q0, q1, q2, q3, alpha, beta, mask_array, chroma
        )
        for a, b in zip(out_scalar, out_simd):
            assert_same(a, b)
