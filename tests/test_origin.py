"""Tests for the multi-client streaming origin (repro.origin).

Everything here runs on the virtual-time loop, so timings are exact
simulated seconds: the assertions on states, retries and deadline misses
are deterministic per seed, not statistical.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import ConfigError, OriginError, ReproError, SessionAborted
from repro.origin import clock
from repro.origin.admission import AdmissionController
from repro.origin.cache import SegmentCache, SegmentKey
from repro.origin.server import Origin, OriginConfig, serve
from repro.origin.session import (
    DEFAULT_RUNGS,
    LADDER_STEPS,
    ClientProfile,
    SessionConfig,
    SessionState,
    StreamSessionRunner,
)
from repro.origin.supervise import Supervisor
from repro.origin.traffic import CHAOS_KINDS, TrafficConfig, generate_profiles

#: Fast unit-test shape: tiny clip, cheap encode window, no decode.
FAST = SessionConfig(decode=False)
FAST_ORIGIN = OriginConfig(frames=4, encode_seconds=0.05, session=FAST)


def run_session(profile, config=FAST, origin_config=FAST_ORIGIN):
    """One session on a fresh virtual loop; returns (result, supervisor)."""
    origin = Origin(origin_config)

    async def main():
        runner = StreamSessionRunner(
            profile, config, origin.cache, origin.supervisor,
            metrics=origin.metrics)
        task = origin.supervisor.spawn(runner.run(), profile.session_id)
        await asyncio.wait({task})
        await origin.supervisor.drain()
        return runner.result

    result = clock.run(main())
    return result, origin.supervisor


# ---------------------------------------------------------------------------
# virtual-time loop
# ---------------------------------------------------------------------------

class TestVirtualTimeLoop:
    def test_clock_jumps_over_sleeps(self):
        async def main():
            t0 = clock.loop_time()
            await asyncio.sleep(500.0)
            return clock.loop_time() - t0

        assert run_wall(lambda: clock.run(main())) == pytest.approx(500.0)

    def test_concurrent_timers_fire_in_order(self):
        order = []

        async def waiter(tag, delay):
            await asyncio.sleep(delay)
            order.append(tag)

        async def main():
            await asyncio.gather(waiter("late", 3.0), waiter("early", 1.0),
                                 waiter("mid", 2.0))

        clock.run(main())
        assert order == ["early", "mid", "late"]

    def test_wait_for_timeouts_use_virtual_time(self):
        async def main():
            with pytest.raises(asyncio.TimeoutError):
                await asyncio.wait_for(asyncio.sleep(10.0), timeout=0.5)
            return clock.loop_time()

        assert clock.run(main()) == pytest.approx(0.5)

    def test_run_reaps_leftover_tasks(self):
        async def main():
            asyncio.get_running_loop()  # fresh loop per run
            return 7

        assert clock.run(main()) == 7
        # a second run gets its own loop: no cross-run state
        assert clock.run(main()) == 7


def run_wall(fn):
    """Helper: virtual time must pass without wall time passing."""
    import time
    start = time.perf_counter()
    result = fn()
    assert time.perf_counter() - start < 5.0
    return result


# ---------------------------------------------------------------------------
# supervisor
# ---------------------------------------------------------------------------

class TestSupervisor:
    def test_outcomes_are_routed(self):
        sup = Supervisor()

        async def ok():
            return 1

        async def taxonomy():
            raise OriginError("expected failure")

        async def raw():
            raise ValueError("escaped")

        async def main():
            sup.spawn(ok(), "ok")
            sup.spawn(taxonomy(), "taxonomy")
            sup.spawn(raw(), "raw")
            await sup.drain()

        clock.run(main())
        assert sup.active == 0
        assert set(sup.failed) == {"origin:taxonomy"}
        assert isinstance(sup.failed["origin:taxonomy"], ReproError)
        assert [f.name for f in sup.unhandled] == ["origin:raw"]

    def test_cancel_all_reaps_everything(self):
        sup = Supervisor()

        async def forever():
            await asyncio.sleep(10_000)

        async def main():
            for index in range(5):
                sup.spawn(forever(), f"t{index}")
            await sup.cancel_all()

        clock.run(main())
        assert sup.active == 0
        assert not sup.unhandled            # cancellation is not an escape


# ---------------------------------------------------------------------------
# segment cache
# ---------------------------------------------------------------------------

class TestSegmentCache:
    KEY = SegmentKey(sequence="bench", codec="h264", qp=10, width=16,
                     height=16)

    def test_single_flight_under_a_herd(self):
        calls = []

        def encode(key):
            calls.append(key)
            return object()

        cache = SegmentCache(encode=encode, encode_seconds=0.2)

        async def main():
            streams = await asyncio.gather(
                *(cache.get(self.KEY) for _ in range(20)))
            return streams

        streams = clock.run(main())
        assert len(calls) == 1
        assert cache.encodes == 1
        assert cache.flight_waits == 19
        assert all(stream is streams[0] for stream in streams)

    def test_hit_after_population(self):
        cache = SegmentCache(encode=lambda key: object(), encode_seconds=0.0)

        async def main():
            first = await cache.get(self.KEY)
            second = await cache.get(self.KEY)
            return first is second

        assert clock.run(main())
        assert cache.hits == 1 and cache.encodes == 1

    def test_failed_encode_rejects_waiters_but_is_retryable(self):
        attempts = []

        def encode(key):
            attempts.append(key)
            if len(attempts) == 1:
                raise RuntimeError("encoder blew up")
            return object()

        cache = SegmentCache(encode=encode, encode_seconds=0.1)

        async def main():
            leader = asyncio.ensure_future(cache.get(self.KEY))
            follower = asyncio.ensure_future(cache.get(self.KEY))
            outcomes = await asyncio.gather(leader, follower,
                                            return_exceptions=True)
            assert all(isinstance(o, OriginError) for o in outcomes)
            return await cache.get(self.KEY)    # the slot was cleared

        assert clock.run(main()) is not None
        assert len(attempts) == 2


# ---------------------------------------------------------------------------
# admission
# ---------------------------------------------------------------------------

class TestAdmission:
    def test_bounded_table(self):
        door = AdmissionController(max_sessions=2)
        assert door.try_admit("a") and door.try_admit("b")
        assert not door.try_admit("c")
        assert door.rejected_total == 1
        door.release("a")
        assert door.try_admit("c")
        assert door.peak == 2 and door.admitted_total == 3

    def test_double_admit_raises(self):
        door = AdmissionController(max_sessions=2)
        door.try_admit("a")
        with pytest.raises(ConfigError):
            door.try_admit("a")

    def test_release_is_idempotent(self):
        door = AdmissionController(max_sessions=1)
        door.try_admit("a")
        door.release("a")
        door.release("a")
        assert door.active == 0

    def test_bad_bound_raises(self):
        with pytest.raises(ConfigError):
            AdmissionController(max_sessions=0)


# ---------------------------------------------------------------------------
# backoff
# ---------------------------------------------------------------------------

class TestBackoff:
    def make_runner(self, seed=3):
        origin = Origin(FAST_ORIGIN)
        profile = ClientProfile(session_id="b0", seed=seed, codec="h264")
        return StreamSessionRunner(profile, FAST, origin.cache,
                                   origin.supervisor)

    def test_schedule_is_exponential_jittered_and_capped(self):
        config = FAST
        runner = self.make_runner()
        raws = [min(config.backoff_cap, config.backoff_base * (2 ** n))
                for n in range(8)]
        delays = [runner.next_backoff() for _ in range(8)]
        for raw, delay in zip(raws, delays):
            assert 0.5 * raw <= delay <= raw      # ±50 % jitter band
        assert max(delays) <= config.backoff_cap

    def test_schedule_is_deterministic_per_seed(self):
        a = [self.make_runner(seed=9).next_backoff() for _ in range(1)]
        b = [self.make_runner(seed=9).next_backoff() for _ in range(1)]
        c = [self.make_runner(seed=10).next_backoff() for _ in range(1)]
        assert a == b
        assert a != c


# ---------------------------------------------------------------------------
# session state machine
# ---------------------------------------------------------------------------

class TestSessionStateMachine:
    def test_happy_path_states(self):
        profile = ClientProfile(session_id="s0", seed=1, codec="h264",
                                render_seconds=0.005)
        result, supervisor = run_session(profile)
        assert result.states == ["admitted", "streaming", "draining",
                                 "closed"]
        assert result.final_state == SessionState.CLOSED.value
        assert result.frames_sent == result.frames_delivered == 4
        assert result.deadline_misses == 0
        assert not (result.aborted or result.cancelled or result.shed)
        assert supervisor.active == 0 and not supervisor.unhandled

    def test_decode_runs_per_epoch(self):
        profile = ClientProfile(session_id="s1", seed=2, codec="h264",
                                render_seconds=0.005)
        result, _ = run_session(profile, config=SessionConfig(decode=True))
        assert result.decodes == result.epochs == 1

    def test_nack_consumes_budget_and_retries(self):
        profile = ClientProfile(session_id="s2", seed=3, codec="h264",
                                render_seconds=0.005,
                                chaos={1: (("nack",),)})
        result, _ = run_session(profile)
        assert result.retries >= 1
        assert result.backoff_seconds > 0
        assert result.final_state == "closed" and not result.aborted
        assert result.frames_delivered == 4

    def test_budget_exhaustion_aborts_with_context(self):
        # One nack costs one budget unit per picture; a budget of 1 means
        # the second nacked picture exhausts it.
        profile = ClientProfile(session_id="s3", seed=4, codec="h264",
                                render_seconds=0.005,
                                chaos={0: (("nack",),), 1: (("nack",),)})
        result, supervisor = run_session(
            profile, config=SessionConfig(decode=False, failure_budget=1))
        assert result.aborted and not result.cancelled
        assert "failure budget" in (result.error or "")
        assert result.final_state == "closed"       # teardown always lands
        assert supervisor.active == 0 and not supervisor.unhandled

    def test_session_aborted_carries_session_context(self):
        error = SessionAborted("boom", session_id="sX", state="degraded")
        assert error.session_id == "sX"
        assert "sX" in str(error) and "degraded" in str(error)

    def test_cancellation_is_clean(self):
        profile = ClientProfile(session_id="s4", seed=5, codec="h264",
                                render_seconds=0.005, cancel_after=0.1)
        report = serve([profile], FAST_ORIGIN)
        result = report.results[0]
        assert result.cancelled and result.final_state == "closed"
        assert report.unhandled == []
        assert report.graceful_rate == 1.0

    def test_corrupt_stream_is_handled_gracefully(self):
        profile = ClientProfile(session_id="s5", seed=6, codec="h264",
                                render_seconds=0.005, corrupt=True)
        result, supervisor = run_session(profile,
                                         config=SessionConfig(decode=True))
        # Whatever the injected fault does — concealed decode or a
        # taxonomy abort — nothing may escape raw.
        assert result.final_state == "closed"
        assert result.chaos_faults
        assert not supervisor.unhandled


# ---------------------------------------------------------------------------
# degradation ladder
# ---------------------------------------------------------------------------

def pressured_profile(session_id="d0", seed=11, **overrides):
    """A reader too slow for the frame rate: sustained queue pressure."""
    fields = dict(session_id=session_id, seed=seed, codec="h264",
                  render_seconds=0.09)
    fields.update(overrides)
    return ClientProfile(**fields)


PRESSURE_ORIGIN = OriginConfig(
    frames=16, encode_seconds=0.05,
    session=SessionConfig(decode=False, degrade_patience=2))


class TestDegradationLadder:
    def test_sustained_pressure_walks_fec_rung_frames_shed(self):
        result, supervisor = run_session(
            pressured_profile(), config=PRESSURE_ORIGIN.session,
            origin_config=PRESSURE_ORIGIN)
        assert "degraded" in result.states
        steps = result.degrade_steps
        assert steps, "pressure must step the ladder"
        # ladder order is respected (mildest first, shed last)
        order = [LADDER_STEPS.index(step) for step in steps]
        assert order == sorted(order)
        assert result.shed and result.aborted
        assert "shed" in (result.error or "")
        assert supervisor.active == 0 and not supervisor.unhandled

    def test_rung_step_opens_a_new_epoch(self):
        result, _ = run_session(
            pressured_profile(session_id="d1", seed=12),
            config=PRESSURE_ORIGIN.session, origin_config=PRESSURE_ORIGIN)
        if "rung" in result.degrade_steps:
            assert result.epochs >= 2

    def test_transient_stall_enters_and_exits_degraded(self):
        profile = ClientProfile(
            session_id="d2", seed=13, codec="h264", render_seconds=0.01,
            chaos={2: (("stall", 0.2),)})
        origin_config = OriginConfig(
            frames=16, encode_seconds=0.05,
            session=SessionConfig(decode=False))
        result, _ = run_session(profile, config=origin_config.session,
                                origin_config=origin_config)
        states = result.states
        assert "degraded" in states
        # recovery: a STREAMING re-entry after the DEGRADED stretch
        degraded_at = states.index("degraded")
        assert "streaming" in states[degraded_at:]
        assert not result.shed
        assert result.final_state == "closed"

    def test_dropped_frames_are_concealed_not_lost(self):
        result, _ = run_session(
            pressured_profile(session_id="d3", seed=14),
            config=PRESSURE_ORIGIN.session, origin_config=PRESSURE_ORIGIN)
        if "frames" in result.degrade_steps:
            assert result.dropped_frames > 0
            assert result.frames_sent == (result.dropped_frames
                                          + result.frames_delivered
                                          + qsize_slack(result))


def qsize_slack(result):
    """Frames sent but still queued/in-flight when the session ended."""
    return result.frames_sent - result.dropped_frames - result.frames_delivered


# ---------------------------------------------------------------------------
# traffic generation
# ---------------------------------------------------------------------------

class TestTraffic:
    def test_profiles_are_deterministic(self):
        config = TrafficConfig(clients=12, seed=4, chaos_rate=0.5)
        assert generate_profiles(config) == generate_profiles(config)

    def test_seed_changes_population(self):
        a = generate_profiles(TrafficConfig(clients=12, seed=4))
        b = generate_profiles(TrafficConfig(clients=12, seed=5))
        assert a != b

    def test_chaos_schedule_uses_known_kinds(self):
        profiles = generate_profiles(
            TrafficConfig(clients=30, seed=0, chaos_rate=1.0))
        kinds = set()
        for profile in profiles:
            if profile.cancel_after is not None:
                kinds.add("cancel")
            if profile.corrupt:
                kinds.add("corrupt")
            for events in profile.chaos.values():
                for event in events:
                    kinds.add(event[0] if event[0] != "heal" else "flap")
        assert kinds <= set(CHAOS_KINDS)
        assert len(kinds) >= 3          # rate 1.0 exercises the layer

    def test_validation(self):
        with pytest.raises(ConfigError):
            TrafficConfig(clients=0)
        with pytest.raises(ConfigError):
            TrafficConfig(chaos_rate=1.5)


# ---------------------------------------------------------------------------
# serve: admission, reproducibility, gate invariants
# ---------------------------------------------------------------------------

class TestServe:
    def population(self, clients=6, seed=0, chaos_rate=0.4):
        return generate_profiles(TrafficConfig(
            clients=clients, seed=seed, frames=4, chaos_rate=chaos_rate,
            ramp_seconds=0.5))

    def test_fingerprint_is_bit_reproducible(self):
        profiles = self.population()
        first = serve(profiles, FAST_ORIGIN)
        second = serve(profiles, FAST_ORIGIN)
        assert first.fingerprint == second.fingerprint
        assert first.unhandled == second.unhandled == []

    def test_admission_rejects_beyond_table(self):
        config = OriginConfig(frames=4, encode_seconds=0.05, max_sessions=2,
                              session=FAST)
        report = serve(self.population(clients=6, chaos_rate=0.0), config)
        assert report.rejected > 0
        assert report.peak_sessions <= 2
        rejected = [r for r in report.results
                    if r.final_state == "rejected"]
        assert len(rejected) == report.rejected
        assert all("admission rejected" in (r.error or "") for r in rejected)
        assert report.graceful_rate == 1.0

    def test_single_flight_across_the_population(self):
        report = serve(self.population(clients=6, chaos_rate=0.0),
                       FAST_ORIGIN)
        # six clients, one codec, one rung: exactly one encode
        assert report.encodes == 1
        assert report.cache_hits + report.cache_flight_waits == 5

    def test_report_telemetry_carries_histograms(self):
        report = serve(self.population(clients=4, chaos_rate=0.0),
                       FAST_ORIGIN)
        metrics = report.telemetry["metrics"]
        assert "origin.deadline.lateness" in metrics
        assert {"p50", "p99", "p999"} <= set(
            metrics["origin.deadline.lateness"])
        assert report.p99_miss_seconds >= 0.0

    def test_every_session_lands_in_a_terminal_state(self):
        report = serve(self.population(clients=8, chaos_rate=0.8), FAST_ORIGIN)
        for result in report.results:
            assert result.final_state in ("closed", "rejected")
        assert report.unhandled == []
        assert report.graceful_rate == 1.0


# ---------------------------------------------------------------------------
# rungs
# ---------------------------------------------------------------------------

class TestRungs:
    def test_default_ladder_descends(self):
        areas = [rung.width * rung.height for rung in DEFAULT_RUNGS]
        assert areas == sorted(areas, reverse=True)
        qps = [rung.qp for rung in DEFAULT_RUNGS]
        assert qps == sorted(qps)

    def test_key_identity(self):
        key = DEFAULT_RUNGS[0].key("bench", "h264")
        assert key.codec == "h264" and key.qp == DEFAULT_RUNGS[0].qp
        assert str(key).startswith("bench/h264/")
