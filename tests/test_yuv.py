"""Tests for YUV frames and raw-file I/O."""

import numpy as np
import pytest

from repro.common.yuv import YuvFrame, YuvSequence, read_yuv_file, write_yuv_file
from repro.errors import SequenceError
from tests.conftest import make_frame


class TestYuvFrame:
    def test_blank_dimensions(self):
        frame = YuvFrame.blank(32, 16)
        assert frame.width == 32
        assert frame.height == 16
        assert frame.u.shape == (8, 16)

    def test_blank_default_is_video_black(self):
        frame = YuvFrame.blank(16, 16)
        assert int(frame.y[0, 0]) == 16
        assert int(frame.u[0, 0]) == 128

    def test_rejects_odd_luma(self):
        with pytest.raises(SequenceError):
            YuvFrame(
                np.zeros((15, 16), dtype=np.uint8),
                np.zeros((8, 8), dtype=np.uint8),
                np.zeros((8, 8), dtype=np.uint8),
            )

    def test_rejects_wrong_chroma_shape(self):
        with pytest.raises(SequenceError):
            YuvFrame(
                np.zeros((16, 16), dtype=np.uint8),
                np.zeros((16, 16), dtype=np.uint8),
                np.zeros((8, 8), dtype=np.uint8),
            )

    def test_non_uint8_coerced(self):
        frame = YuvFrame(
            np.zeros((4, 4), dtype=np.int64),
            np.zeros((2, 2), dtype=np.int64),
            np.zeros((2, 2), dtype=np.int64),
        )
        assert frame.y.dtype == np.uint8

    def test_from_float_clips_and_rounds(self):
        luma = np.array([[-5.0, 300.0], [127.4, 127.6]])
        chroma = np.zeros((1, 1))
        frame = YuvFrame.from_float(luma, chroma, chroma)
        assert frame.y.tolist() == [[0, 255], [127, 128]]

    def test_bytes_roundtrip(self):
        frame = make_frame(16, 8, seed=1)
        data = frame.to_bytes()
        assert len(data) == YuvFrame.frame_size_bytes(16, 8)
        assert YuvFrame.from_bytes(data, 16, 8) == frame

    def test_from_bytes_rejects_wrong_size(self):
        with pytest.raises(SequenceError):
            YuvFrame.from_bytes(b"\x00" * 10, 16, 8)

    def test_equality(self):
        assert make_frame(8, 8, seed=2) == make_frame(8, 8, seed=2)
        assert make_frame(8, 8, seed=2) != make_frame(8, 8, seed=3)

    def test_copy_is_independent(self):
        frame = make_frame(8, 8)
        duplicate = frame.copy()
        duplicate.y[0, 0] = 255 - duplicate.y[0, 0]
        assert frame != duplicate


class TestYuvSequence:
    def test_length_and_iteration(self):
        frames = [make_frame(16, 16, seed=i) for i in range(3)]
        sequence = YuvSequence(frames, fps=25)
        assert len(sequence) == 3
        assert list(sequence) == frames
        assert sequence[1] == frames[1]

    def test_dimension_consistency_enforced(self):
        with pytest.raises(SequenceError):
            YuvSequence([make_frame(16, 16), make_frame(32, 16)])

    def test_append_checks_dimensions(self):
        sequence = YuvSequence([make_frame(16, 16)])
        with pytest.raises(SequenceError):
            sequence.append(make_frame(32, 32))

    def test_duration(self):
        sequence = YuvSequence([make_frame(16, 16, seed=i) for i in range(50)], fps=25)
        assert sequence.duration_seconds == pytest.approx(2.0)

    def test_empty_sequence_properties_raise(self):
        with pytest.raises(SequenceError):
            YuvSequence([]).width  # noqa: B018


class TestFileIO:
    def test_write_read_roundtrip(self, tmp_path):
        frames = [make_frame(32, 16, seed=i) for i in range(4)]
        path = tmp_path / "clip.yuv"
        written = write_yuv_file(path, frames)
        assert written == 4 * YuvFrame.frame_size_bytes(32, 16)
        loaded = read_yuv_file(path, 32, 16)
        assert len(loaded) == 4
        assert all(a == b for a, b in zip(loaded, frames))

    def test_max_frames_limits(self, tmp_path):
        path = tmp_path / "clip.yuv"
        write_yuv_file(path, [make_frame(16, 16, seed=i) for i in range(5)])
        assert len(read_yuv_file(path, 16, 16, max_frames=2)) == 2

    def test_truncated_file_raises(self, tmp_path):
        path = tmp_path / "broken.yuv"
        path.write_bytes(b"\x00" * (YuvFrame.frame_size_bytes(16, 16) + 7))
        with pytest.raises(SequenceError):
            read_yuv_file(path, 16, 16)

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.yuv"
        path.write_bytes(b"")
        with pytest.raises(SequenceError):
            read_yuv_file(path, 16, 16)
