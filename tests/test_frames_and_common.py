"""Tests for WorkingFrame, TcGrid and other codec-internal helpers."""

import numpy as np
import pytest

from repro.codecs.frames import WorkingFrame
from repro.codecs.h264.common import LUMA_OFFSETS, TcGrid, luma_quadrant
from repro.codecs.h264.motion import MvGrid4, PARTITION_SHAPES
from repro.common.yuv import YuvFrame
from repro.me.types import MotionVector, ZERO_MV
from tests.conftest import make_frame


class TestWorkingFrame:
    def test_from_yuv_roundtrip(self):
        frame = make_frame(32, 16, seed=5)
        working = WorkingFrame.from_yuv(frame)
        assert working.y.dtype == np.int64
        assert working.to_yuv() == frame

    def test_blank_dimensions(self):
        working = WorkingFrame.blank(32, 16)
        assert working.width == 32
        assert working.height == 16
        assert working.u.shape == (8, 16)

    def test_to_yuv_clips(self):
        working = WorkingFrame.blank(16, 16)
        working.y[0, 0] = 999
        working.y[0, 1] = -50
        frame = working.to_yuv()
        assert int(frame.y[0, 0]) == 255
        assert int(frame.y[0, 1]) == 0

    def test_store_block(self):
        working = WorkingFrame.blank(16, 16)
        block = np.full((4, 4), 42, dtype=np.int64)
        working.store_block("y", 4, 8, block)
        assert np.all(working.y[8:12, 4:8] == 42)
        assert working.y[7, 4] == 0

    def test_padded_cached_per_range(self):
        working = WorkingFrame.blank(16, 16)
        first = working.padded("y", 4)
        assert working.padded("y", 4) is first
        assert working.padded("y", 8) is not first
        assert working.padded("u", 4) is not first

    def test_invalidate_padding(self):
        working = WorkingFrame.blank(16, 16)
        first = working.padded("y", 4)
        working.invalidate_padding()
        assert working.padded("y", 4) is not first

    def test_plane_accessor(self):
        working = WorkingFrame.blank(16, 16)
        assert working.plane("u") is working.u


class TestTcGrid:
    def test_unset_is_none(self):
        grid = TcGrid(4, 4)
        assert grid.get(0, 0) is None
        assert grid.get(-1, 2) is None
        assert grid.get(0, 99) is None

    def test_set_get(self):
        grid = TcGrid(4, 4)
        grid.set(2, 3, 7)
        assert grid.get(2, 3) == 7

    def test_nc_context_rules(self):
        grid = TcGrid(4, 4)
        assert grid.nc(1, 1) == 0          # no neighbours
        grid.set(0, 1, 4)                  # left of (1,1)
        assert grid.nc(1, 1) == 4
        grid.set(1, 0, 7)                  # top of (1,1)
        assert grid.nc(1, 1) == (4 + 7 + 1) >> 1


class TestH264Layout:
    def test_luma_offsets_raster(self):
        assert LUMA_OFFSETS[0] == (0, 0)
        assert LUMA_OFFSETS[1] == (4, 0)
        assert LUMA_OFFSETS[4] == (0, 4)
        assert LUMA_OFFSETS[15] == (12, 12)

    def test_quadrants(self):
        # Block 0 (top-left) -> quadrant 0; block 3 (top-right) -> 1;
        # block 12 (bottom-left) -> 2; block 15 -> 3.
        assert luma_quadrant(0) == 0
        assert luma_quadrant(3) == 1
        assert luma_quadrant(12) == 2
        assert luma_quadrant(15) == 3
        # Each quadrant holds exactly four blocks.
        from collections import Counter

        counts = Counter(luma_quadrant(k) for k in range(16))
        assert counts == {0: 4, 1: 4, 2: 4, 3: 4}

    def test_partition_shapes_cover_macroblock(self):
        for shape, rects in PARTITION_SHAPES.items():
            covered = np.zeros((16, 16), dtype=bool)
            for off_x, off_y, width, height in rects:
                assert not covered[off_y : off_y + height, off_x : off_x + width].any()
                covered[off_y : off_y + height, off_x : off_x + width] = True
            assert covered.all(), shape


class TestMvGrid4:
    def test_predictor_median(self):
        grid = MvGrid4(2, 2)
        grid.set_rect(0, 1, 1, 1, MotionVector(2, 0), 0)   # left
        grid.set_rect(1, 0, 1, 1, MotionVector(6, 4), 0)   # top
        grid.set_rect(5, 0, 1, 1, MotionVector(4, 8), 0)   # top-right of width 4
        assert grid.predictor(1, 1, 4) == MotionVector(4, 4)

    def test_intra_cells_count_as_zero(self):
        grid = MvGrid4(2, 2)
        grid.set_rect(1, 0, 1, 1, MotionVector(8, 8), 0)
        # left and top-right missing -> median(0, (8,8), 0) = 0.
        assert grid.predictor(1, 1, 1) == ZERO_MV

    def test_ref_tracked(self):
        grid = MvGrid4(2, 2)
        grid.set_rect(0, 0, 4, 4, MotionVector(1, 1), ref=2)
        assert grid.get(3, 3).ref == 2

    def test_neighbours(self):
        grid = MvGrid4(2, 2)
        mv = MotionVector(-4, 4)
        grid.set_rect(0, 1, 1, 1, mv, 0)
        assert grid.neighbours(1, 1) == [mv]
