"""Tests for the CAVLC-structured residual coder."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.codecs.h264.cavlc import CavlcCoder, nc_context
from repro.common.bitstream import BitReader, BitWriter

CODER = CavlcCoder()


def roundtrip(scanned, nc=0):
    writer = BitWriter()
    tc_encoded = CODER.encode_block(writer, scanned, nc)
    writer.align()
    decoded, tc_decoded = CODER.decode_block(BitReader(writer.to_bytes()), len(scanned), nc)
    assert tc_encoded == tc_decoded
    return decoded


class TestNcContext:
    def test_both_neighbours(self):
        assert nc_context(3, 6) == 5  # (3 + 6 + 1) >> 1

    def test_single_neighbour(self):
        assert nc_context(4, None) == 4
        assert nc_context(None, 7) == 7

    def test_no_neighbours(self):
        assert nc_context(None, None) == 0


class TestBlocks:
    def test_empty_block(self):
        assert roundtrip([0] * 16) == [0] * 16

    def test_single_trailing_one(self):
        scanned = [0] * 16
        scanned[0] = 1
        assert roundtrip(scanned) == scanned

    def test_negative_trailing_one(self):
        scanned = [0] * 16
        scanned[4] = -1
        assert roundtrip(scanned) == scanned

    def test_three_trailing_ones(self):
        scanned = [5, 0, 1, -1, 1] + [0] * 11
        assert roundtrip(scanned) == scanned

    def test_more_than_three_ones(self):
        # Only the last three count as trailing ones; earlier +-1s are levels.
        scanned = [1, 1, 1, 1, 1] + [0] * 11
        assert roundtrip(scanned) == scanned

    def test_full_block(self):
        scanned = [(-1) ** i * (i + 1) for i in range(16)]
        assert roundtrip(scanned) == scanned

    def test_large_levels_escape(self):
        scanned = [0] * 16
        scanned[0] = 2047
        scanned[1] = -1800
        assert roundtrip(scanned) == scanned

    def test_many_leading_zeros(self):
        scanned = [0] * 16
        scanned[15] = 3
        assert roundtrip(scanned) == scanned

    def test_alternating_zeros(self):
        scanned = [2, 0, -3, 0, 4, 0, -1, 0, 1] + [0] * 7
        assert roundtrip(scanned) == scanned

    def test_chroma_dc_block_size_4(self):
        scanned = [7, 0, -2, 1]
        assert roundtrip(scanned) == scanned

    def test_ac_block_size_15(self):
        scanned = [0] * 15
        scanned[3] = -9
        scanned[14] = 1
        assert roundtrip(scanned) == scanned

    @pytest.mark.parametrize("nc", [0, 1, 2, 3, 5, 8, 16])
    def test_all_nc_contexts(self, nc):
        scanned = [3, -1, 0, 1] + [0] * 12
        assert roundtrip(scanned, nc=nc) == scanned

    def test_context_changes_bit_cost(self):
        # A dense block should be cheaper under a high-nC context.
        scanned = [4, -3, 2, 1, -1, 1, 0, 1] + [0] * 8
        costs = {}
        for nc in (0, 8):
            writer = BitWriter()
            CODER.encode_block(writer, scanned, nc)
            costs[nc] = len(writer)
        assert costs[8] <= costs[0]

    def test_empty_block_is_one_or_two_bits(self):
        writer = BitWriter()
        CODER.encode_block(writer, [0] * 16, 0)
        assert len(writer) <= 2

    @given(st.lists(st.integers(-2047, 2047), min_size=16, max_size=16),
           st.integers(0, 16))
    @settings(max_examples=120)
    def test_roundtrip_property_16(self, scanned, nc):
        assert roundtrip(scanned, nc) == scanned

    @given(st.lists(st.integers(-60, 60), min_size=15, max_size=15),
           st.integers(0, 16))
    @settings(max_examples=60)
    def test_roundtrip_property_15(self, scanned, nc):
        assert roundtrip(scanned, nc) == scanned

    @given(st.lists(st.integers(-500, 500), min_size=4, max_size=4))
    @settings(max_examples=60)
    def test_roundtrip_property_dc(self, scanned):
        assert roundtrip(scanned, 0) == scanned

    @given(st.lists(st.lists(st.integers(-40, 40), min_size=16, max_size=16),
                    min_size=2, max_size=6))
    @settings(max_examples=40)
    def test_consecutive_blocks_share_stream(self, blocks):
        writer = BitWriter()
        for scanned in blocks:
            CODER.encode_block(writer, scanned, 2)
        writer.align()
        reader = BitReader(writer.to_bytes())
        for scanned in blocks:
            decoded, _ = CODER.decode_block(reader, 16, 2)
            assert decoded == scanned
