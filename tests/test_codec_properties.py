"""Property-based end-to-end codec tests.

Random tiny sequences must round-trip through every codec: decode succeeds,
frame counts and geometry are preserved, and the reconstruction error stays
within the quantiser's reach.  This is the fuzzing counterpart of the
deterministic round-trip tests.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.codecs import CODEC_NAMES, get_decoder, get_encoder
from repro.common.metrics import sequence_psnr
from repro.common.yuv import YuvFrame, YuvSequence


@st.composite
def tiny_videos(draw):
    """Random 16x16..32x32 sequences of 1..4 smooth-ish frames."""
    width = draw(st.sampled_from([16, 32]))
    height = draw(st.sampled_from([16, 32]))
    count = draw(st.integers(1, 4))
    seed = draw(st.integers(0, 2 ** 16))
    rng = np.random.default_rng(seed)
    # Smooth base + per-frame jitter: decodable content, not pure noise.
    base = rng.integers(0, 256, (height // 4, width // 4))
    frames = []
    for _ in range(count):
        luma = np.kron(base, np.ones((4, 4))) + rng.integers(-12, 13, (height, width))
        chroma_u = rng.integers(100, 156, (height // 2, width // 2))
        chroma_v = rng.integers(100, 156, (height // 2, width // 2))
        frames.append(
            YuvFrame(
                np.clip(luma, 0, 255).astype(np.uint8),
                chroma_u.astype(np.uint8),
                chroma_v.astype(np.uint8),
            )
        )
        base = base + rng.integers(-4, 5, base.shape)
        base = np.clip(base, 0, 255)
    return YuvSequence(frames, fps=25)


def fields_for(codec, video):
    fields = dict(width=video.width, height=video.height, search_range=4)
    if codec == "h264":
        fields["qp"] = 26
    elif codec == "mjpeg":
        fields["quality"] = 80
    else:
        fields["qscale"] = 5
    return fields


@pytest.mark.parametrize("codec", CODEC_NAMES + ("mjpeg", "vc1"))
class TestRandomRoundTrips:
    @given(video=tiny_videos())
    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_roundtrip(self, codec, video):
        stream = get_encoder(codec, **fields_for(codec, video)).encode_sequence(video)
        decoded = get_decoder(codec).decode(stream)
        assert len(decoded) == len(video)
        assert (decoded.width, decoded.height) == (video.width, video.height)
        psnr = sequence_psnr(video, decoded)
        # Random jitter content still reconstructs within the coarse-quant
        # regime; anything below this indicates a prediction drift bug.
        assert psnr.y > 22.0

    @given(video=tiny_videos())
    @settings(max_examples=4, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_backends_bit_exact(self, codec, video):
        fields = fields_for(codec, video)
        scalar = get_encoder(codec, backend="scalar", **fields).encode_sequence(video)
        simd = get_encoder(codec, backend="simd", **fields).encode_sequence(video)
        assert all(a.payload == b.payload
                   for a, b in zip(scalar.pictures, simd.pictures))
