"""Integration tests of the Table V / Figure 1 drivers on a tiny workload.

These check the *shape* assertions of DESIGN.md section 5 end to end:
bitrate ordering, quality band, fps ordering, SIMD speed-ups.
"""

from fractions import Fraction

import pytest

from repro.bench.config import BenchConfig
from repro.bench.performance import (
    FIGURE1_PARTS,
    average_fps,
    real_time_summary,
    render_performance,
    run_figure1_part,
    run_performance,
    simd_speedups,
)
from repro.bench.ratedistortion import (
    compression_gains,
    render_rate_distortion,
    run_rate_distortion,
)
from repro.errors import ConfigError


@pytest.fixture(scope="module")
def tiny_config():
    return BenchConfig(
        scale=Fraction(1, 8),
        frames=4,
        runs=1,
        warmup=0,
        sequences=("rush_hour",),
        tier_names=("576p25",),
    )


@pytest.fixture(scope="module")
def rd_rows(tiny_config):
    return run_rate_distortion(tiny_config)


class TestTable5:
    def test_one_row_per_combination(self, rd_rows, tiny_config):
        assert len(rd_rows) == len(tiny_config.codecs)

    def test_bitrate_ordering(self, rd_rows):
        by_codec = {row.codec: row for row in rd_rows}
        assert by_codec["mpeg2"].bitrate_kbps > by_codec["mpeg4"].bitrate_kbps
        assert by_codec["mpeg4"].bitrate_kbps > by_codec["h264"].bitrate_kbps

    def test_quality_band(self, rd_rows):
        # Constant-QP encodes land in a narrow band (Table V property).
        values = [row.psnr.combined for row in rd_rows]
        assert max(values) - min(values) < 5.0
        assert min(values) > 33.0

    def test_gains_positive(self, rd_rows):
        gains = compression_gains(rd_rows)
        assert gains[("576p25", "mpeg4_vs_mpeg2")] > 0
        assert gains[("576p25", "h264_vs_mpeg2")] > gains[("576p25", "mpeg4_vs_mpeg2")]
        assert gains[("576p25", "h264_vs_mpeg4")] > 0

    def test_render(self, rd_rows):
        text = render_rate_distortion(rd_rows)
        assert "Table V" in text
        assert "mpeg2 PSNR" in text
        assert "Compression gains" in text


@pytest.fixture(scope="module")
def decode_simd_rows(tiny_config):
    return run_performance(tiny_config, "decode", "simd")


class TestFigure1:
    def test_rows_cover_grid(self, decode_simd_rows, tiny_config):
        assert len(decode_simd_rows) == len(tiny_config.codecs)

    def test_decode_fps_ordering(self, decode_simd_rows):
        fps = {row.codec: row.fps for row in decode_simd_rows}
        # Figure 1 shape: MPEG-2 fastest, H.264 slowest.
        assert fps["mpeg2"] > fps["h264"]
        assert fps["mpeg4"] > fps["h264"]

    def test_parts_mapping(self):
        assert FIGURE1_PARTS["a"] == ("decode", "scalar")
        assert FIGURE1_PARTS["d"] == ("encode", "simd")

    def test_part_runner(self, tiny_config):
        rows = run_figure1_part(tiny_config, "b")
        assert all(row.operation == "decode" and row.backend == "simd" for row in rows)

    def test_invalid_part(self, tiny_config):
        with pytest.raises(ConfigError):
            run_figure1_part(tiny_config, "z")

    def test_invalid_operation(self, tiny_config):
        with pytest.raises(ConfigError):
            run_performance(tiny_config, "transcode", "simd")

    def test_average_and_realtime_summary(self, decode_simd_rows):
        averages = average_fps(decode_simd_rows)
        summary = real_time_summary(decode_simd_rows)
        assert set(averages) == set(summary)
        for key, fps in averages.items():
            assert summary[key] == (fps >= 25.0)

    def test_render(self, decode_simd_rows):
        text = render_performance(decode_simd_rows, "Figure 1(b)")
        assert "Figure 1(b)" in text
        assert "real-time" in text

    def test_simd_speedups_positive(self, tiny_config):
        scalar_rows = run_performance(tiny_config, "decode", "scalar")
        speedups = simd_speedups(scalar_rows, run_performance(tiny_config, "decode", "simd"))
        assert set(speedups) == {"mpeg2", "mpeg4", "h264"}
        # SIMD is faster for every codec (Figure 1a vs 1b).
        assert all(value > 1.0 for value in speedups.values())
