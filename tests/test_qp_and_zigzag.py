"""Tests for the QP equivalence (Equation 1) and scan orders."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigError
from repro.transform.qp import (
    h264_qp_from_mpeg,
    mpeg_qscale_from_h264,
    validate_h264_qp,
    validate_mpeg_qscale,
)
from repro.transform.zigzag import (
    ZIGZAG_2X2,
    ZIGZAG_4X4,
    ZIGZAG_8X8,
    scan4,
    scan8,
    unscan4,
    unscan8,
)


class TestEquation1:
    def test_paper_settings(self):
        # Table IV: vqscale=5 and --qp 26 must correspond.
        assert h264_qp_from_mpeg(5) == 26

    @pytest.mark.parametrize("qscale, qp", [(1, 12), (2, 18), (4, 24), (8, 30), (16, 36)])
    def test_powers_of_two(self, qscale, qp):
        assert h264_qp_from_mpeg(qscale) == qp

    def test_clamped_to_valid_range(self):
        assert 0 <= h264_qp_from_mpeg(1) <= 51
        assert h264_qp_from_mpeg(31) <= 51

    def test_below_one_rejected(self):
        with pytest.raises(ConfigError):
            h264_qp_from_mpeg(0.5)

    @given(st.integers(1, 31))
    def test_inverse_consistency(self, qscale):
        qp = h264_qp_from_mpeg(qscale)
        recovered = mpeg_qscale_from_h264(qp)
        # Rounded QP maps back within one rounding step.
        assert recovered == pytest.approx(qscale, rel=0.07)

    def test_inverse_range_check(self):
        with pytest.raises(ConfigError):
            mpeg_qscale_from_h264(52)

    def test_validators(self):
        assert validate_mpeg_qscale(5) == 5
        assert validate_h264_qp(26) == 26
        with pytest.raises(ConfigError):
            validate_mpeg_qscale(0)
        with pytest.raises(ConfigError):
            validate_mpeg_qscale(32)
        with pytest.raises(ConfigError):
            validate_h264_qp(-1)


class TestZigzag:
    def test_lengths(self):
        assert len(ZIGZAG_8X8) == 64
        assert len(ZIGZAG_4X4) == 16
        assert len(ZIGZAG_2X2) == 4

    def test_each_position_once(self):
        assert len(set(ZIGZAG_8X8)) == 64
        assert len(set(ZIGZAG_4X4)) == 16

    def test_starts_at_dc_ends_at_corner(self):
        assert ZIGZAG_8X8[0] == (0, 0)
        assert ZIGZAG_8X8[-1] == (7, 7)
        assert ZIGZAG_4X4[0] == (0, 0)
        assert ZIGZAG_4X4[-1] == (3, 3)

    def test_classic_8x8_prefix(self):
        # The standard zigzag order begins (0,0),(0,1),(1,0),(2,0),(1,1),(0,2).
        assert ZIGZAG_8X8[:6] == ((0, 0), (0, 1), (1, 0), (2, 0), (1, 1), (0, 2))

    def test_frequency_ordering(self):
        # Later scan positions are never closer to DC (by i+j) than 2 steps.
        sums = [i + j for i, j in ZIGZAG_8X8]
        for index in range(1, len(sums)):
            assert sums[index] >= sums[index - 1] - 1

    def test_scan8_roundtrip(self):
        rng = np.random.default_rng(0)
        block = rng.integers(-100, 100, (8, 8)).astype(np.int64)
        assert np.array_equal(unscan8(scan8(block)), block)

    def test_scan4_roundtrip(self):
        rng = np.random.default_rng(1)
        block = rng.integers(-100, 100, (4, 4)).astype(np.int64)
        assert np.array_equal(unscan4(scan4(block)), block)

    def test_unscan_short_list_zero_fills(self):
        block = unscan4([5, 3])
        assert int(block[0, 0]) == 5
        assert int(block[0, 1]) == 3
        assert int(np.sum(np.abs(block))) == 8
