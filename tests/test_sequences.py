"""Tests for the procedural HD-VideoBench input sequences."""

import numpy as np
import pytest

from repro.common.resolution import Resolution
from repro.errors import SequenceError
from repro.sequences import (
    SEQUENCE_NAMES,
    generate_sequence,
    get_generator,
)

SMALL = Resolution("test", 64, 48)


def motion_energy(video) -> float:
    """Mean absolute luma difference between consecutive frames."""
    diffs = []
    for previous, current in zip(video, video.frames[1:]):
        diffs.append(np.mean(np.abs(current.y.astype(float) - previous.y.astype(float))))
    return float(np.mean(diffs))


def spatial_detail(video) -> float:
    """Mean absolute horizontal gradient of the first frame."""
    luma = video[0].y.astype(float)
    return float(np.mean(np.abs(np.diff(luma, axis=1))))


class TestRegistry:
    def test_table3_names(self):
        assert SEQUENCE_NAMES == ("blue_sky", "pedestrian_area", "riverbed", "rush_hour")

    def test_all_generators_have_descriptions(self):
        for name in SEQUENCE_NAMES:
            generator = get_generator(name)
            assert generator.name == name
            assert len(generator.description) > 10

    def test_unknown_sequence(self):
        with pytest.raises(SequenceError):
            get_generator("big_buck_bunny")

    def test_unknown_resolution(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            generate_sequence("blue_sky", "2160p60")


class TestGeneration:
    @pytest.mark.parametrize("name", SEQUENCE_NAMES)
    def test_dimensions_and_count(self, name):
        video = generate_sequence(name, SMALL, frames=3)
        assert len(video) == 3
        assert (video.width, video.height) == (64, 48)
        assert video[0].u.shape == (24, 32)

    @pytest.mark.parametrize("name", SEQUENCE_NAMES)
    def test_deterministic(self, name):
        first = generate_sequence(name, SMALL, frames=2)
        second = generate_sequence(name, SMALL, frames=2)
        assert all(a == b for a, b in zip(first, second))

    @pytest.mark.parametrize("name", SEQUENCE_NAMES)
    def test_frames_not_static(self, name):
        video = generate_sequence(name, SMALL, frames=3)
        assert motion_energy(video) > 0.01

    @pytest.mark.parametrize("name", SEQUENCE_NAMES)
    def test_has_texture(self, name):
        video = generate_sequence(name, SMALL, frames=1)
        assert spatial_detail(video) > 0.5

    def test_scaled_tier_names(self):
        video = generate_sequence("rush_hour", "576p25", frames=1, scale=(1, 8))
        assert (video.width, video.height) == (96, 80)

    def test_fraction_scale(self):
        from fractions import Fraction

        video = generate_sequence("rush_hour", "576p25", frames=1, scale=Fraction(1, 8))
        assert (video.width, video.height) == (96, 80)

    def test_invalid_frame_count(self):
        with pytest.raises(SequenceError):
            generate_sequence("riverbed", SMALL, frames=0)


class TestCharacteristics:
    """The coding-relevant character of each clip (Table III / DESIGN.md)."""

    @pytest.fixture(scope="class")
    def clips(self):
        return {
            name: generate_sequence(name, SMALL, frames=5)
            for name in SEQUENCE_NAMES
        }

    def test_riverbed_is_hardest_to_predict(self, clips):
        # Temporal decorrelation: riverbed's frame difference dwarfs the
        # coherent-motion clips' (it is "very hard to code").
        energies = {name: motion_energy(video) for name, video in clips.items()}
        assert energies["riverbed"] > energies["rush_hour"]
        assert energies["riverbed"] > energies["pedestrian_area"]
        assert energies["riverbed"] > energies["blue_sky"]

    def test_rush_hour_moves_slowest(self, clips):
        energies = {name: motion_energy(video) for name, video in clips.items()}
        assert energies["rush_hour"] <= min(
            energies["riverbed"], energies["pedestrian_area"]
        )

    def test_blue_sky_high_contrast(self, clips):
        # Trees against sky: wide luma spread.
        luma = clips["blue_sky"][0].y
        assert int(luma.max()) - int(luma.min()) > 100

    def test_blue_sky_small_sky_colour_differences(self, clips):
        # The sky region (top rows) has low chroma variance.
        top_u = clips["blue_sky"][0].u[:6, :]
        assert float(np.std(top_u)) < 8.0

    def test_pedestrian_area_has_large_movers(self, clips):
        # Between first and last frame, a sizable fraction of pixels change
        # notably (people "very close to the camera").
        first = clips["pedestrian_area"][0].y.astype(float)
        last = clips["pedestrian_area"][4].y.astype(float)
        changed = np.mean(np.abs(last - first) > 10)
        assert changed > 0.03

    def test_rush_hour_background_static(self, clips):
        # Upper half (buildings) barely changes: fixed camera.
        first = clips["rush_hour"][0].y[:16].astype(float)
        last = clips["rush_hour"][4].y[:16].astype(float)
        assert float(np.mean(np.abs(last - first))) < 1.0
