"""Tests for the MPEG-4 building blocks: 3-D VLC, AC/DC prediction, MV grid."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.codecs.mpeg4 import tables
from repro.codecs.mpeg4.acdc import (
    AcDcStore,
    HORIZONTAL,
    VERTICAL,
    apply_ac_prediction,
    predict,
)
from repro.codecs.mpeg4.coefficients import decode_3d, encode_3d, estimate_3d_bits
from repro.codecs.mpeg4.motion import MvGrid
from repro.common.bitstream import BitReader, BitWriter
from repro.me.types import MotionVector, ZERO_MV


def roundtrip_3d(scanned, start=0):
    writer = BitWriter()
    coded = encode_3d(writer, scanned, start=start)
    if not coded:
        return None
    writer.align()
    return decode_3d(BitReader(writer.to_bytes()), len(scanned), start=start)


class TestCoefficients3D:
    def test_empty_block_not_coded(self):
        writer = BitWriter()
        assert encode_3d(writer, [0] * 64) is False
        assert len(writer) == 0

    def test_single_coefficient(self):
        scanned = [0] * 64
        scanned[3] = -4
        assert roundtrip_3d(scanned) == scanned

    def test_last_flag_terminates(self):
        # Two blocks back to back: the last flag separates them without EOB.
        first = [0] * 64
        first[0] = 5
        second = [0] * 64
        second[7] = -2
        writer = BitWriter()
        encode_3d(writer, first)
        encode_3d(writer, second)
        writer.align()
        reader = BitReader(writer.to_bytes())
        assert decode_3d(reader, 64) == first
        assert decode_3d(reader, 64) == second

    def test_escape_paths(self):
        scanned = [0] * 64
        scanned[30] = 1      # long run
        scanned[31] = 900    # big level
        assert roundtrip_3d(scanned) == scanned

    def test_estimate_matches_actual_bits(self):
        scanned = [0] * 64
        scanned[0] = 3
        scanned[5] = -1
        scanned[40] = 77
        writer = BitWriter()
        encode_3d(writer, scanned)
        assert len(writer) == estimate_3d_bits(scanned)

    def test_estimate_zero_for_empty(self):
        assert estimate_3d_bits([0] * 64) == 0

    def test_no_eob_overhead_vs_mpeg2(self):
        # The 3-D code of a single (0, 1) event must be at most as long as
        # MPEG-2's event + EOB for the same block: the MPEG-4 entropy edge.
        from repro.codecs.mpeg2 import tables as m2tables

        scanned = [1] + [0] * 63
        mpeg4_bits = estimate_3d_bits(scanned)
        mpeg2_bits = (
            m2tables.COEFF_TABLE.bits((0, 1)) + 1 + m2tables.COEFF_TABLE.bits(m2tables.EOB)
        )
        assert mpeg4_bits <= mpeg2_bits

    @given(st.lists(st.integers(-2000, 2000), min_size=64, max_size=64))
    @settings(max_examples=60)
    def test_roundtrip_property(self, scanned):
        result = roundtrip_3d(scanned)
        if any(scanned):
            assert result == scanned
        else:
            assert result is None


class TestAcDcPrediction:
    def level_block(self, dc, seed=0):
        rng = np.random.default_rng(seed)
        levels = rng.integers(-5, 6, (8, 8)).astype(np.int64)
        levels[0, 0] = dc
        return levels

    def test_missing_neighbours_default(self):
        store = AcDcStore()
        direction, dc, ac = predict(store, 0, 0)
        assert dc == tables.DC_DEFAULT
        assert ac == [0] * 7

    def test_vertical_direction_chosen(self):
        store = AcDcStore()
        # dcA == dcB (left column identical) -> |dcA-dcB| = 0 < |dcB-dcC|:
        store.put(0, 1, self.level_block(100))   # A (left)
        store.put(0, 0, self.level_block(100))   # B (above-left)
        store.put(1, 0, self.level_block(200, seed=1))  # C (above)
        direction, dc, _ = predict(store, 1, 1)
        assert direction == VERTICAL
        assert dc == 200

    def test_horizontal_direction_chosen(self):
        store = AcDcStore()
        store.put(0, 1, self.level_block(50, seed=2))   # A
        store.put(0, 0, self.level_block(200))          # B
        store.put(1, 0, self.level_block(200))          # C (equal to B)
        direction, dc, _ = predict(store, 1, 1)
        assert direction == HORIZONTAL
        assert dc == 50

    def test_ac_prediction_roundtrip(self):
        levels = self.level_block(30, seed=3)
        predicted = [1, -2, 3, 0, 0, 1, -1]
        for direction in (VERTICAL, HORIZONTAL):
            adjusted = apply_ac_prediction(levels, direction, predicted, -1)
            restored = apply_ac_prediction(adjusted, direction, predicted, +1)
            assert np.array_equal(restored, levels)

    def test_vertical_adjusts_first_row_only(self):
        levels = np.zeros((8, 8), dtype=np.int64)
        adjusted = apply_ac_prediction(levels, VERTICAL, [1] * 7, -1)
        assert np.all(adjusted[0, 1:] == -1)
        assert not np.any(adjusted[1:, :])

    def test_store_keeps_row_and_column(self):
        store = AcDcStore()
        levels = self.level_block(42, seed=4)
        store.put(3, 2, levels)
        entry = store.get(3, 2)
        assert entry.dc == 42
        assert entry.row == [int(v) for v in levels[0, 1:]]
        assert entry.col == [int(v) for v in levels[1:, 0]]

    def test_negative_coordinates_empty(self):
        assert AcDcStore().get(-1, 0) is None


class TestMvGrid:
    def test_empty_grid_predicts_zero(self):
        grid = MvGrid(4, 4)
        assert grid.predictor(0, 0, 2) == ZERO_MV

    def test_median_of_three_neighbours(self):
        grid = MvGrid(4, 4)
        grid.set_block(1, 2, 1, 1, MotionVector(4, 0))   # left
        grid.set_block(2, 1, 1, 1, MotionVector(8, 4))   # top
        grid.set_block(3, 1, 1, 1, MotionVector(2, 8))   # top-right
        assert grid.predictor(2, 2, 1) == MotionVector(4, 4)

    def test_set_block_fills_rectangle(self):
        grid = MvGrid(4, 4)
        grid.set_block(0, 0, 2, 2, MotionVector(5, 5))
        for by in range(2):
            for bx in range(2):
                assert grid.get(bx, by) == MotionVector(5, 5)
        assert grid.get(2, 0) is None

    def test_out_of_bounds_is_none(self):
        grid = MvGrid(2, 2)
        assert grid.get(-1, 0) is None
        assert grid.get(0, 99) is None

    def test_neighbours_deduplicated(self):
        grid = MvGrid(4, 4)
        mv = MotionVector(3, 3)
        grid.set_block(0, 1, 1, 1, mv)
        grid.set_block(1, 0, 1, 1, mv)
        assert grid.neighbours(1, 1) == [mv]
