"""Tests for the whole-program tier: call graph, dataflow, HDVB200-203.

Layout mirrors ``test_analysis.py``: construction units for the graph
(alias/relative-import/method resolution, the honest unresolved bucket),
fixed-point convergence on cyclic call graphs, violation+clean twin
fixtures for each interprocedural rule — every violation twin is a
**two-hop** case the corresponding HDVB1xx rule provably misses — plus
the cache, ``--changed-only``, ``--prune-stale`` and graph-export
surfaces, and the self-lint gate over ``src/``.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    GRAPH_SCHEMA,
    LintCache,
    Project,
    Seed,
    build_graph,
    empty_baseline,
    load_baseline,
    propagate,
    render_human,
    run,
    witness,
)
from repro.analysis.cli import graph_main, main as lint_main
from repro.analysis.engine import load_units
from repro.analysis.graph import module_key, normalize_import

REPO_ROOT = Path(__file__).resolve().parent.parent


def write_tree(tmp_path, files):
    for relpath, source in files.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))


def graph_of(tmp_path, files):
    write_tree(tmp_path, files)
    units, _ = load_units([str(tmp_path)])
    return build_graph(Project(units=units))


def lint_tree(tmp_path, files, **kwargs):
    write_tree(tmp_path, files)
    return run([str(tmp_path)], **kwargs)


def rule_ids(result):
    return [finding.rule_id for finding in result.findings]


# ---------------------------------------------------------------------------
# graph construction


class TestModuleKeys:
    def test_plain_module(self):
        assert module_key("origin/session.py") == "origin.session"

    def test_package_init(self):
        assert module_key("telemetry/__init__.py") == "telemetry"

    def test_root_init(self):
        assert module_key("__init__.py") == ""

    def test_normalize_strips_wrappers(self):
        assert normalize_import("repro.origin.session") == "origin.session"
        assert normalize_import("src.repro.codecs") == "codecs"
        assert normalize_import("numpy.random") == "numpy.random"


class TestCallResolution:
    def test_same_module_function_call(self, tmp_path):
        graph = graph_of(tmp_path, {"a.py": """
            def helper():
                return 1

            def entry():
                return helper()
        """})
        calls = graph.functions["a.py::entry"].calls
        assert [c.target for c in calls] == ["a.py::helper"]

    def test_from_import_with_alias(self, tmp_path):
        graph = graph_of(tmp_path, {
            "util.py": """
                def helper():
                    return 1
            """,
            "main.py": """
                from util import helper as h

                def entry():
                    return h()
            """,
        })
        calls = graph.functions["main.py::entry"].calls
        assert [c.target for c in calls] == ["util.py::helper"]

    def test_module_import_attribute_call(self, tmp_path):
        graph = graph_of(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/util.py": """
                def helper():
                    return 1
            """,
            "main.py": """
                import pkg.util

                def entry():
                    return pkg.util.helper()
            """,
        })
        calls = graph.functions["main.py::entry"].calls
        assert [c.target for c in calls] == ["pkg/util.py::helper"]

    def test_relative_import_resolves(self, tmp_path):
        graph = graph_of(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/util.py": """
                def helper():
                    return 1
            """,
            "pkg/main.py": """
                from .util import helper

                def entry():
                    return helper()
            """,
        })
        calls = graph.functions["pkg/main.py::entry"].calls
        assert [c.target for c in calls] == ["pkg/util.py::helper"]

    def test_self_method_resolution(self, tmp_path):
        graph = graph_of(tmp_path, {"a.py": """
            class Worker:
                def step(self):
                    return self._inner()

                def _inner(self):
                    return 1
        """})
        calls = graph.functions["a.py::Worker.step"].calls
        assert [c.target for c in calls] == ["a.py::Worker._inner"]

    def test_method_through_local_instance(self, tmp_path):
        graph = graph_of(tmp_path, {"a.py": """
            class Worker:
                def step(self):
                    return 1

            def entry():
                worker = Worker()
                return worker.step()
        """})
        targets = [c.target for c in graph.functions["a.py::entry"].calls]
        # The constructor edge (synthetic __init__) plus the method.
        assert "a.py::Worker.step" in targets
        assert "a.py::Worker.__init__" in targets
        assert graph.functions["a.py::Worker.__init__"].synthetic

    def test_inherited_method_resolution(self, tmp_path):
        graph = graph_of(tmp_path, {"a.py": """
            class Base:
                def step(self):
                    return 1

            class Child(Base):
                def run(self):
                    return self.step()
        """})
        calls = graph.functions["a.py::Child.run"].calls
        assert [c.target for c in calls] == ["a.py::Base.step"]

    def test_external_call_resolved_as_external(self, tmp_path):
        graph = graph_of(tmp_path, {"a.py": """
            import time

            def entry():
                return time.sleep(1)
        """})
        calls = graph.functions["a.py::entry"].calls
        assert calls[0].external == "time.sleep"
        assert calls[0].target is None

    def test_unresolved_bucket_is_honest(self, tmp_path):
        graph = graph_of(tmp_path, {"a.py": """
            def entry(callback):
                value = callback()
                return value.method()
        """})
        sites = graph.unresolved_sites()
        assert len(sites) == 2
        assert graph.counts()["unresolved_calls"] == 2
        document = graph.to_document()
        assert document["schema"] == GRAPH_SCHEMA
        assert document["unresolved"]["count"] == 2
        assert len(document["unresolved"]["sites"]) == 2

    def test_async_flag_recorded(self, tmp_path):
        graph = graph_of(tmp_path, {"a.py": """
            async def entry():
                return 1
        """})
        assert graph.functions["a.py::entry"].is_async

    def test_nested_function_qualname(self, tmp_path):
        graph = graph_of(tmp_path, {"a.py": """
            def outer():
                def inner():
                    return 1
                return inner()
        """})
        calls = graph.functions["a.py::outer"].calls
        assert [c.target for c in calls] == ["a.py::outer.inner"]
        assert "a.py::outer.inner" in graph.functions


# ---------------------------------------------------------------------------
# dataflow


class TestFixedPoint:
    def test_converges_on_cycle(self, tmp_path):
        graph = graph_of(tmp_path, {"a.py": """
            import time

            def ping(n):
                if n:
                    return pong(n - 1)
                return time.time()

            def pong(n):
                return ping(n)
        """})
        seeds = {"a.py::ping": {"time.time": Seed("time.time", 8)}}
        facts = propagate(graph, seeds)
        assert "time.time" in facts["a.py::ping"]
        assert "time.time" in facts["a.py::pong"]
        chain = witness(graph, facts, "a.py::pong", "time.time")
        assert chain[-1].startswith("time.time")

    def test_facts_stop_at_blocker(self, tmp_path):
        graph = graph_of(tmp_path, {"a.py": """
            def source():
                raise ValueError("boom")

            def shielded():
                try:
                    return source()
                except ValueError:
                    return None

            def exposed():
                return source()
        """})
        seeds = {"a.py::source": {"raise:ValueError":
                                  Seed("raise ValueError", 2)}}

        def blocks(caller, site, fact):
            return "ValueError" in site.handled

        facts = propagate(graph, seeds, blocks=blocks)
        assert "a.py::shielded" not in facts
        assert "raise:ValueError" in facts["a.py::exposed"]


# ---------------------------------------------------------------------------
# HDVB200 nondeterminism taint


class TestNondetTaintRule:
    TWO_HOP = {
        # The helper lives OUTSIDE the determinism scope, so HDVB101
        # cannot flag it; the codec entry contains no RNG call at all,
        # so HDVB101 cannot flag it either.  Only the graph connects
        # them.
        "util/jitter.py": """
            import random

            def jitter():
                return random.uniform(0.5, 1.5)
        """,
        "codecs/enc.py": """
            from util.jitter import jitter

            def encode(frame):
                return frame * jitter()
        """,
    }

    def test_two_hop_taint_flagged(self, tmp_path):
        result = lint_tree(tmp_path, self.TWO_HOP)
        assert rule_ids(result) == ["HDVB200"]
        finding = result.findings[0]
        assert finding.module == "codecs/enc.py"
        assert "random.uniform" in finding.message
        assert "jitter" in finding.message

    def test_hdvb101_alone_misses_the_two_hop_case(self, tmp_path):
        result = lint_tree(tmp_path, self.TWO_HOP, select=["HDVB101"])
        assert result.clean

    def test_clean_twin_seeded_rng(self, tmp_path):
        result = lint_tree(tmp_path, {
            "util/jitter.py": """
                import random

                def jitter(rng: random.Random):
                    return rng.uniform(0.5, 1.5)
            """,
            "codecs/enc.py": """
                import random

                from util.jitter import jitter

                def encode(frame, seed):
                    return frame * jitter(random.Random(seed))
            """,
        })
        assert result.clean

    def test_direct_source_in_orchestrate_flagged(self, tmp_path):
        result = lint_tree(tmp_path, {"orchestrate/sched.py": """
            import time

            def stamp():
                return time.time()
        """})
        assert rule_ids(result) == ["HDVB200"]

    def test_telemetry_sources_exempt(self, tmp_path):
        result = lint_tree(tmp_path, {
            "telemetry/trace.py": """
                import time

                def now():
                    return time.time()
            """,
            "orchestrate/sched.py": """
                from telemetry.trace import now

                def record():
                    return now()
            """,
        })
        assert result.clean

    def test_wallclock_two_hop_flagged(self, tmp_path):
        result = lint_tree(tmp_path, {
            "util/stamp.py": """
                import time

                def stamp():
                    return time.time()
            """,
            "transport/chan.py": """
                from util.stamp import stamp

                def send(packet):
                    return (stamp(), packet)
            """,
        })
        assert rule_ids(result) == ["HDVB200"]


# ---------------------------------------------------------------------------
# HDVB201 async blocking


class TestAsyncBlockingRule:
    TWO_HOP = {
        # The sleep hides in a sync helper outside origin/: HDVB170 has
        # no opinion, HDVB101/102 have no opinion (time.sleep is not a
        # wall-clock *read*), and no local rule connects coroutine to
        # helper.
        "util/throttle.py": """
            import time

            def settle():
                time.sleep(0.1)
        """,
        "origin/server.py": """
            from util.throttle import settle

            async def serve(session):
                settle()
                return session
        """,
    }

    def test_two_hop_blocking_flagged(self, tmp_path):
        result = lint_tree(tmp_path, self.TWO_HOP)
        assert rule_ids(result) == ["HDVB201"]
        finding = result.findings[0]
        assert finding.module == "origin/server.py"
        assert "time.sleep" in finding.message

    def test_local_rules_alone_miss_it(self, tmp_path):
        result = lint_tree(tmp_path, self.TWO_HOP,
                           select=["HDVB101", "HDVB102", "HDVB170"])
        assert result.clean

    def test_clean_twin_async_path(self, tmp_path):
        result = lint_tree(tmp_path, {
            "util/throttle.py": """
                import asyncio

                async def settle():
                    await asyncio.sleep(0.1)
            """,
            "origin/server.py": """
                from util.throttle import settle

                async def serve(session):
                    await settle()
                    return session
            """,
        })
        assert result.clean

    def test_sync_open_two_hop_flagged(self, tmp_path):
        result = lint_tree(tmp_path, {
            "util/disk.py": """
                def slurp(path):
                    with open(path) as handle:
                        return handle.read()
            """,
            "origin/server.py": """
                from util.disk import slurp

                async def serve(path):
                    return slurp(path)
            """,
        })
        assert rule_ids(result) == ["HDVB201"]

    def test_submit_result_wait_flagged(self, tmp_path):
        result = lint_tree(tmp_path, {"origin/server.py": """
            async def serve(pool, job):
                return pool.submit(job).result()
        """})
        assert rule_ids(result) == ["HDVB201"]

    def test_sync_caller_not_flagged(self, tmp_path):
        # The same blocking helper reached from a *sync* function in
        # origin/ is legal -- only coroutines hold the loop hostage.
        result = lint_tree(tmp_path, {
            "util/throttle.py": """
                import time

                def settle():
                    time.sleep(0.1)
            """,
            "origin/setup.py": """
                from util.throttle import settle

                def warm_up():
                    settle()
            """,
        })
        assert result.clean

    def test_no_await_cascade(self, tmp_path):
        # Only the coroutine that owns the blocking call is flagged,
        # not every coroutine awaiting it up the chain.
        result = lint_tree(tmp_path, {"origin/server.py": """
            import time

            async def leaf():
                time.sleep(0.1)

            async def trunk():
                await leaf()
        """})
        assert rule_ids(result) == ["HDVB201"]
        assert "leaf" in result.findings[0].message


# ---------------------------------------------------------------------------
# HDVB202 exception escapes


class TestExceptionEscapeRule:
    TWO_HOP = {
        # The raise lives OUTSIDE the decode scope (HDVB110 cannot flag
        # it) and the public decode entry contains no raise at all.
        "util/varint.py": """
            def read_varint(buf):
                if not buf:
                    raise ValueError("empty buffer")
                return buf[0]
        """,
        "codecs/dec.py": """
            from util.varint import read_varint

            def decode(buf):
                return read_varint(buf)
        """,
    }

    def test_two_hop_escape_flagged(self, tmp_path):
        result = lint_tree(tmp_path, self.TWO_HOP)
        assert rule_ids(result) == ["HDVB202"]
        finding = result.findings[0]
        assert finding.module == "codecs/dec.py"
        assert "ValueError" in finding.message

    def test_hdvb110_alone_misses_the_two_hop_case(self, tmp_path):
        result = lint_tree(tmp_path, self.TWO_HOP, select=["HDVB110"])
        assert result.clean

    def test_clean_twin_normalises_at_boundary(self, tmp_path):
        result = lint_tree(tmp_path, {
            "util/varint.py": """
                def read_varint(buf):
                    if not buf:
                        raise ValueError("empty buffer")
                    return buf[0]
            """,
            "codecs/dec.py": """
                from repro.errors import BitstreamError

                from util.varint import read_varint

                def decode(buf):
                    try:
                        return read_varint(buf)
                    except ValueError as error:
                        raise BitstreamError(str(error)) from error
            """,
        })
        assert result.clean

    def test_ancestor_handler_blocks_fact(self, tmp_path):
        # except LookupError catches the KeyError two hops down.
        result = lint_tree(tmp_path, {
            "util/table.py": """
                def lookup(table, key):
                    if key not in table:
                        raise KeyError(key)
                    return table[key]
            """,
            "codecs/dec.py": """
                from util.table import lookup

                def decode(table, key):
                    try:
                        return lookup(table, key)
                    except LookupError:
                        return None
            """,
        })
        assert result.clean

    def test_private_entry_not_flagged(self, tmp_path):
        result = lint_tree(tmp_path, {
            "util/varint.py": """
                def read_varint(buf):
                    if not buf:
                        raise ValueError("empty buffer")
                    return buf[0]
            """,
            "codecs/dec.py": """
                from util.varint import read_varint

                def _decode(buf):
                    return read_varint(buf)
            """,
        })
        assert result.clean

    def test_direct_raise_in_origin_entry_flagged(self, tmp_path):
        # HDVB110 never scoped origin/, so the direct raise is this
        # rule's to report.
        result = lint_tree(tmp_path, {"origin/server.py": """
            def serve(session):
                raise RuntimeError(session)
        """})
        assert rule_ids(result) == ["HDVB202"]


# ---------------------------------------------------------------------------
# HDVB203 shared mutable state


class TestSharedMutableStateRule:
    TWO_HOP = {
        "parallel.py": """
            def run_pooled(worker, jobs, workers):
                return [worker(*job) for job in jobs]
        """,
        "orchestrate/state.py": """
            from parallel import run_pooled

            RESULTS = []

            def _cell(job):
                RESULTS.append(job)
                return job

            def run(jobs):
                results = run_pooled(_cell, jobs, 2)
                RESULTS.clear()
                return results
        """,
    }

    def test_both_sides_write_flagged(self, tmp_path):
        result = lint_tree(tmp_path, self.TWO_HOP)
        assert rule_ids(result) == ["HDVB203"]
        finding = result.findings[0]
        assert "RESULTS" in finding.message

    def test_clean_twin_merge_in_parent(self, tmp_path):
        result = lint_tree(tmp_path, {
            "parallel.py": """
                def run_pooled(worker, jobs, workers):
                    return [worker(*job) for job in jobs]
            """,
            "orchestrate/state.py": """
                from parallel import run_pooled

                RESULTS = []

                def _cell(job):
                    return job

                def run(jobs):
                    outcomes = run_pooled(_cell, jobs, 2)
                    RESULTS.extend(outcomes)
                    return outcomes
            """,
        })
        assert result.clean

    def test_module_body_init_not_a_parent_write(self, tmp_path):
        # Import-time initialisation runs in both processes by design.
        result = lint_tree(tmp_path, {
            "parallel.py": """
                def run_pooled(worker, jobs, workers):
                    return [worker(*job) for job in jobs]
            """,
            "orchestrate/state.py": """
                from parallel import run_pooled

                RESULTS = []
                RESULTS.append(0)

                def _cell(job):
                    RESULTS.append(job)
                    return job

                def run(jobs):
                    return run_pooled(_cell, jobs, 2)
            """,
        })
        assert result.clean

    def test_declared_global_rebind_detected(self, tmp_path):
        result = lint_tree(tmp_path, {
            "parallel.py": """
                def run_pooled(worker, jobs, workers):
                    return [worker(*job) for job in jobs]
            """,
            "orchestrate/state.py": """
                from parallel import run_pooled

                TOTAL = 0

                def _cell(job):
                    global TOTAL
                    TOTAL += 1
                    return job

                def reset():
                    global TOTAL
                    TOTAL = 0

                def run(jobs):
                    reset()
                    return run_pooled(_cell, jobs, 2)
            """,
        })
        assert rule_ids(result) == ["HDVB203"]


# ---------------------------------------------------------------------------
# cache, changed-only, prune-stale, graph export


class TestLintCache:
    def test_warm_run_hits_ast_and_graph(self, tmp_path):
        write_tree(tmp_path, {"codecs/a.py": """
            def encode(frame):
                return frame
        """})
        cache_dir = tmp_path / ".cache"
        cold = LintCache(cache_dir)
        result = run([str(tmp_path / "codecs")], cache=cold)
        assert result.clean
        assert cold.ast_hits == 0

        warm = LintCache(cache_dir)
        result = run([str(tmp_path / "codecs")], cache=warm)
        assert result.clean
        assert warm.ast_hits == 1
        assert warm.ast_misses == 0
        assert warm.graph_hit

    def test_edited_file_misses_and_reprimes(self, tmp_path):
        target = tmp_path / "codecs" / "a.py"
        write_tree(tmp_path, {"codecs/a.py": "def encode(f):\n    return f\n"})
        cache_dir = tmp_path / ".cache"
        run([str(tmp_path / "codecs")], cache=LintCache(cache_dir))

        target.write_text("def encode(f):\n    return f + 1\n")
        second = LintCache(cache_dir)
        run([str(tmp_path / "codecs")], cache=second)
        assert not second.graph_hit
        assert second.ast_hits == 0

        third = LintCache(cache_dir)
        run([str(tmp_path / "codecs")], cache=third)
        assert third.ast_hits == 1
        assert third.graph_hit

    def test_findings_identical_with_and_without_cache(self, tmp_path):
        files = dict(TestNondetTaintRule.TWO_HOP)
        write_tree(tmp_path, files)
        cache_dir = tmp_path / ".cache"
        uncached = run([str(tmp_path)])
        run([str(tmp_path)], cache=LintCache(cache_dir))     # prime
        cached = run([str(tmp_path)], cache=LintCache(cache_dir))
        strip = lambda fs: [(f.rule_id, f.module, f.line, f.message)
                            for f in fs]
        assert strip(cached.findings) == strip(uncached.findings)

    def test_corrupt_entry_degrades_to_miss(self, tmp_path):
        write_tree(tmp_path, {"codecs/a.py": "def f():\n    return 1\n"})
        cache_dir = tmp_path / ".cache"
        run([str(tmp_path / "codecs")], cache=LintCache(cache_dir))
        for entry in (cache_dir / "ast").iterdir():
            entry.write_bytes(b"not a pickle")
        rerun = LintCache(cache_dir)
        result = run([str(tmp_path / "codecs")], cache=rerun)
        assert result.clean
        assert rerun.ast_hits == 0


class TestChangedOnly:
    def test_scopes_module_rules_but_not_graph_rules(self, tmp_path):
        write_tree(tmp_path, dict(TestNondetTaintRule.TWO_HOP))
        write_tree(tmp_path, {"codecs/local.py": """
            import random

            def noisy():
                return random.random()
        """})
        # Pretend only an unrelated file changed: the local HDVB101 in
        # codecs/local.py is skipped, the interprocedural HDVB200 in
        # codecs/enc.py still fires because the graph stays whole-program.
        result = run([str(tmp_path)],
                     changed_modules={"codecs/enc.py", "util/jitter.py"})
        assert rule_ids(result) == ["HDVB200"]

    def test_unscoped_run_reports_both(self, tmp_path):
        write_tree(tmp_path, dict(TestNondetTaintRule.TWO_HOP))
        write_tree(tmp_path, {"codecs/local.py": """
            import random

            def noisy():
                return random.random()
        """})
        result = run([str(tmp_path)])
        assert sorted(rule_ids(result)) == ["HDVB101", "HDVB200"]


class TestPruneStale:
    def test_prune_preserves_live_entries_and_reasons(self, tmp_path, capsys):
        write_tree(tmp_path, {"codecs/dec.py": """
            def parse(v):
                raise ValueError(v)
        """})
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(json.dumps({
            "schema": "repro.analysis.baseline/1",
            "entries": [
                {"rule": "HDVB110", "module": "codecs/dec.py",
                 "message": "decode path raises builtin ValueError instead "
                            "of a ReproError subclass",
                 "reason": "live entry, keep me"},
                {"rule": "HDVB101", "module": "codecs/gone.py",
                 "message": "stale entry", "reason": "dead"},
            ],
        }, indent=2))
        code = lint_main([str(tmp_path), "--baseline", str(baseline_path),
                          "--prune-stale"])
        capsys.readouterr()
        assert code == 0
        pruned = load_baseline(baseline_path)
        assert len(pruned.entries) == 1
        assert pruned.entries[0].reason == "live entry, keep me"

    def test_prune_is_idempotent(self, tmp_path, capsys):
        write_tree(tmp_path, {"codecs/ok.py": "X = 1\n"})
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(json.dumps({
            "schema": "repro.analysis.baseline/1",
            "entries": [{"rule": "HDVB101", "module": "codecs/gone.py",
                         "message": "stale", "reason": "dead"}],
        }, indent=2))
        lint_main([str(tmp_path), "--baseline", str(baseline_path),
                   "--prune-stale"])
        first = baseline_path.read_bytes()
        lint_main([str(tmp_path), "--baseline", str(baseline_path),
                   "--prune-stale"])
        capsys.readouterr()
        assert baseline_path.read_bytes() == first


class TestGraphExport:
    def test_json_document_schema_and_determinism(self, tmp_path, capsys):
        write_tree(tmp_path, {"a.py": """
            def helper():
                return 1

            def entry(cb):
                cb()
                return helper()
        """})
        assert graph_main([str(tmp_path), "--format", "json"]) == 0
        first = capsys.readouterr().out
        document = json.loads(first)
        assert document["schema"] == GRAPH_SCHEMA
        assert ["a.py::entry", "a.py::helper"] in document["edges"]
        assert document["unresolved"]["count"] == 1
        assert graph_main([str(tmp_path), "--format", "json"]) == 0
        assert capsys.readouterr().out == first

    def test_dot_export_renders_clusters(self, tmp_path, capsys):
        write_tree(tmp_path, {"a.py": """
            def helper():
                return 1

            def entry():
                return helper()
        """})
        assert graph_main([str(tmp_path), "--format", "dot"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph hdvb_callgraph")
        assert '"a.py::entry" -> "a.py::helper";' in out


# ---------------------------------------------------------------------------
# self-lint gate


class TestSelfLintGraphTier:
    def test_graph_rules_clean_over_src(self):
        result = run([str(REPO_ROOT / "src")], baseline=empty_baseline(),
                     select=["HDVB200", "HDVB201", "HDVB202", "HDVB203"])
        assert result.findings == [], render_human(result.findings)

    def test_graph_resolves_every_module_under_src(self):
        units, _ = load_units([str(REPO_ROOT / "src")])
        project = Project(units=units)
        graph = project.graph()
        parsed = {unit.module for unit in units if unit.tree is not None}
        assert parsed == set(graph.modules)
        counts = graph.counts()
        assert counts["internal_calls"] > 1000
        assert counts["unresolved_calls"] > 0     # honesty, not omniscience
