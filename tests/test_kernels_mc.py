"""Behavioural tests for the motion-compensation/interpolation kernels."""

import numpy as np
import pytest


def gradient_plane(size: int = 32) -> np.ndarray:
    ys, xs = np.mgrid[0:size, 0:size]
    return (4 * xs + 2 * ys).astype(np.int64)


def random_plane(size: int = 32, seed: int = 0) -> np.ndarray:
    return np.random.default_rng(seed).integers(0, 256, (size, size)).astype(np.int64)


class TestHalfPel:
    def test_integer_mv_is_plain_copy(self, kernels):
        plane = random_plane()
        block = kernels.mc_halfpel(plane, 8, 8, 4, 4, 4, -2)
        assert np.array_equal(block, plane[7:11, 10:14])

    def test_horizontal_half_is_average(self, kernels):
        plane = random_plane(seed=1)
        block = kernels.mc_halfpel(plane, 8, 8, 4, 4, 1, 0)
        expected = (plane[8:12, 8:12] + plane[8:12, 9:13] + 1) >> 1
        assert np.array_equal(block, expected)

    def test_vertical_half_is_average(self, kernels):
        plane = random_plane(seed=2)
        block = kernels.mc_halfpel(plane, 8, 8, 4, 4, 0, 1)
        expected = (plane[8:12, 8:12] + plane[9:13, 8:12] + 1) >> 1
        assert np.array_equal(block, expected)

    def test_diagonal_half_four_tap(self, kernels):
        plane = random_plane(seed=3)
        block = kernels.mc_halfpel(plane, 8, 8, 2, 2, 1, 1)
        expected = (
            plane[8:10, 8:10] + plane[8:10, 9:11]
            + plane[9:11, 8:10] + plane[9:11, 9:11]
            + 2
        ) >> 2
        assert np.array_equal(block, expected)

    def test_constant_plane_invariant(self, kernels):
        plane = np.full((32, 32), 77, dtype=np.int64)
        for mv in ((1, 1), (3, -5), (0, 7)):
            block = kernels.mc_halfpel(plane, 10, 10, 8, 8, *mv)
            assert np.all(block == 77)


class TestQpelBilinear:
    def test_integer_positions(self, kernels):
        plane = random_plane(seed=4)
        block = kernels.mc_qpel_bilinear(plane, 8, 8, 4, 4, 8, -4)
        assert np.array_equal(block, plane[7:11, 10:14])

    def test_half_position_matches_halfpel(self, kernels):
        plane = random_plane(seed=5)
        qpel = kernels.mc_qpel_bilinear(plane, 8, 8, 4, 4, 2, 0)
        halfpel = kernels.mc_halfpel(plane, 8, 8, 4, 4, 1, 0)
        assert np.array_equal(qpel, halfpel)

    def test_quarter_on_gradient_is_exact(self, kernels):
        # Bilinear interpolation reproduces a linear ramp exactly.
        plane = gradient_plane()
        block = kernels.mc_qpel_bilinear(plane, 8, 8, 4, 4, 1, 0)
        expected = plane[8:12, 8:12] + 1  # 4*0.25 = 1 luma unit
        assert np.array_equal(block, expected)

    def test_constant_plane_invariant(self, kernels):
        plane = np.full((32, 32), 150, dtype=np.int64)
        for mvx in range(4):
            block = kernels.mc_qpel_bilinear(plane, 10, 10, 4, 4, mvx, 3)
            assert np.all(block == 150)


class TestQpelH264:
    def test_integer_positions(self, kernels):
        plane = random_plane(seed=6)
        block = kernels.mc_qpel_h264(plane, 10, 10, 4, 4, -8, 12)
        assert np.array_equal(block, plane[13:17, 8:12])

    def test_constant_plane_invariant_all_positions(self, kernels):
        plane = np.full((40, 40), 200, dtype=np.int64)
        for fy in range(4):
            for fx in range(4):
                block = kernels.mc_qpel_h264(plane, 16, 16, 4, 4, fx, fy)
                assert np.all(block == 200), (fx, fy)

    def test_output_clipped_to_pixel_range(self, kernels):
        # A harsh checkerboard can drive the six-tap filter out of range
        # before clipping.
        plane = np.zeros((40, 40), dtype=np.int64)
        plane[::2, ::2] = 255
        plane[1::2, 1::2] = 255
        for fx, fy in ((2, 0), (0, 2), (2, 2), (1, 3)):
            block = kernels.mc_qpel_h264(plane, 16, 16, 8, 8, fx, fy)
            assert np.all(block >= 0)
            assert np.all(block <= 255)

    def test_half_pel_is_six_tap(self, kernels):
        plane = random_plane(seed=7, size=40)
        block = kernels.mc_qpel_h264(plane, 16, 16, 1, 1, 2, 0)
        row = plane[16, 14:20]
        raw = row[0] - 5 * row[1] + 20 * row[2] + 20 * row[3] - 5 * row[4] + row[5]
        expected = min(255, max(0, (int(raw) + 16) >> 5))
        assert int(block[0, 0]) == expected

    def test_quarter_pel_averages_neighbours(self, kernels):
        plane = random_plane(seed=8, size=40)
        integer = kernels.mc_qpel_h264(plane, 16, 16, 4, 4, 0, 0)
        half = kernels.mc_qpel_h264(plane, 16, 16, 4, 4, 2, 0)
        quarter = kernels.mc_qpel_h264(plane, 16, 16, 4, 4, 1, 0)
        assert np.array_equal(quarter, (integer + half + 1) >> 1)


class TestChromaBilinear8:
    def test_integer_positions(self, kernels):
        plane = random_plane(seed=9)
        block = kernels.mc_chroma_bilinear8(plane, 8, 8, 4, 4, 16, -8)
        assert np.array_equal(block, plane[7:11, 10:14])

    def test_gradient_exact(self, kernels):
        plane = gradient_plane()
        block = kernels.mc_chroma_bilinear8(plane, 8, 8, 4, 4, 2, 0)
        expected = plane[8:12, 8:12] + 1  # 4 * 2/8 = 1
        assert np.array_equal(block, expected)

    def test_constant_plane_invariant(self, kernels):
        plane = np.full((24, 24), 99, dtype=np.int64)
        for mvx in range(8):
            block = kernels.mc_chroma_bilinear8(plane, 8, 8, 4, 4, mvx, 5)
            assert np.all(block == 99)


class TestGetBlockAndAverage:
    def test_get_block_copies(self, kernels):
        plane = random_plane(seed=10)
        block = kernels.get_block(plane, 4, 6, 8, 8)
        assert np.array_equal(block, plane[6:14, 4:12])
        block[0, 0] = -1
        assert plane[6, 4] != -1

    def test_average_rounds_up(self, kernels):
        a = np.array([[1]], dtype=np.int64)
        b = np.array([[2]], dtype=np.int64)
        assert int(kernels.average(a, b)[0, 0]) == 2
