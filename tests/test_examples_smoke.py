"""Smoke tests: the shipped examples must run end to end.

Only the fast examples are exercised (the full set is run manually /
in CI stages); each must complete without raising and print its headline
result.
"""

import importlib

import pytest


def run_example(name: str, capsys) -> str:
    module = importlib.import_module(f"examples.{name}")
    module.main()
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart", capsys)
        assert "generated blue_sky_576p25" in out
        assert "PSNR" in out

    def test_rate_control(self, capsys):
        out = run_example("rate_control", capsys)
        assert "controller trace" in out
        assert "target" in out

    def test_transcode(self, capsys):
        out = run_example("transcode", capsys)
        assert "bitrate saved by transcoding" in out
        assert "generation loss" in out
