"""Tests for the benchmark-observability subsystem (repro.observe)."""

import json
import multiprocessing
import os

import pytest

from repro.errors import ObserveError
from repro.observe import (
    DEFAULT_POLICIES,
    BenchRecord,
    GateConfig,
    HistoryStore,
    RunInfo,
    compare_runs,
    current_git_sha,
    detect_regressions,
    mad,
    median,
    metric_trend,
    new_run_id,
    records_document,
    records_from_document,
    render_openmetrics,
)
from repro.observe.cli import main as observe_main
from repro.observe.record import (
    DOCUMENT_SCHEMA,
    RECORD_SCHEMA,
    records_from_performance,
    records_from_table,
)
from repro.telemetry import MetricsRegistry, MetricsSnapshot


def record(run="run-000", bench="performance", fps=100.0, created=1000.0,
           **axes):
    axes = axes or {"codec": "mpeg2", "backend": "simd"}
    return BenchRecord(run_id=run, bench=bench, axes=axes,
                       metrics={"fps": fps}, created=created)


class TestBenchRecord:
    def test_round_trip(self):
        original = BenchRecord(
            run_id="run-1", bench="ratedistortion",
            axes={"codec": "h264", "sequence": "blue_sky"},
            metrics={"psnr_db": 39.5, "bitrate_kbps": 1200.0},
            created=1234.5, git_sha="abc123",
            context={"scale": "1/8", "frames": 9},
            parallel={"mode": "process", "workers": 4},
            telemetry={"schema": "repro.telemetry.metrics/1", "metrics": {}},
        )
        data = original.to_dict()
        assert data["schema"] == RECORD_SCHEMA
        assert BenchRecord.from_dict(data) == original
        # and survives an actual JSON wire trip
        assert BenchRecord.from_dict(json.loads(json.dumps(data))) == original

    def test_optional_attachments_omitted(self):
        data = record().to_dict()
        assert "parallel" not in data
        assert "telemetry" not in data

    def test_axis_key_is_sorted_and_stable(self):
        first = BenchRecord(run_id="r", bench="b",
                            axes={"b": 1, "a": "x"}, metrics={})
        second = BenchRecord(run_id="r", bench="b",
                             axes={"a": "x", "b": 1}, metrics={})
        assert first.axis_key == second.axis_key == "a=x|b=1"

    @pytest.mark.parametrize("bad", [
        dict(run_id=""), dict(bench=""),
        dict(metrics={"fps": float("nan")}),
        dict(metrics={"fps": float("inf")}),
        dict(metrics={"fps": "fast"}),
        dict(metrics={"fps": True}),
        dict(metrics={"": 1.0}),
        dict(axes={"codec": [1, 2]}),
        dict(context={"pid": object()}),
    ])
    def test_validation_rejects(self, bad):
        fields = dict(run_id="r", bench="performance",
                      axes={"codec": "mpeg2"}, metrics={"fps": 1.0})
        fields.update(bad)
        with pytest.raises(ObserveError):
            BenchRecord(**fields)

    def test_from_dict_rejects_wrong_schema(self):
        data = record().to_dict()
        data["schema"] = "something/else"
        with pytest.raises(ObserveError):
            BenchRecord.from_dict(data)

    def test_document_round_trip(self):
        records = [record(run="r1"), record(run="r1", bench="speedups",
                                            codec="h264", operation="decode")]
        document = records_document(records)
        assert document["schema"] == DOCUMENT_SCHEMA
        assert document["run_id"] == "r1"
        assert records_from_document(document) == records
        # a bare record is accepted too
        assert records_from_document(records[0].to_dict()) == [records[0]]

    def test_document_rejects_garbage(self):
        with pytest.raises(ObserveError):
            records_from_document({"schema": "nope"})
        with pytest.raises(ObserveError):
            records_from_document({"schema": DOCUMENT_SCHEMA, "records": 7})

    def test_run_ids_are_unique(self):
        assert new_run_id() != new_run_id()

    def test_current_git_sha_resolves_this_repo(self):
        sha = current_git_sha()
        assert len(sha) == 40
        assert all(ch in "0123456789abcdef" for ch in sha)

    def test_run_info_capture(self):
        info = RunInfo.capture(context={"frames": 3}, run_id="fixed-id")
        assert info.run_id == "fixed-id"
        assert info.created > 0
        assert info.context == {"frames": 3}

    def test_records_from_performance_attaches_telemetry(self):
        class Row:
            operation, backend = "encode", "simd"
            codec, sequence, resolution = "mpeg2", "blue_sky", "576p25"
            fps, real_time = 42.0, False

        info = RunInfo(run_id="r", created=1.0, git_sha="s")
        snapshot = {"schema": "repro.telemetry.metrics/1", "metrics": {}}
        built = records_from_performance([Row()], info, telemetry=snapshot)
        assert built[0].metrics == {"fps": 42.0, "real_time": 0.0}
        assert built[0].telemetry == snapshot

    def test_records_from_table_slugs_headers(self):
        info = RunInfo(run_id="r")
        built = records_from_table(
            "table1", ["Video applications", "fps"], [("a; b", 25)], info)
        assert built[0].axes == {"video_applications": "a; b", "fps": "25"}
        assert built[0].metrics == {}


def _append_worker(root, worker_index, count):
    store = HistoryStore(root)
    for i in range(count):
        store.append(record(run=f"w{worker_index}-{i:03d}",
                            fps=100.0 + worker_index, created=float(i)))


class TestHistoryStore:
    def test_append_load_round_trip(self, tmp_path):
        store = HistoryStore(tmp_path / "hist")
        assert not store.exists()
        assert store.load() == []
        first, second = record(run="r1"), record(run="r2", fps=90.0)
        store.append(first)
        store.append(second)
        assert store.load() == [first, second]
        assert store.run_ids() == ["r1", "r2"]
        assert store.benches() == ["performance"]

    def test_one_json_line_per_record(self, tmp_path):
        store = HistoryStore(tmp_path / "hist")
        store.append_many([record(run=f"r{i}") for i in range(3)])
        lines = store.path.read_text().splitlines()
        assert len(lines) == 3
        for line in lines:
            assert json.loads(line)["schema"] == RECORD_SCHEMA

    def test_malformed_lines_skipped_not_fatal(self, tmp_path):
        store = HistoryStore(tmp_path / "hist")
        store.append(record(run="good-1"))
        with open(store.path, "a", encoding="utf-8") as handle:
            handle.write("{torn line\n")
            handle.write('{"schema": "wrong/1"}\n')
        store.append(record(run="good-2"))
        loaded = store.load()
        assert [r.run_id for r in loaded] == ["good-1", "good-2"]
        assert store.skipped_lines == 2

    def test_query_by_bench_run_and_axes(self, tmp_path):
        store = HistoryStore(tmp_path / "hist")
        store.append(record(run="r1", codec="mpeg2", backend="simd"))
        store.append(record(run="r1", codec="h264", backend="simd"))
        store.append(record(run="r2", codec="mpeg2", backend="scalar"))
        store.append(BenchRecord(run_id="r2", bench="ratedistortion",
                                 axes={"codec": "mpeg2"},
                                 metrics={"psnr_db": 40.0}))
        assert len(store.query(bench="performance")) == 3
        assert len(store.query(run_id="r2")) == 2
        assert len(store.query(codec="mpeg2")) == 3
        only = store.query(bench="performance", codec="mpeg2", backend="simd")
        assert [r.run_id for r in only] == ["r1"]

    def test_history_and_latest_per_axis(self, tmp_path):
        store = HistoryStore(tmp_path / "hist")
        for run, fps in (("r1", 100.0), ("r2", 101.0), ("r3", 99.0)):
            store.append(record(run=run, fps=fps))
        store.append(record(run="r3", fps=50.0, codec="h264"))
        grouped = store.history_per_axis("performance")
        assert len(grouped) == 2
        key = ("performance", "backend=simd|codec=mpeg2")
        assert [r.run_id for r in grouped[key]] == ["r1", "r2", "r3"]
        assert store.latest_per_axis()[key].metrics["fps"] == 99.0

    def test_compact_keeps_newest_per_axis(self, tmp_path):
        store = HistoryStore(tmp_path / "hist")
        for i in range(10):
            store.append(record(run=f"a{i}", fps=float(i)))
        for i in range(3):
            store.append(record(run=f"b{i}", fps=float(i), codec="h264"))
        dropped = store.compact(keep_last=4)
        assert dropped == 6
        grouped = store.history_per_axis()
        lengths = sorted(len(h) for h in grouped.values())
        assert lengths == [3, 4]
        key = ("performance", "backend=simd|codec=mpeg2")
        assert [r.run_id for r in grouped[key]] == ["a6", "a7", "a8", "a9"]
        # idempotent once within budget
        assert store.compact(keep_last=4) == 0

    def test_compact_rejects_zero_budget(self, tmp_path):
        store = HistoryStore(tmp_path / "hist")
        store.append(record())
        with pytest.raises(ObserveError):
            store.compact(keep_last=0)

    def test_concurrent_writers_never_tear_lines(self, tmp_path):
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable")
        context = multiprocessing.get_context("fork")
        root = str(tmp_path / "hist")
        workers, per_worker = 4, 25
        processes = [
            context.Process(target=_append_worker, args=(root, i, per_worker))
            for i in range(workers)
        ]
        for process in processes:
            process.start()
        for process in processes:
            process.join()
            assert process.exitcode == 0
        store = HistoryStore(root)
        loaded = store.load()
        assert store.skipped_lines == 0
        assert len(loaded) == workers * per_worker
        run_ids = {r.run_id for r in loaded}
        assert len(run_ids) == workers * per_worker


def fill_axis(store, values, bench="performance", metric="fps", **axes):
    for i, value in enumerate(values):
        store.append(BenchRecord(
            run_id=f"run-{i:03d}", bench=bench, axes=axes or {"codec": "mpeg2"},
            metrics={metric: value}, created=float(i)))


class TestRegressionDetection:
    def test_planted_throughput_drop_flagged(self, tmp_path):
        store = HistoryStore(tmp_path / "hist")
        fill_axis(store, [100.0, 101.0, 99.5, 100.5, 100.2, 99.8, 80.0])
        findings = detect_regressions(store)
        assert [f.rule_id for f in findings] == ["OBS201"]
        assert "fps dropped" in findings[0].message
        assert "run-006" in findings[0].message

    def test_planted_psnr_drop_flagged(self, tmp_path):
        store = HistoryStore(tmp_path / "hist")
        fill_axis(store, [40.00, 40.01, 39.99, 40.02, 40.00, 39.80],
                  bench="ratedistortion", metric="psnr_db", codec="h264")
        findings = detect_regressions(store)
        assert [f.rule_id for f in findings] == ["OBS202"]

    def test_mad_level_noise_not_flagged(self, tmp_path):
        store = HistoryStore(tmp_path / "hist")
        # jittery axis: swings of ~8% are this axis's normal noise, and the
        # newest value sits inside the noise band
        fill_axis(store, [100.0, 92.0, 108.0, 95.0, 105.0, 93.0, 91.5])
        assert detect_regressions(store) == []
        # quiet axis: the same 0.05 dB move stays under the 0.1 dB policy
        fill_axis(store, [40.00, 40.01, 39.99, 40.02, 40.00, 39.95],
                  bench="ratedistortion", metric="psnr_db", codec="h264")
        assert detect_regressions(store, bench="ratedistortion") == []

    def test_bitrate_growth_threshold(self, tmp_path):
        store = HistoryStore(tmp_path / "hist")
        fill_axis(store, [1000.0, 1001.0, 999.0, 1000.5, 1000.0, 1030.0],
                  bench="ratedistortion", metric="bitrate_kbps")
        findings = detect_regressions(store)
        assert [f.rule_id for f in findings] == ["OBS203"]
        assert "grew" in findings[0].message
        # 1% growth stays under the 2% tolerance
        store2 = HistoryStore(tmp_path / "hist2")
        fill_axis(store2, [1000.0, 1001.0, 999.0, 1000.5, 1000.0, 1010.0],
                  bench="ratedistortion", metric="bitrate_kbps")
        assert detect_regressions(store2) == []

    def test_single_record_axes_have_no_baseline(self, tmp_path):
        store = HistoryStore(tmp_path / "hist")
        store.append(record(run="only", fps=10.0))
        assert detect_regressions(store) == []

    def test_detection_is_deterministic(self, tmp_path):
        store = HistoryStore(tmp_path / "hist")
        fill_axis(store, [100.0, 101.0, 99.5, 100.5, 100.2, 99.8, 80.0])
        fill_axis(store, [40.0, 40.0, 40.0, 40.0, 40.0, 39.5],
                  bench="ratedistortion", metric="psnr_db", codec="h264")
        first = detect_regressions(store)
        second = detect_regressions(store)
        assert first == second

    def test_with_thresholds_override(self, tmp_path):
        store = HistoryStore(tmp_path / "hist")
        fill_axis(store, [100.0, 100.0, 100.0, 100.0, 100.0, 95.0])
        assert detect_regressions(store) == []
        tight = GateConfig(mad_sigmas=0.0).with_thresholds(fps_drop=0.02)
        findings = detect_regressions(store, config=tight)
        assert [f.rule_id for f in findings] == ["OBS201"]

    def test_robustness_rate_policy(self, tmp_path):
        store = HistoryStore(tmp_path / "hist")
        fill_axis(store, [1.0, 1.0, 1.0, 1.0, 0.9],
                  bench="robustness", metric="graceful_rate", codec="mpeg2")
        findings = detect_regressions(store)
        assert [f.rule_id for f in findings] == ["OBS204"]

    def test_gate_config_validation(self):
        with pytest.raises(ObserveError):
            GateConfig(window=0)
        with pytest.raises(ObserveError):
            GateConfig(mad_sigmas=-1.0)

    def test_median_and_mad(self):
        assert median([3.0, 1.0, 2.0]) == 2.0
        assert median([1.0, 2.0, 3.0, 4.0]) == 2.5
        assert mad([1.0, 1.0, 1.0]) == 0.0
        assert mad([1.0, 2.0, 3.0, 100.0]) == pytest.approx(1.0)
        with pytest.raises(ObserveError):
            median([])

    def test_policy_table_covers_issue_metrics(self):
        by_metric = {policy.metric: policy for policy in DEFAULT_POLICIES}
        assert by_metric["fps"].threshold == pytest.approx(0.10)
        assert by_metric["psnr_db"].threshold == pytest.approx(0.1)
        assert by_metric["bitrate_kbps"].threshold == pytest.approx(0.02)

    def test_compare_and_trend(self, tmp_path):
        store = HistoryStore(tmp_path / "hist")
        fill_axis(store, [100.0, 90.0])
        rows = compare_runs(store, "run-000", "run-001")
        assert rows == [("performance", "codec=mpeg2", "fps", 100.0, 90.0)]
        series = metric_trend(store, "performance", "fps")
        assert series == {"codec=mpeg2": [("run-000", 100.0),
                                          ("run-001", 90.0)]}


class TestOpenMetricsExport:
    def test_exposition_shape(self):
        registry = MetricsRegistry()
        registry.counter("enc.calls").inc(7)
        registry.gauge("pool.workers").set(4)
        histogram = registry.histogram("chunk.bytes", buckets=(10.0, 100.0))
        for value in (5, 50, 500):
            histogram.observe(value)
        rec = BenchRecord(
            run_id="r", bench="performance",
            axes={"codec": "mpeg2", "note": 'quote " back \\ slash'},
            metrics={"fps": 123.5},
            telemetry=registry.snapshot().to_dict(),
        )
        text = render_openmetrics([rec])
        lines = text.splitlines()
        assert text.endswith("# EOF\n")
        assert lines.count("# EOF") == 1
        # every non-comment line is `name{labels} value` or `name value`
        for line in lines:
            if line.startswith("#"):
                continue
            name = line.split("{")[0].split(" ")[0]
            assert name, line
            assert " " in line
            float(line.rsplit(" ", 1)[1].replace("+Inf", "inf"))
        # counters expose _total, histograms cumulative buckets + count/sum
        assert any("hdvb_telemetry_enc_calls_total 7" in l for l in lines)
        bucket_lines = [l for l in lines if "_bucket" in l]
        assert 'hdvb_telemetry_chunk_bytes_bucket{le="10.0"} 1' in lines
        assert 'hdvb_telemetry_chunk_bytes_bucket{le="100.0"} 2' in lines
        assert 'hdvb_telemetry_chunk_bytes_bucket{le="+Inf"} 3' in lines
        assert len(bucket_lines) == 3
        assert "hdvb_telemetry_chunk_bytes_count 3" in lines
        # label escaping survived
        assert r'note="quote \" back \\ slash"' in text
        # each family has exactly one TYPE line
        type_lines = [l for l in lines if l.startswith("# TYPE ")]
        assert len(type_lines) == len({l.split()[2] for l in type_lines})

    def test_gauge_exports_high_water_mark(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("pool.workers")
        gauge.set(8)
        gauge.set(2)
        rec = BenchRecord(run_id="r", bench="performance",
                          axes={"codec": "x"}, metrics={},
                          telemetry=registry.snapshot().to_dict())
        text = render_openmetrics([rec])
        assert "hdvb_telemetry_pool_workers 2" in text
        assert 'hdvb_telemetry_pool_workers{aggregation="max"} 8' in text


class TestMetricsSnapshot:
    def test_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(5)
        registry.gauge("g").set(3)
        registry.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
        data = registry.snapshot().to_dict()
        rebuilt = MetricsRegistry.from_dict(data)
        assert rebuilt.snapshot().to_dict() == data

    def test_to_dict_is_a_deep_copy(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(1)
        data = registry.snapshot().to_dict()
        data["metrics"]["c"]["value"] = 999
        assert registry.snapshot().to_dict()["metrics"]["c"]["value"] == 1

    def test_from_dict_rejects_garbage(self):
        with pytest.raises(ValueError):
            MetricsSnapshot.from_dict({"schema": "nope", "metrics": {}})
        with pytest.raises(ValueError):
            MetricsSnapshot.from_dict(
                {"schema": "repro.telemetry.metrics/1",
                 "metrics": {"x": {"kind": "alien"}}})

    def test_histogram_percentiles(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", buckets=(1.0, 2.0, 4.0, 8.0))
        for value in (0.5, 1.5, 1.6, 3.0, 3.5, 7.0):
            histogram.observe(value)
        assert 0.0 < histogram.p50 <= 4.0
        assert histogram.p50 <= histogram.p95 <= histogram.p99 <= 8.0
        # overflow values report the last finite bound, not infinity
        histogram.observe(100.0)
        assert histogram.p99 == 8.0
        with pytest.raises(ValueError):
            histogram.percentile(1.5)
        empty = registry.histogram("empty", buckets=(1.0,))
        assert empty.p50 == 0.0


class TestObserveCli:
    def gate(self, store, *extra):
        return observe_main(["gate", "--store", str(store)] + list(extra))

    def test_gate_exit_codes(self, tmp_path, capsys):
        store_dir = tmp_path / "hist"
        # 2: no history at all
        assert self.gate(store_dir) == 2
        assert "no history" in capsys.readouterr().err
        # 0: healthy history
        store = HistoryStore(store_dir)
        fill_axis(store, [100.0, 100.5, 99.5, 100.0, 100.2, 100.1])
        assert self.gate(store_dir) == 0
        assert "no findings" in capsys.readouterr().out
        # 1: planted regression
        store.append(BenchRecord(run_id="run-bad", bench="performance",
                                 axes={"codec": "mpeg2"},
                                 metrics={"fps": 80.0}, created=99.0))
        assert self.gate(store_dir) == 1
        assert "OBS201" in capsys.readouterr().out

    def test_gate_output_is_bit_reproducible(self, tmp_path, capsys):
        store = HistoryStore(tmp_path / "hist")
        fill_axis(store, [100.0, 101.0, 99.5, 100.5, 100.2, 80.0])
        assert self.gate(tmp_path / "hist") == 1
        first = capsys.readouterr().out
        assert self.gate(tmp_path / "hist") == 1
        assert capsys.readouterr().out == first

    def test_gate_json_format(self, tmp_path, capsys):
        store = HistoryStore(tmp_path / "hist")
        fill_axis(store, [100.0, 100.0, 100.0, 100.0, 100.0, 70.0])
        assert self.gate(tmp_path / "hist", "--format", "json") == 1
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == "repro.analysis.findings/1"
        assert document["findings"][0]["rule"] == "OBS201"

    def test_gate_threshold_flags(self, tmp_path, capsys):
        store = HistoryStore(tmp_path / "hist")
        fill_axis(store, [100.0, 100.0, 100.0, 100.0, 100.0, 95.0])
        assert self.gate(tmp_path / "hist") == 0
        capsys.readouterr()
        assert self.gate(tmp_path / "hist", "--fps-drop", "0.02",
                         "--mad-sigmas", "0") == 1

    def test_record_ingests_documents(self, tmp_path, capsys):
        document = records_document([record(run="rX")])
        path = tmp_path / "doc.json"
        path.write_text(json.dumps(document))
        store_dir = tmp_path / "hist"
        assert observe_main(["record", "--store", str(store_dir),
                             str(path)]) == 0
        assert "appended 1 record(s)" in capsys.readouterr().err
        assert HistoryStore(store_dir).run_ids() == ["rX"]
        # --run-id override restamps every ingested record
        assert observe_main(["record", "--store", str(store_dir),
                             "--run-id", "rY", str(path)]) == 0
        assert HistoryStore(store_dir).run_ids() == ["rX", "rY"]

    def test_record_rejects_non_json(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("not json")
        assert observe_main(["record", "--store", str(tmp_path / "h"),
                             str(path)]) == 2
        assert "not JSON" in capsys.readouterr().err

    def test_compare_and_trend_cli(self, tmp_path, capsys):
        store = HistoryStore(tmp_path / "hist")
        fill_axis(store, [100.0, 90.0])
        assert observe_main(["compare", "--store",
                             str(tmp_path / "hist")]) == 0
        out = capsys.readouterr().out
        assert "run-000" in out and "run-001" in out and "-10.0%" in out
        assert observe_main(["trend", "--store", str(tmp_path / "hist"),
                             "--bench", "performance"]) == 0
        assert "codec=mpeg2" in capsys.readouterr().out
        assert observe_main(["trend", "--store", str(tmp_path / "hist"),
                             "--bench", "nope"]) == 2

    def test_export_cli(self, tmp_path, capsys):
        store = HistoryStore(tmp_path / "hist")
        fill_axis(store, [100.0])
        assert observe_main(["export", "--store", str(tmp_path / "hist")]) == 0
        out = capsys.readouterr().out
        assert out.endswith("# EOF\n")
        assert "hdvb_performance_fps" in out
        target = tmp_path / "metrics.prom"
        assert observe_main(["export", "--store", str(tmp_path / "hist"),
                             "--output", str(target)]) == 0
        assert target.read_text().endswith("# EOF\n")

    def test_compact_cli(self, tmp_path, capsys):
        store = HistoryStore(tmp_path / "hist")
        fill_axis(store, [float(i) for i in range(8)])
        assert observe_main(["compact", "--store", str(tmp_path / "hist"),
                             "--keep-last", "3"]) == 0
        assert "dropped 5" in capsys.readouterr().err
        assert len(HistoryStore(tmp_path / "hist").load()) == 3


class TestBenchCliIntegration:
    """--json / --record threaded through hdvb-bench."""

    def test_static_table_json(self, capsys):
        from repro.bench.cli import main as bench_main

        assert bench_main(["table1", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        records = records_from_document(document)
        assert len(records) == 6
        assert records[0].bench == "table1"
        assert records[0].axes["benchmark"] == "Mediabench I"

    def test_ratedistortion_alias_records_to_store(self, tmp_path, capsys,
                                                   monkeypatch):
        from repro.bench.cli import main as bench_main

        monkeypatch.chdir(tmp_path)
        args = ["ratedistortion", "--codecs", "mpeg2", "--sequences",
                "rush_hour", "--tiers", "576p25", "--scale", "1/16",
                "--frames", "2", "--runs", "1", "--json", "--record",
                "--store", str(tmp_path / "hist"), "--run-id", "ci-run"]
        assert bench_main(args) == 0
        captured = capsys.readouterr()
        document = json.loads(captured.out)
        assert document["run_id"] == "ci-run"
        store = HistoryStore(tmp_path / "hist")
        records = store.query(bench="ratedistortion", run_id="ci-run")
        assert records
        assert {"psnr_db", "bitrate_kbps"} <= set(records[0].metrics)
        assert "recorded" in captured.err

    def test_performance_record_attaches_telemetry(self, tmp_path, capsys):
        from repro.bench.cli import main as bench_main

        args = ["performance", "--codecs", "mpeg2", "--sequences",
                "rush_hour", "--tiers", "576p25", "--scale", "1/16",
                "--frames", "2", "--runs", "1", "--record",
                "--store", str(tmp_path / "hist")]
        assert bench_main(args) == 0
        capsys.readouterr()
        records = HistoryStore(tmp_path / "hist").query(bench="performance")
        assert records and records[0].telemetry is not None
        snapshot = MetricsSnapshot.from_dict(records[0].telemetry)
        assert snapshot["metrics"]
        assert len(records[0].git_sha) == 40


class TestRenderTableAlignment:
    def test_numeric_columns_right_aligned_above_1000(self):
        from repro.bench.report import render_table

        text = render_table(["codec", "fps"],
                            [("mpeg2", "1234.5"), ("h264", "9.8")])
        lines = text.splitlines()
        wide, narrow = lines[-2], lines[-1]
        # magnitude alignment: both values end at the same column
        assert wide.rstrip().endswith("1234.5")
        assert narrow.rstrip().endswith("9.8")
        assert len(wide.rstrip()) == len(narrow.rstrip())

    def test_text_columns_stay_left_aligned(self):
        from repro.bench.report import render_table

        text = render_table(["name", "comment"],
                            [("a", "first words"), ("bbbb", "x")])
        lines = text.splitlines()
        assert lines[-2].startswith("a    |")
        assert lines[-1].startswith("bbbb |")
