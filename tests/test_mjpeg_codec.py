"""Tests for the Motion-JPEG class extension codec."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.codecs import get_decoder, get_encoder
from repro.codecs.mjpeg import MjpegConfig, MjpegDecoder, MjpegEncoder
from repro.codecs.mjpeg import tables
from repro.codecs.mjpeg.coefficients import (
    decode_ac,
    decode_dc,
    encode_ac,
    encode_dc,
    read_amplitude,
    write_amplitude,
)
from repro.common.bitstream import BitReader, BitWriter
from repro.common.gop import FrameType
from repro.common.metrics import sequence_psnr
from repro.errors import ConfigError


class TestQuantMatrices:
    def test_quality_50_is_annex_k(self):
        assert np.array_equal(tables.scaled_matrix(tables.LUMA_MATRIX, 50),
                              tables.LUMA_MATRIX)

    def test_higher_quality_finer_steps(self):
        q50 = tables.scaled_matrix(tables.LUMA_MATRIX, 50)
        q90 = tables.scaled_matrix(tables.LUMA_MATRIX, 90)
        assert np.all(q90 <= q50)
        assert np.all(q90 >= 1)

    def test_lower_quality_coarser(self):
        q10 = tables.scaled_matrix(tables.LUMA_MATRIX, 10)
        assert np.all(q10 >= tables.LUMA_MATRIX)
        assert np.max(q10) <= 255

    def test_invalid_quality(self):
        with pytest.raises(ConfigError):
            tables.scaled_matrix(tables.LUMA_MATRIX, 0)
        with pytest.raises(ConfigError):
            tables.scaled_matrix(tables.LUMA_MATRIX, 101)

    def test_amplitude_size_categories(self):
        assert tables.amplitude_size(0) == 0
        assert tables.amplitude_size(1) == 1
        assert tables.amplitude_size(-1) == 1
        assert tables.amplitude_size(255) == 8
        assert tables.amplitude_size(-1024) == 11


class TestAmplitudeCoding:
    @given(st.integers(1, 11), st.integers(-2047, 2047))
    @settings(max_examples=80)
    def test_roundtrip(self, size, value):
        magnitude = abs(value)
        if magnitude == 0 or magnitude.bit_length() != size:
            value = (1 << (size - 1))  # force a value of the right category
        writer = BitWriter()
        write_amplitude(writer, value, tables.amplitude_size(value))
        writer.align()
        reader = BitReader(writer.to_bytes())
        assert read_amplitude(reader, tables.amplitude_size(value)) == value

    def test_negative_convention(self):
        # -1 in size 1 is the bit 0; +1 is the bit 1.
        writer = BitWriter()
        write_amplitude(writer, -1, 1)
        write_amplitude(writer, 1, 1)
        assert writer.to_bytes()[0] >> 6 == 0b01


class TestBlockCoding:
    def roundtrip(self, scanned):
        writer = BitWriter()
        encode_dc(writer, scanned[0])
        encode_ac(writer, scanned)
        writer.align()
        reader = BitReader(writer.to_bytes())
        dc = decode_dc(reader)
        decoded = decode_ac(reader)
        decoded[0] = dc
        return decoded

    def test_empty_block(self):
        assert self.roundtrip([0] * 64) == [0] * 64

    def test_zrl_long_runs(self):
        scanned = [0] * 64
        scanned[40] = 3  # needs two ZRL symbols
        assert self.roundtrip(scanned) == scanned

    def test_dense_block(self):
        scanned = [(-1) ** i * ((i % 7) + 1) for i in range(64)]
        assert self.roundtrip(scanned) == scanned

    @given(st.lists(st.integers(-1000, 1000), min_size=64, max_size=64))
    @settings(max_examples=60)
    def test_roundtrip_property(self, scanned):
        assert self.roundtrip(scanned) == scanned


class TestCodec:
    def encode(self, video, **overrides):
        fields = dict(width=video.width, height=video.height, quality=80)
        fields.update(overrides)
        encoder = MjpegEncoder(MjpegConfig(**fields))
        return encoder, encoder.encode_sequence(video)

    def test_roundtrip_quality(self, tiny_video):
        _, stream = self.encode(tiny_video)
        decoded = MjpegDecoder().decode(stream)
        assert sequence_psnr(tiny_video, decoded).y > 32.0

    def test_all_frames_intra(self, tiny_video):
        _, stream = self.encode(tiny_video)
        assert stream.frame_types()[FrameType.I] == len(tiny_video)

    def test_quality_monotone(self, tiny_video):
        _, low = self.encode(tiny_video, quality=30)
        _, high = self.encode(tiny_video, quality=90)
        assert high.total_bytes > low.total_bytes
        psnr_low = sequence_psnr(tiny_video, MjpegDecoder().decode(low)).y
        psnr_high = sequence_psnr(tiny_video, MjpegDecoder().decode(high)).y
        assert psnr_high > psnr_low

    def test_costs_more_than_hybrid_codecs(self, tiny_video):
        # Intra-only cannot exploit temporal redundancy: at comparable
        # quality it needs more bits than MPEG-2 on a moving sequence.
        _, mjpeg_stream = self.encode(tiny_video, quality=88)
        mpeg2 = get_encoder("mpeg2", width=tiny_video.width,
                            height=tiny_video.height, qscale=5)
        mpeg2_stream = mpeg2.encode_sequence(tiny_video)
        assert mjpeg_stream.total_bytes > mpeg2_stream.total_bytes

    def test_backend_bit_exact(self, tiny_video):
        _, scalar = self.encode(tiny_video, backend="scalar")
        _, simd = self.encode(tiny_video, backend="simd")
        assert all(a.payload == b.payload
                   for a, b in zip(scalar.pictures, simd.pictures))

    def test_registry_integration(self, tiny_video):
        from repro.codecs import EXTENSION_CODEC_NAMES

        assert "mjpeg" in EXTENSION_CODEC_NAMES
        encoder = get_encoder("mjpeg", width=tiny_video.width,
                              height=tiny_video.height, quality=70)
        stream = encoder.encode_sequence(tiny_video)
        decoded = get_decoder("mjpeg").decode(stream)
        assert len(decoded) == len(tiny_video)

    def test_invalid_quality_config(self):
        with pytest.raises(ConfigError):
            MjpegConfig(width=32, height=32, quality=0)

    def test_decode_is_deterministic(self, tiny_video):
        _, stream = self.encode(tiny_video)
        first = MjpegDecoder().decode(stream)
        second = MjpegDecoder().decode(stream)
        assert all(a == b for a, b in zip(first, second))
