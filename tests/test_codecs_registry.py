"""Tests for the codec registry and the public package API."""

import pytest

import repro
from repro.codecs import (
    CODEC_NAMES,
    get_config_class,
    get_decoder,
    get_encoder,
)
from repro.codecs.h264 import H264Encoder
from repro.codecs.mpeg2 import Mpeg2Encoder
from repro.codecs.mpeg4 import Mpeg4Encoder
from repro.errors import ConfigError


class TestRegistry:
    def test_table2_codecs(self):
        assert CODEC_NAMES == ("mpeg2", "mpeg4", "h264")

    def test_encoder_types(self):
        assert isinstance(get_encoder("mpeg2", width=32, height=32), Mpeg2Encoder)
        assert isinstance(get_encoder("mpeg4", width=32, height=32), Mpeg4Encoder)
        assert isinstance(get_encoder("h264", width=32, height=32), H264Encoder)

    def test_decoder_names_match(self):
        for codec in CODEC_NAMES:
            assert get_decoder(codec).codec_name == codec

    def test_config_classes(self):
        for codec in CODEC_NAMES:
            config = get_config_class(codec)(width=32, height=32)
            assert config.width == 32

    def test_codec_specific_fields(self):
        encoder = get_encoder("h264", width=32, height=32, qp=30, ref_frames=4)
        assert encoder.config.qp == 30
        assert encoder.config.ref_frames == 4
        encoder = get_encoder("mpeg4", width=32, height=32, qpel=False)
        assert not encoder.config.qpel

    def test_unknown_codec(self):
        with pytest.raises(ConfigError):
            get_encoder("vp9", width=32, height=32)
        with pytest.raises(ConfigError):
            get_decoder("av1")

    def test_extension_codecs_registered(self):
        from repro.codecs import EXTENSION_CODEC_NAMES

        assert EXTENSION_CODEC_NAMES == ("mjpeg", "vc1")
        for codec in EXTENSION_CODEC_NAMES:
            assert get_decoder(codec).codec_name == codec

    def test_unknown_backend(self):
        with pytest.raises(ConfigError):
            get_decoder("mpeg2", backend="avx512")


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_exports(self):
        for name in ("generate_sequence", "get_encoder", "get_decoder",
                     "sequence_psnr", "h264_qp_from_mpeg", "get_kernels",
                     "CODEC_NAMES", "SEQUENCE_NAMES", "BACKEND_NAMES"):
            assert hasattr(repro, name), name

    def test_quickstart_surface(self, tiny_video):
        stream = repro.get_encoder(
            "mpeg2", width=tiny_video.width, height=tiny_video.height
        ).encode_sequence(tiny_video)
        decoded = repro.get_decoder("mpeg2").decode(stream)
        psnr = repro.sequence_psnr(tiny_video, decoded)
        assert psnr.combined > 30.0
