"""Full-pipeline integration tests: generate -> encode -> file -> decode.

Exercises the same flow the paper's benchmark scripts run, for every codec,
including the transcoding chain the applications are meant to serve.
"""

import pytest

from repro import generate_sequence, get_decoder, get_encoder, sequence_psnr
from repro.codecs import CODEC_NAMES, container


@pytest.fixture(scope="module")
def clip():
    return generate_sequence("rush_hour", "576p25", frames=5, scale=(1, 8))


def fields_for(codec, video):
    fields = dict(width=video.width, height=video.height, search_range=4)
    if codec == "h264":
        fields["qp"] = 26
    else:
        fields["qscale"] = 5
    return fields


@pytest.mark.parametrize("codec", CODEC_NAMES)
class TestFilePipeline:
    def test_end_to_end_through_file(self, codec, clip, tmp_path):
        stream = get_encoder(codec, **fields_for(codec, clip)).encode_sequence(clip)
        path = tmp_path / f"{codec}.hdvb"
        container.write_file(path, stream)
        assert container.probe_codec(path) == codec
        loaded = container.read_file(path)
        decoded = get_decoder(codec).decode(loaded)
        psnr = sequence_psnr(clip, decoded)
        assert psnr.combined > 33.0

    def test_stream_survives_byte_roundtrip(self, codec, clip, tmp_path):
        stream = get_encoder(codec, **fields_for(codec, clip)).encode_sequence(clip)
        rebuilt = container.unpack(container.pack(stream))
        first = get_decoder(codec).decode(stream)
        second = get_decoder(codec).decode(rebuilt)
        assert all(a == b for a, b in zip(first, second))


class TestCodecOrdering:
    """DESIGN.md section 5 shape checks on a real sequence."""

    @pytest.fixture(scope="class")
    def streams(self, clip):
        return {
            codec: get_encoder(codec, **fields_for(codec, clip)).encode_sequence(clip)
            for codec in CODEC_NAMES
        }

    def test_bitrate_ordering(self, streams):
        assert streams["mpeg2"].total_bytes > streams["mpeg4"].total_bytes
        assert streams["mpeg4"].total_bytes > streams["h264"].total_bytes

    def test_quality_band(self, clip, streams):
        values = {
            codec: sequence_psnr(clip, get_decoder(codec).decode(stream)).combined
            for codec, stream in streams.items()
        }
        assert max(values.values()) - min(values.values()) < 5.0

    def test_riverbed_needs_more_bits_than_rush_hour(self):
        riverbed = generate_sequence("riverbed", "576p25", frames=5, scale=(1, 8))
        rush = generate_sequence("rush_hour", "576p25", frames=5, scale=(1, 8))
        for codec in CODEC_NAMES:
            hard = get_encoder(codec, **fields_for(codec, riverbed)).encode_sequence(riverbed)
            easy = get_encoder(codec, **fields_for(codec, rush)).encode_sequence(rush)
            assert hard.total_bytes > 2 * easy.total_bytes


class TestTranscode:
    def test_mpeg2_to_h264_transcode(self, clip):
        mpeg2 = get_encoder("mpeg2", **fields_for("mpeg2", clip)).encode_sequence(clip)
        intermediate = get_decoder("mpeg2").decode(mpeg2)
        h264 = get_encoder("h264", **fields_for("h264", intermediate)).encode_sequence(intermediate)
        final = get_decoder("h264").decode(h264)
        assert h264.total_bytes < mpeg2.total_bytes
        # Generation loss is bounded: still watchable quality.
        assert sequence_psnr(clip, final).combined > 30.0
