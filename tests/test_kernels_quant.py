"""Behavioural tests for the quantiser kernels."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels.tables import (
    MPEG_INTER_MATRIX,
    MPEG_INTRA_DC_SCALER,
    MPEG_INTRA_MATRIX,
)


def coeff_blocks(size: int, bound: int):
    return st.lists(
        st.lists(st.integers(-bound, bound), min_size=size, max_size=size),
        min_size=size,
        max_size=size,
    ).map(lambda rows: np.array(rows, dtype=np.int64))


class TestMpegQuant:
    def test_zero_stays_zero(self, kernels):
        zero = np.zeros((8, 8), dtype=np.int64)
        for intra in (True, False):
            matrix = MPEG_INTRA_MATRIX if intra else MPEG_INTER_MATRIX
            assert not np.any(kernels.quant_mpeg(zero, matrix, 5, intra))
            assert not np.any(kernels.dequant_mpeg(zero, matrix, 5, intra))

    def test_intra_dc_scaler(self, kernels):
        coeffs = np.zeros((8, 8), dtype=np.int64)
        coeffs[0, 0] = 800
        levels = kernels.quant_mpeg(coeffs, MPEG_INTRA_MATRIX, 5, True)
        assert int(levels[0, 0]) == 800 // MPEG_INTRA_DC_SCALER
        rebuilt = kernels.dequant_mpeg(levels, MPEG_INTRA_MATRIX, 5, True)
        assert int(rebuilt[0, 0]) == 800

    @given(coeff_blocks(8, 2000), st.integers(1, 31))
    @settings(max_examples=25)
    def test_intra_reconstruction_error_bounded(self, coeffs, qscale):
        from repro.kernels import get_kernels

        kernels = get_kernels("simd")
        levels = kernels.quant_mpeg(coeffs, MPEG_INTRA_MATRIX, qscale, True)
        rebuilt = kernels.dequant_mpeg(levels, MPEG_INTRA_MATRIX, qscale, True)
        # Error bounded by one quantisation step per coefficient.
        step = MPEG_INTRA_MATRIX * qscale // 8 + 2
        step[0, 0] = MPEG_INTRA_DC_SCALER
        assert np.all(np.abs(rebuilt - coeffs) <= step)

    def test_inter_has_dead_zone(self, kernels):
        # Small coefficients vanish under the truncating inter quantiser.
        coeffs = np.full((8, 8), 3, dtype=np.int64)
        levels = kernels.quant_mpeg(coeffs, MPEG_INTER_MATRIX, 5, False)
        assert not np.any(levels)

    def test_sign_symmetry(self, kernels):
        rng = np.random.default_rng(0)
        coeffs = rng.integers(-500, 500, (8, 8)).astype(np.int64)
        plus = kernels.quant_mpeg(coeffs, MPEG_INTER_MATRIX, 7, False)
        minus = kernels.quant_mpeg(-coeffs, MPEG_INTER_MATRIX, 7, False)
        assert np.array_equal(plus, -minus)

    def test_levels_clamped(self, kernels):
        coeffs = np.full((8, 8), 2047 * 50, dtype=np.int64)
        levels = kernels.quant_mpeg(coeffs, MPEG_INTER_MATRIX, 1, False)
        assert np.max(levels) <= 2047


class TestH263Quant:
    def test_higher_qp_means_fewer_levels(self, kernels):
        rng = np.random.default_rng(1)
        coeffs = rng.integers(-200, 200, (8, 8)).astype(np.int64)
        counts = [
            int(np.count_nonzero(kernels.quant_h263(coeffs, qp, False)))
            for qp in (2, 8, 20)
        ]
        assert counts[0] >= counts[1] >= counts[2]

    def test_intra_dc_path(self, kernels):
        coeffs = np.zeros((8, 8), dtype=np.int64)
        coeffs[0, 0] = 1024
        levels = kernels.quant_h263(coeffs, 5, True)
        assert int(levels[0, 0]) == 128
        rebuilt = kernels.dequant_h263(levels, 5, True)
        assert int(rebuilt[0, 0]) == 1024

    def test_inter_reconstructs_at_bin_centre(self, kernels):
        qp = 5
        coeffs = np.zeros((8, 8), dtype=np.int64)
        coeffs[0, 1] = 25  # level = 2*25 // 20 = 2
        levels = kernels.quant_h263(coeffs, qp, False)
        assert int(levels[0, 1]) == 2
        rebuilt = kernels.dequant_h263(levels, qp, False)
        # (2*level + 1) * step / 2 with step = 2*qp: (5 * 10) // 2 = 25.
        assert int(rebuilt[0, 1]) == 25

    @given(coeff_blocks(8, 2000), st.integers(1, 31), st.booleans())
    @settings(max_examples=25)
    def test_reconstruction_error_bounded(self, coeffs, qp, intra):
        from repro.kernels import get_kernels

        kernels = get_kernels("simd")
        levels = kernels.quant_h263(coeffs, qp, intra)
        rebuilt = kernels.dequant_h263(levels, qp, intra)
        bound = np.full((8, 8), 2 * qp + 2, dtype=np.int64)
        if intra:
            bound[0, 0] = MPEG_INTRA_DC_SCALER
        assert np.all(np.abs(rebuilt - coeffs) <= bound)


class TestH264Quant:
    def test_zero_block(self, kernels):
        zero = np.zeros((4, 4), dtype=np.int64)
        assert not np.any(kernels.quant_h264_4x4(zero, 26, True))
        assert not np.any(kernels.dequant_h264_4x4(zero, 26))

    def test_qp_plus_six_doubles_step(self, kernels):
        coeffs = np.full((4, 4), 4096, dtype=np.int64)
        low = kernels.quant_h264_4x4(coeffs, 20, False)
        high = kernels.quant_h264_4x4(coeffs, 26, False)
        # Doubling the step halves the level (within rounding).
        assert np.all(np.abs(low - 2 * high) <= 1)

    def test_dequant_scales_with_qp_div_6(self, kernels):
        levels = np.ones((4, 4), dtype=np.int64)
        base = kernels.dequant_h264_4x4(levels, 20)
        shifted = kernels.dequant_h264_4x4(levels, 26)
        assert np.array_equal(shifted, 2 * base)

    def test_intra_rounding_larger_than_inter(self, kernels):
        # f = qbits/3 intra vs qbits/6 inter: borderline values quantise
        # to a level intra but to zero inter.
        coeffs = np.zeros((4, 4), dtype=np.int64)
        coeffs[0, 0] = 1800  # MF=13107 at qp 26 -> scaled near threshold
        qp = 26
        intra = kernels.quant_h264_4x4(coeffs, qp, True)
        inter = kernels.quant_h264_4x4(coeffs, qp, False)
        assert int(intra[0, 0]) >= int(inter[0, 0])

    def test_dc4_roundtrip_scale(self, kernels):
        # The dequantised DC is at pre-inverse-transform scale, which for
        # the whole pipeline is ~4x the input (same scale the AC path
        # produces: dequant(quant(c)) ~ 4c at any QP).
        dc = np.full((4, 4), 640, dtype=np.int64)
        transformed = kernels.hadamard4_forward(dc)
        levels = kernels.quant_h264_dc4(transformed, 26, True)
        rebuilt = kernels.dequant_h264_dc4(levels, 26)
        assert np.all(np.abs(rebuilt - 4 * dc) <= 4 * 52)  # within one step

    def test_dc4_low_qp_branch(self, kernels):
        # qp < 12 exercises the rounding-shift dequant path.
        dc = np.full((4, 4), 640, dtype=np.int64)
        transformed = kernels.hadamard4_forward(dc)
        levels = kernels.quant_h264_dc4(transformed, 6, True)
        rebuilt = kernels.dequant_h264_dc4(levels, 6)
        assert np.all(np.abs(rebuilt - 4 * dc) <= 4 * 16)

    def test_ac_dequant_scale_is_4x_at_any_qp(self, kernels):
        # Position class a (the DC position) has MF*V ~ 2^17, so the
        # quant+dequant pipeline gain is ~4x at every QP; other classes
        # differ by the basis norms the inverse transform compensates.
        coeffs = np.zeros((4, 4), dtype=np.int64)
        coeffs[0, 0] = 4096
        for qp in (0, 11, 26, 40):
            levels = kernels.quant_h264_4x4(coeffs, qp, True)
            rebuilt = kernels.dequant_h264_4x4(levels, qp)
            assert abs(int(rebuilt[0, 0]) - 4 * 4096) <= 4096 // 4

    def test_dc2_roundtrip(self, kernels):
        dc = np.array([[400, 360], [380, 420]], dtype=np.int64)
        transformed = kernels.hadamard2(dc)
        levels = kernels.quant_h264_dc2(transformed, 26, True)
        rebuilt = kernels.dequant_h264_dc2(levels, 26)
        # Inverse Hadamard scale is 4: the rebuilt values approximate 4*dc
        # after the transform pair; compare against the re-derived DCs.
        recovered = kernels.hadamard2(rebuilt)  # undo structure for sanity
        assert recovered.shape == (2, 2)
