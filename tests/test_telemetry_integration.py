"""Integration tests: telemetry wired through the codec stack.

Covers the instrumented seams (encoder/decoder base classes, the decode
engine, kernel dispatch, motion search, parallel chunks) and the two
front ends (``hdvb-bench performance --trace``, ``hdvb-player --stats``).
"""

from __future__ import annotations

import time

import pytest

import repro.telemetry as telemetry
from repro.codecs import get_decoder, get_encoder
from repro.kernels import get_kernels
from repro.parallel import parallel_encode
from repro.robustness import FaultInjector
from repro.telemetry.instrument import InstrumentedKernels
from tests.conftest import make_moving_sequence
from tests.test_telemetry import load_check_trace


@pytest.fixture(autouse=True)
def clean_telemetry():
    telemetry.disable()
    telemetry.reset()
    yield
    telemetry.disable()
    telemetry.reset()


@pytest.fixture(scope="module")
def video():
    return make_moving_sequence(width=48, height=32, frames=6, dx=1, dy=0, seed=3)


def encode(codec, video, **extra):
    fields = dict(width=video.width, height=video.height, search_range=4)
    fields.update(extra)
    encoder = get_encoder(codec, **fields)
    return encoder.encode_sequence(video)


# ---------------------------------------------------------------------------
# codec seams
# ---------------------------------------------------------------------------

class TestCodecSeams:
    def test_disabled_leaves_no_trace_or_metrics(self, video):
        stream = encode("mpeg2", video, qscale=5)
        get_decoder("mpeg2").decode(stream)
        assert len(telemetry.current_trace()) == 0
        assert len(telemetry.registry()) == 0

    def test_encode_records_spans_and_counters(self, video):
        telemetry.enable()
        stream = encode("mpeg2", video, qscale=5)
        telemetry.disable()
        trace = telemetry.current_trace()
        (sequence_span,) = trace.spans("mpeg2.encode")
        assert sequence_span.attrs["frames"] == len(video)
        picture_spans = trace.spans("mpeg2.encode.picture")
        assert len(picture_spans) == len(video)
        assert all(s.parent_id == sequence_span.span_id for s in picture_spans)
        frame_types = {s.attrs["frame_type"] for s in picture_spans}
        assert "I" in frame_types
        reg = telemetry.registry()
        assert reg.value("encode.mpeg2.pictures") == len(video)
        assert reg.value("encode.mpeg2.bits") == 8 * stream.total_bytes
        assert reg.value("me.search.calls") > 0
        assert reg.value("me.search.points") >= reg.value("me.search.calls")
        assert reg.value("kernels.simd.fdct8.calls") > 0

    def test_picture_spans_account_for_most_of_encode_wall(self, video):
        """The acceptance gate: the stage table explains the encode time."""
        telemetry.enable()
        start = time.perf_counter()
        encode("mpeg2", video, qscale=5)
        wall = time.perf_counter() - start
        telemetry.disable()
        assert telemetry.coverage(telemetry.current_trace(), wall) >= 0.90

    def test_decode_records_spans_and_counters(self, video):
        stream = encode("h264", video, qp=26)
        telemetry.enable()
        get_decoder("h264").decode(stream)
        telemetry.disable()
        trace = telemetry.current_trace()
        assert len(trace.spans("h264.decode")) == 1
        picture_spans = trace.spans("h264.decode.picture")
        assert len(picture_spans) == stream.frame_count
        displays = sorted(s.attrs["display_index"] for s in picture_spans)
        assert displays == list(range(len(video)))
        assert telemetry.registry().value("decode.h264.pictures") == stream.frame_count

    def test_every_codec_emits_picture_spans(self, video):
        for codec, extra in (("mpeg2", {"qscale": 5}), ("mpeg4", {"qscale": 5}),
                             ("h264", {"qp": 26}), ("mjpeg", {"quality": 80}),
                             ("vc1", {"qscale": 5})):
            telemetry.reset()
            telemetry.enable()
            encode(codec, video, **extra)
            telemetry.disable()
            assert len(telemetry.current_trace().spans(f"{codec}.encode")) == 1, codec
            assert len(telemetry.current_trace().spans(f"{codec}.encode.picture")) > 0, codec

    def test_concealment_events_are_counted_and_tagged(self, video):
        stream = encode("mpeg2", video, qscale=5)
        corrupted, fault = FaultInjector(seed=7).inject(stream, model="truncate")
        telemetry.enable()
        get_decoder("mpeg2").decode(corrupted, conceal="copy-last")
        telemetry.disable()
        reg = telemetry.registry()
        assert reg.value("decode.concealments") >= 1
        assert reg.value("decode.mpeg2.concealments") == reg.value("decode.concealments")
        concealed = [s for s in telemetry.current_trace().spans("mpeg2.decode.picture")
                     if "concealed" in s.attrs]
        assert concealed and all(s.attrs["concealed"] == "copy-last" for s in concealed)
        assert all("error" in s.attrs for s in concealed)

    def test_strict_decode_failure_closes_span_with_error(self, video):
        stream = encode("mpeg2", video, qscale=5)
        corrupted, _ = FaultInjector(seed=7).inject(stream, model="truncate")
        telemetry.enable()
        with pytest.raises(Exception):
            get_decoder("mpeg2").decode(corrupted)
        telemetry.disable()
        spans = telemetry.current_trace().spans("mpeg2.decode.picture")
        assert spans, "failed picture span must still be recorded"
        assert any("error" in s.attrs for s in spans)


# ---------------------------------------------------------------------------
# kernel dispatch
# ---------------------------------------------------------------------------

class TestKernelDispatch:
    def test_disabled_returns_shared_raw_backend(self):
        assert get_kernels("simd") is get_kernels("simd")
        assert not isinstance(get_kernels("simd"), InstrumentedKernels)

    def test_enabled_wraps_and_counts_per_backend(self):
        import numpy as np

        telemetry.enable()
        kernels = get_kernels("scalar")
        telemetry.disable()
        assert isinstance(kernels, InstrumentedKernels)
        a = np.arange(16, dtype=np.int64).reshape(4, 4)
        assert kernels.sad(a, a) == 0
        assert telemetry.registry().value("kernels.scalar.sad.calls") == 1
        from repro.kernels.api import implements_kernel_api

        assert implements_kernel_api(kernels)

    def test_instrumented_backend_is_bit_exact(self, video):
        stream_plain = encode("mpeg2", video, qscale=5)
        telemetry.enable()
        stream_traced = encode("mpeg2", video, qscale=5)
        telemetry.disable()
        assert [p.payload for p in stream_plain.pictures] == \
               [p.payload for p in stream_traced.pictures]


# ---------------------------------------------------------------------------
# parallel encode
# ---------------------------------------------------------------------------

class BrokenExecutorFactory:
    """An executor factory that always fails to build a pool."""

    def __init__(self):
        self.calls = 0

    def __call__(self, max_workers):
        self.calls += 1
        raise OSError("no processes for you")


class TestParallelTelemetry:
    def fields(self, video):
        return dict(width=video.width, height=video.height,
                    qscale=5, search_range=4)

    def test_stats_dict_carries_chunk_wall_times(self, video):
        stream, stats = parallel_encode("mpeg2", video, workers=1, chunks=2,
                                        return_stats=True, **self.fields(video))
        assert stats["mode"] == "serial"
        assert stats["retries"] == 0 and stats["fallback"] is False
        assert len(stats["chunks"]) == 2
        for chunk in stats["chunks"]:
            assert chunk["seconds"] > 0
            assert chunk["frames"] == chunk["span"][1] - chunk["span"][0]
            assert chunk["pictures"] == chunk["frames"]
        assert stats["encode_seconds"] == pytest.approx(
            sum(c["seconds"] for c in stats["chunks"]))
        total_bytes = sum(c["bytes"] for c in stats["chunks"])
        assert total_bytes == stream.total_bytes

    def test_default_return_shape_unchanged(self, video):
        stream = parallel_encode("mpeg2", video, workers=1, chunks=2,
                                 **self.fields(video))
        assert hasattr(stream, "pictures")

    def test_workers_ship_registry_snapshots_to_parent(self, video):
        telemetry.enable()
        stream, stats = parallel_encode("mpeg2", video, workers=2, chunks=2,
                                        return_stats=True, **self.fields(video))
        telemetry.disable()
        reg = telemetry.registry()
        # Worker-side counters crossed the process boundary and merged.
        assert reg.value("encode.mpeg2.pictures") == len(video)
        assert reg.value("me.search.calls") > 0
        assert reg.value("parallel.chunks") == 2
        assert reg.get("parallel.chunk_seconds").count == 2
        assert len(telemetry.current_trace().spans("parallel.encode")) == 1

    def test_serial_fallback_keeps_timing_and_counts_events(self, video):
        factory = BrokenExecutorFactory()
        telemetry.enable()
        with pytest.warns(RuntimeWarning):
            stream, stats = parallel_encode(
                "mpeg2", video, workers=2, chunks=2, return_stats=True,
                executor_factory=factory, **self.fields(video))
        telemetry.disable()
        assert factory.calls == 2
        assert stats["mode"] == "pool-fallback-serial"
        assert stats["fallback"] is True
        assert stats["retries"] == 2
        assert len(stats["failures"]) == 2
        # The fallback path still times every chunk.
        assert all(chunk["seconds"] > 0 for chunk in stats["chunks"])
        reg = telemetry.registry()
        assert reg.value("parallel.retries") == 2
        assert reg.value("parallel.fallbacks") == 1
        assert reg.value("encode.mpeg2.pictures") == len(video)


# ---------------------------------------------------------------------------
# front ends
# ---------------------------------------------------------------------------

class TestFrontEnds:
    BENCH_ARGS = ["--codecs", "mpeg2", "--sequences", "blue_sky",
                  "--tiers", "576p25", "--scale", "1/16", "--frames", "3",
                  "--runs", "1"]

    def test_bench_performance_prints_stage_breakdown(self, capsys):
        from repro.bench.cli import main

        assert main(["performance"] + self.BENCH_ARGS) == 0
        out = capsys.readouterr().out
        assert "Telemetry: stage profile" in out
        assert "mpeg2.encode.picture" in out
        assert "Stage coverage" in out
        assert "me.search.points" in out

    @pytest.mark.parametrize("fmt", ["chrome", "json"])
    def test_bench_performance_trace_export_validates(self, tmp_path, fmt, capsys):
        from repro.bench.cli import main

        path = tmp_path / f"trace-{fmt}.json"
        args = ["performance", "--trace", str(path), "--trace-format", fmt]
        assert main(args + self.BENCH_ARGS) == 0
        capsys.readouterr()
        check_trace = load_check_trace()
        assert "valid" in check_trace.validate_trace_file(str(path))

    def _write_stream(self, tmp_path, video):
        from repro.codecs import container

        stream = encode("mpeg2", video, qscale=5)
        path = tmp_path / "clip.hdvb"
        container.write_file(str(path), stream)
        return path

    def test_player_stats_prints_per_frame_table(self, tmp_path, video, capsys):
        from repro.player.cli import player_main

        path = self._write_stream(tmp_path, video)
        assert player_main([str(path), "--stats"]) == 0
        out = capsys.readouterr().out
        assert "STATS: per-frame decode" in out
        assert "decode ms" in out
        assert f"{len(video)} pictures decoded" in out
        assert "0 concealment event(s)" in out

    def test_player_stats_reports_concealments(self, tmp_path, video, capsys):
        from repro.player.cli import player_main

        path = self._write_stream(tmp_path, video)
        code = player_main([str(path), "--inject", "truncate:7",
                            "--conceal", "copy-last", "--stats"])
        assert code == 0
        out = capsys.readouterr().out
        assert "copy-last" in out
        assert "concealment event(s)" in out
        assert "0 concealment event(s)" not in out
