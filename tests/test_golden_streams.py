"""Golden-stream regression tests: the bitstream formats are frozen.

A fixed input must always produce byte-identical streams.  If one of these
hashes changes, the on-disk format changed: decoders shipped against the
old format can no longer read new streams, so the change must be
deliberate (bump ``repro.codecs.container.VERSION`` and re-record the
hashes with the helper at the bottom).
"""

import hashlib

import pytest

from repro.codecs import container, get_decoder, get_encoder
from repro.common.metrics import sequence_psnr
from tests.conftest import make_moving_sequence

GOLDEN = {
    "mpeg2": ("18c7010b25865ba5c0b7355d740a639056e2ca2076900cd730589c13444cc8c9", 1292),
    "mpeg4": ("680839efbd276c809a339dca32232541f8fadb69d8fad1a5dfcb4d33b33faa57", 998),
    "h264": ("a2cc6d3ff3f024087aa484101302a5321ea17151321c08cfd4bebb0e7d2b163d", 610),
    "mjpeg": ("b64a9f423601edf3c5d29c032237b5ba116356925eb67db356717925955bc0ab", 1865),
}

FIELDS = {
    "mpeg2": dict(qscale=5),
    "mpeg4": dict(qscale=5),
    "h264": dict(qp=26),
    "mjpeg": dict(quality=80),
}


def golden_input():
    return make_moving_sequence(width=32, height=32, frames=4, dx=1, dy=1, seed=42)


def encode(codec):
    video = golden_input()
    encoder = get_encoder(codec, width=32, height=32, search_range=4, **FIELDS[codec])
    return container.pack(encoder.encode_sequence(video))


@pytest.mark.parametrize("codec", sorted(GOLDEN))
class TestGolden:
    def test_stream_hash_stable(self, codec):
        data = encode(codec)
        digest = hashlib.sha256(data).hexdigest()
        expected_digest, expected_size = GOLDEN[codec]
        stream = container.unpack(data)
        assert stream.total_bytes == expected_size
        assert digest == expected_digest, (
            f"{codec} bitstream format changed "
            f"(size {len(data)}); see module docstring"
        )

    def test_golden_stream_decodes(self, codec):
        stream = container.unpack(encode(codec))
        decoded = get_decoder(codec).decode(stream)
        psnr = sequence_psnr(golden_input(), decoded)
        assert psnr.combined > 33.0


def regenerate():  # pragma: no cover - maintenance helper
    """Print fresh golden values after a deliberate format change."""
    for codec in sorted(GOLDEN):
        data = encode(codec)
        stream = container.unpack(data)
        print(f'    "{codec}": ("{hashlib.sha256(data).hexdigest()}", '
              f"{stream.total_bytes}),")


if __name__ == "__main__":  # pragma: no cover
    regenerate()
