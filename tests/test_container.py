"""Tests for the HDVB container."""

import pytest

from repro.codecs import container
from repro.codecs.base import EncodedPicture, EncodedVideo
from repro.common.gop import FrameType
from repro.errors import BitstreamError


def sample_stream() -> EncodedVideo:
    stream = EncodedVideo(codec="mpeg2", width=96, height=80, fps=25)
    stream.pictures.append(EncodedPicture(b"\x01\x02\x03", 0, FrameType.I))
    stream.pictures.append(EncodedPicture(b"\x04" * 10, 3, FrameType.P))
    stream.pictures.append(EncodedPicture(b"", 1, FrameType.B))
    return stream


class TestPackUnpack:
    def test_roundtrip(self):
        stream = sample_stream()
        rebuilt = container.unpack(container.pack(stream))
        assert rebuilt.codec == "mpeg2"
        assert (rebuilt.width, rebuilt.height, rebuilt.fps) == (96, 80, 25)
        assert len(rebuilt.pictures) == 3
        for original, copy in zip(stream.pictures, rebuilt.pictures):
            assert copy.payload == original.payload
            assert copy.display_index == original.display_index
            assert copy.frame_type == original.frame_type

    def test_empty_payload_allowed(self):
        rebuilt = container.unpack(container.pack(sample_stream()))
        assert rebuilt.pictures[2].payload == b""

    def test_magic_checked(self):
        with pytest.raises(BitstreamError):
            container.unpack(b"XXXX" + b"\x00" * 20)

    def test_truncation_detected(self):
        data = container.pack(sample_stream())
        with pytest.raises(BitstreamError):
            container.unpack(data[:-3])

    def test_trailing_garbage_detected(self):
        data = container.pack(sample_stream())
        with pytest.raises(BitstreamError):
            container.unpack(data + b"\x00")

    def test_bad_version(self):
        data = bytearray(container.pack(sample_stream()))
        data[4] = 99
        with pytest.raises(BitstreamError):
            container.unpack(bytes(data))

    def test_bad_frame_type(self):
        stream = sample_stream()
        data = bytearray(container.pack(stream))
        # Frame type byte of the first picture: magic(4)+ver(1)+len(1)+
        # codec(5)+dims(5)+count(4)+display(4) = offset 24.
        data[24] = 9
        with pytest.raises(BitstreamError):
            container.unpack(bytes(data))

    def test_invalid_codec_name(self):
        stream = sample_stream()
        stream.codec = ""
        with pytest.raises(BitstreamError):
            container.pack(stream)


class TestFiles:
    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "clip.hdvb"
        stream = sample_stream()
        written = container.write_file(path, stream)
        assert path.stat().st_size == written
        rebuilt = container.read_file(path)
        assert rebuilt.total_bytes == stream.total_bytes

    def test_probe_codec(self, tmp_path):
        path = tmp_path / "clip.hdvb"
        container.write_file(path, sample_stream())
        assert container.probe_codec(path) == "mpeg2"

    def test_probe_rejects_non_container(self, tmp_path):
        path = tmp_path / "junk.bin"
        path.write_bytes(b"not a container")
        with pytest.raises(BitstreamError):
            container.probe_codec(path)


class TestStreamProperties:
    def test_total_bytes_and_bitrate(self):
        stream = sample_stream()
        assert stream.total_bytes == 13
        # 3 frames at 25 fps = 0.12 s.
        assert stream.bitrate_kbps == pytest.approx(13 * 8 / 0.12 / 1000)

    def test_frame_type_counts(self):
        counts = sample_stream().frame_types()
        assert counts[FrameType.I] == 1
        assert counts[FrameType.P] == 1
        assert counts[FrameType.B] == 1
