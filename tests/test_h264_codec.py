"""End-to-end tests for the H.264 class codec."""

import pytest

from repro.codecs.h264 import H264Config, H264Decoder, H264Encoder
from repro.codecs.mpeg2 import Mpeg2Config, Mpeg2Encoder
from repro.common.gop import FrameType, GopStructure
from repro.common.metrics import sequence_psnr
from repro.errors import CodecError, ConfigError
from tests.conftest import make_moving_sequence


def encode(video, **overrides):
    fields = dict(width=video.width, height=video.height, qp=26, search_range=4)
    fields.update(overrides)
    encoder = H264Encoder(H264Config(**fields))
    return encoder, encoder.encode_sequence(video)


class TestRoundTrip:
    def test_psnr_reasonable(self, tiny_video):
        _, stream = encode(tiny_video)
        decoded = H264Decoder().decode(stream)
        assert sequence_psnr(tiny_video, decoded).y > 30.0

    def test_deterministic(self, tiny_video):
        _, first = encode(tiny_video)
        _, second = encode(tiny_video)
        assert all(a.payload == b.payload for a, b in zip(first.pictures, second.pictures))

    def test_gop_structure(self, tiny_video):
        _, stream = encode(tiny_video)
        counts = stream.frame_types()
        assert counts[FrameType.I] == 1
        assert counts[FrameType.B] >= 1

    def test_intra_only(self, tiny_video):
        _, stream = encode(tiny_video, gop=GopStructure(bframes=0, intra_period=1))
        decoded = H264Decoder().decode(stream)
        assert sequence_psnr(tiny_video, decoded).y > 30.0

    def test_ip_only(self, tiny_video):
        _, stream = encode(tiny_video, gop=GopStructure(bframes=0))
        decoded = H264Decoder().decode(stream)
        assert sequence_psnr(tiny_video, decoded).y > 30.0


class TestTools:
    def test_deblock_off_roundtrips(self, tiny_video):
        _, stream = encode(tiny_video, deblock=False)
        decoded = H264Decoder().decode(stream)
        assert sequence_psnr(tiny_video, decoded).y > 30.0

    def test_deblock_streams_differ(self, tiny_video):
        _, with_filter = encode(tiny_video, deblock=True)
        _, without = encode(tiny_video, deblock=False)
        assert any(
            a.payload != b.payload
            for a, b in zip(with_filter.pictures, without.pictures)
        )

    def test_single_partition_roundtrips(self, tiny_video):
        _, stream = encode(tiny_video, partitions=("16x16",))
        decoded = H264Decoder().decode(stream)
        assert sequence_psnr(tiny_video, decoded).y > 30.0

    def test_partitions_help_rate_distortion(self):
        video = make_moving_sequence(width=64, height=48, frames=5, dx=3, dy=0, seed=21)
        _, all_shapes = encode(video, search_range=8)
        _, only16 = encode(video, search_range=8, partitions=("16x16",))
        decoded_all = H264Decoder().decode(all_shapes)
        decoded_16 = H264Decoder().decode(only16)
        psnr_all = sequence_psnr(video, decoded_all).y
        psnr_16 = sequence_psnr(video, decoded_16).y
        # More shapes never hurt the encoder's RD decision materially.
        assert (all_shapes.total_bytes <= only16.total_bytes * 1.05
                or psnr_all >= psnr_16 - 0.1)

    def test_multiple_reference_frames(self, tiny_video):
        _, stream = encode(tiny_video, ref_frames=3)
        decoded = H264Decoder().decode(stream)
        assert sequence_psnr(tiny_video, decoded).y > 30.0

    def test_single_reference(self, tiny_video):
        _, stream = encode(tiny_video, ref_frames=1)
        decoded = H264Decoder().decode(stream)
        assert sequence_psnr(tiny_video, decoded).y > 30.0

    @pytest.mark.parametrize("algorithm", ["hex", "epzs", "full"])
    def test_me_algorithms(self, tiny_video, algorithm):
        _, stream = encode(tiny_video, me_algorithm=algorithm)
        decoded = H264Decoder().decode(stream)
        assert sequence_psnr(tiny_video, decoded).y > 30.0


class TestRateBehaviour:
    def test_qp_monotone_bits(self, tiny_video):
        _, fine = encode(tiny_video, qp=18)
        _, coarse = encode(tiny_video, qp=38)
        assert coarse.total_bytes < fine.total_bytes

    def test_qp_monotone_quality(self, tiny_video):
        _, fine = encode(tiny_video, qp=18)
        _, coarse = encode(tiny_video, qp=38)
        assert (
            sequence_psnr(tiny_video, H264Decoder().decode(fine)).y
            > sequence_psnr(tiny_video, H264Decoder().decode(coarse)).y
        )

    def test_beats_mpeg2_on_motion(self):
        video = make_moving_sequence(width=64, height=48, frames=6, dx=2, dy=1)
        _, h264_stream = encode(video, search_range=8)
        mpeg2_stream = Mpeg2Encoder(
            Mpeg2Config(width=video.width, height=video.height, qscale=5, search_range=8)
        ).encode_sequence(video)
        assert h264_stream.total_bytes < mpeg2_stream.total_bytes


class TestValidation:
    def test_invalid_qp(self):
        with pytest.raises(ConfigError):
            H264Config(width=32, height=32, qp=60)

    def test_invalid_ref_frames(self):
        with pytest.raises(ConfigError):
            H264Config(width=32, height=32, ref_frames=0)

    def test_16x16_partition_mandatory(self):
        with pytest.raises(ConfigError):
            H264Config(width=32, height=32, partitions=("8x8",))

    def test_unknown_partition(self):
        with pytest.raises(ConfigError):
            H264Config(width=32, height=32, partitions=("16x16", "4x4"))

    def test_wrong_codec_rejected(self, tiny_video):
        _, stream = encode(tiny_video)
        stream.codec = "mpeg4"
        with pytest.raises(CodecError):
            H264Decoder().decode(stream)
