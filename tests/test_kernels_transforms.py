"""Behavioural tests for the transform kernels (either backend)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels.tables import DCT8_INT, H264_CF, H264_CI


def residual_blocks(size: int, bound: int = 255):
    return st.lists(
        st.lists(st.integers(-bound, bound), min_size=size, max_size=size),
        min_size=size,
        max_size=size,
    ).map(lambda rows: np.array(rows, dtype=np.int64))


class TestDct8:
    def test_dc_of_flat_block(self, kernels):
        block = np.full((8, 8), 100, dtype=np.int64)
        coeffs = kernels.fdct8(block)
        # Orthonormal DCT: DC = mean * 8.
        assert abs(int(coeffs[0, 0]) - 800) <= 1
        assert np.all(np.abs(coeffs[1:, :]) <= 1)
        assert np.all(np.abs(coeffs[0, 1:]) <= 1)

    def test_zero_block(self, kernels):
        zero = np.zeros((8, 8), dtype=np.int64)
        assert np.array_equal(kernels.fdct8(zero), zero)
        assert np.array_equal(kernels.idct8(zero), zero)

    @given(residual_blocks(8))
    @settings(max_examples=30)
    def test_roundtrip_error_small(self, block):
        from repro.kernels import get_kernels

        kernels = get_kernels("simd")
        rebuilt = kernels.idct8(kernels.fdct8(block))
        assert np.max(np.abs(rebuilt - block)) <= 2

    def test_linearity_of_scaling(self, simd_kernels):
        rng = np.random.default_rng(5)
        block = rng.integers(-100, 100, (8, 8)).astype(np.int64)
        single = simd_kernels.fdct8(block)
        doubled = simd_kernels.fdct8(2 * block)
        assert np.max(np.abs(doubled - 2 * single)) <= 2

    def test_matrix_is_orthonormal_fixed_point(self):
        product = DCT8_INT @ DCT8_INT.T
        scale = float(product[0, 0])
        off_diagonal = product - np.diag(np.diag(product))
        assert abs(scale - 2 ** 26) / 2 ** 26 < 1e-3
        assert np.max(np.abs(off_diagonal)) / scale < 1e-3

    def test_energy_preserved_roughly(self, simd_kernels):
        rng = np.random.default_rng(6)
        block = rng.integers(-128, 128, (8, 8)).astype(np.int64)
        coeffs = simd_kernels.fdct8(block)
        energy_in = float(np.sum(block.astype(float) ** 2))
        energy_out = float(np.sum(coeffs.astype(float) ** 2))
        assert energy_out == pytest.approx(energy_in, rel=0.05)


class TestH264Transform4:
    def test_forward_dc(self, kernels):
        block = np.full((4, 4), 10, dtype=np.int64)
        coeffs = kernels.fwd_transform4(block)
        assert int(coeffs[0, 0]) == 160  # sum of samples
        assert np.count_nonzero(coeffs) == 1

    @given(residual_blocks(4))
    @settings(max_examples=30)
    def test_forward_inverse_consistent(self, block):
        # The fwd/inv pair is scaled: inv(fwd(X) * 16-ish) ~ X.  Check
        # through the quantiser path at QP 0 instead (near-lossless).
        from repro.kernels import get_kernels

        kernels = get_kernels("simd")
        coeffs = kernels.fwd_transform4(block)
        levels = kernels.quant_h264_4x4(coeffs, 0, intra=True)
        rebuilt = kernels.inv_transform4(kernels.dequant_h264_4x4(levels, 0))
        assert np.max(np.abs(rebuilt - block)) <= 1

    def test_quant_tables_encode_basis_norms(self):
        # MF * V per position class compensates the forward/inverse basis
        # norms: class-b/class-a product ratio must be (2.5/2)^2 = 1.5625.
        from repro.kernels.tables import H264_MF, H264_V

        for row in range(6):
            products = H264_MF[row] * H264_V[row]
            assert products[0] / products[1] == pytest.approx(1.5625, rel=0.01)
            assert products[0] / products[2] == pytest.approx(1.25, rel=0.01)

    def test_quant_coarser_at_higher_qp(self, simd_kernels):
        rng = np.random.default_rng(7)
        block = rng.integers(-64, 64, (4, 4)).astype(np.int64)
        coeffs = simd_kernels.fwd_transform4(block)
        nz = [
            int(np.count_nonzero(simd_kernels.quant_h264_4x4(coeffs, qp, False)))
            for qp in (10, 26, 40)
        ]
        assert nz[0] >= nz[1] >= nz[2]


class TestHadamard:
    def test_hadamard4_roundtrip_scale(self, kernels):
        block = np.array(
            [[4, 0, 0, 0], [0, 4, 0, 0], [0, 0, 4, 0], [0, 0, 0, 4]], dtype=np.int64
        )
        forward = kernels.hadamard4_forward(block)
        rebuilt = kernels.hadamard4_inverse(forward)
        # H @ (H X H >> 1) @ H == 8 * X for even inputs.
        assert np.array_equal(rebuilt, 8 * block)

    def test_hadamard2_self_inverse_scale(self, kernels):
        block = np.array([[3, 1], [-2, 5]], dtype=np.int64)
        twice = kernels.hadamard2(kernels.hadamard2(block))
        assert np.array_equal(twice, 4 * block)


class TestSatd:
    def test_satd_zero_for_identical(self, kernels):
        block = np.arange(16, dtype=np.int64).reshape(4, 4)
        assert kernels.satd4(block, block) == 0

    def test_satd_positive_for_different(self, kernels):
        a = np.zeros((4, 4), dtype=np.int64)
        b = np.eye(4, dtype=np.int64) * 16
        assert kernels.satd4(a, b) > 0

    def test_satd_dc_difference(self, kernels):
        a = np.zeros((4, 4), dtype=np.int64)
        b = np.full((4, 4), 2, dtype=np.int64)
        # All energy in DC: |H D H| has a single entry 16*2, halved.
        assert kernels.satd4(a, b) == 16
