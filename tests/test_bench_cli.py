"""Tests for the hdvb-bench command line."""

import pytest

from repro.bench.cli import main


class TestStaticTables:
    @pytest.mark.parametrize("command, marker", [
        ("table1", "Mediabench"),
        ("table2", "x264"),
        ("table3", "riverbed"),
        ("table4", "hdvb-mencoder"),
    ])
    def test_descriptive_tables(self, command, marker, capsys):
        assert main([command]) == 0
        assert marker in capsys.readouterr().out


class TestCampaigns:
    COMMON = ["--frames", "3", "--runs", "1",
              "--sequences", "rush_hour", "--tiers", "576p25"]

    def test_table5(self, capsys):
        assert main(["table5"] + self.COMMON) == 0
        out = capsys.readouterr().out
        assert "Table V" in out
        assert "Compression gains" in out
        assert "mpeg2 PSNR" in out

    def test_figure1_single_part(self, capsys):
        assert main(["figure1", "--part", "b"] + self.COMMON) == 0
        out = capsys.readouterr().out
        assert "Figure 1(b)" in out
        assert "decode performance, simd backend" in out

    def test_speedups(self, capsys):
        assert main(["speedups"] + self.COMMON) == 0
        out = capsys.readouterr().out
        assert "decode SIMD speed-ups" in out
        assert "mpeg2" in out

    def test_scale_argument(self, capsys):
        assert main(["table5", "--scale", "1/16", "--frames", "2", "--runs", "1",
                     "--sequences", "rush_hour", "--tiers", "576p25"]) == 0
        assert "rush_hour" in capsys.readouterr().out

    def test_unknown_sequence_fails_cleanly(self, capsys):
        assert main(["table5", "--sequences", "bbb", "--tiers", "576p25",
                     "--frames", "2"]) == 1
        assert "hdvb-bench:" in capsys.readouterr().err

    def test_unknown_tier_fails_cleanly(self, capsys):
        assert main(["figure1", "--part", "a", "--tiers", "480i60",
                     "--frames", "2"]) == 1
        assert "hdvb-bench:" in capsys.readouterr().err

    def test_characterize(self, capsys):
        assert main(["characterize", "--codec", "mpeg2", "--frames", "2",
                     "--sequences", "rush_hour", "--tiers", "576p25"]) == 0
        out = capsys.readouterr().out
        assert "Kernel mix: mpeg2 encode" in out
        assert "Kernel mix: mpeg2 decode" in out

    def test_table5_with_extension_codecs(self, capsys):
        assert main(["table5", "--frames", "2", "--sequences", "rush_hour",
                     "--tiers", "576p25", "--codecs", "mpeg2,vc1"]) == 0
        out = capsys.readouterr().out
        assert "vc1 PSNR" in out

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])


class TestStreaming:
    def test_streaming_sweep(self, capsys):
        assert main(["streaming", "--codecs", "mpeg2", "--loss", "0.05",
                     "--burst", "3", "--fec", "0,4", "--trials", "1",
                     "--frames", "4"]) == 0
        out = capsys.readouterr().out
        assert "Streaming: seeded loss sweep" in out
        assert "graceful" in out
        assert "fec rec" in out
        assert "mpeg2" in out

    def test_streaming_rejects_bad_loss(self, capsys):
        assert main(["streaming", "--codecs", "mpeg2", "--loss", "1.5",
                     "--trials", "1", "--frames", "3"]) == 1
        assert "hdvb-bench:" in capsys.readouterr().err
