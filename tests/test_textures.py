"""Tests for the procedural texture primitives."""

import numpy as np
import pytest

from repro.sequences.textures import (
    downsample2,
    ellipse_mask,
    fractal_noise,
    rotate_crop,
    smoothstep,
    translate_crop,
    value_noise,
    warp,
)


class TestSmoothstep:
    def test_endpoints(self):
        assert smoothstep(np.array(0.0)) == 0.0
        assert smoothstep(np.array(1.0)) == 1.0

    def test_midpoint(self):
        assert smoothstep(np.array(0.5)) == pytest.approx(0.5)

    def test_monotone(self):
        t = np.linspace(0, 1, 50)
        values = smoothstep(t)
        assert np.all(np.diff(values) >= 0)


class TestValueNoise:
    def test_range_and_shape(self):
        rng = np.random.default_rng(0)
        noise = value_noise(40, 60, 8, rng)
        assert noise.shape == (40, 60)
        assert noise.min() >= 0.0
        assert noise.max() <= 1.0

    def test_feature_size_controls_smoothness(self):
        rng1 = np.random.default_rng(1)
        rng2 = np.random.default_rng(1)
        coarse = value_noise(64, 64, 16, rng1)
        fine = value_noise(64, 64, 2, rng2)
        grad_coarse = np.mean(np.abs(np.diff(coarse, axis=1)))
        grad_fine = np.mean(np.abs(np.diff(fine, axis=1)))
        assert grad_fine > grad_coarse

    def test_deterministic_per_seed(self):
        a = value_noise(16, 16, 4, np.random.default_rng(7))
        b = value_noise(16, 16, 4, np.random.default_rng(7))
        assert np.array_equal(a, b)

    def test_tiny_cell_clamped(self):
        noise = value_noise(8, 8, 0.5, np.random.default_rng(2))
        assert noise.shape == (8, 8)


class TestFractalNoise:
    def test_normalised(self):
        noise = fractal_noise(32, 32, 8, np.random.default_rng(3), octaves=5)
        assert noise.min() >= 0.0
        assert noise.max() <= 1.0

    def test_more_octaves_more_detail(self):
        one = fractal_noise(64, 64, 16, np.random.default_rng(4), octaves=1)
        five = fractal_noise(64, 64, 16, np.random.default_rng(4), octaves=5)
        assert (np.mean(np.abs(np.diff(five, axis=1)))
                > np.mean(np.abs(np.diff(one, axis=1))))


class TestGeometry:
    def test_rotate_zero_is_center_crop(self):
        world = np.arange(100.0).reshape(10, 10)
        out = rotate_crop(world, 0.0, 4, 4)
        assert np.allclose(out, world[3:7, 3:7])

    def test_rotate_small_angle_changes_output(self):
        world = np.random.default_rng(5).random((40, 40))
        zero = rotate_crop(world, 0.0, 16, 16)
        turned = rotate_crop(world, 2.0, 16, 16)
        assert not np.allclose(zero, turned)

    def test_rotation_preserves_mean_roughly(self):
        world = np.random.default_rng(6).random((60, 60))
        zero = rotate_crop(world, 0.0, 20, 20)
        turned = rotate_crop(world, 5.0, 20, 20)
        assert abs(zero.mean() - turned.mean()) < 0.1

    def test_translate_integer_offset(self):
        world = np.arange(64.0).reshape(8, 8)
        out = translate_crop(world, 1.0, 2.0, 4, 4)
        assert np.allclose(out, world[1:5, 2:6])

    def test_translate_subpixel_interpolates(self):
        world = np.tile(np.arange(8.0), (8, 1))
        out = translate_crop(world, 0.0, 0.5, 4, 4)
        assert np.allclose(out[0, 0], 0.5)

    def test_warp_identity(self):
        plane = np.random.default_rng(7).random((16, 16))
        zero = np.zeros((16, 16))
        assert np.allclose(warp(plane, zero, zero), plane)


class TestMasksAndSampling:
    def test_ellipse_mask_center_full(self):
        mask = ellipse_mask(32, 32, 16, 16, 8, 8)
        assert mask[16, 16] == 1.0
        assert mask[0, 0] == 0.0

    def test_ellipse_mask_range(self):
        mask = ellipse_mask(20, 30, 10, 15, 5, 9)
        assert mask.min() >= 0.0
        assert mask.max() <= 1.0

    def test_downsample2(self):
        plane = np.array([[1.0, 3.0], [5.0, 7.0]])
        assert downsample2(plane)[0, 0] == pytest.approx(4.0)

    def test_downsample2_shape(self):
        plane = np.zeros((16, 24))
        assert downsample2(plane).shape == (8, 12)
