"""Tests for motion estimation: cost model, searches, sub-pel refinement."""

import numpy as np
import pytest

from repro.kernels import get_kernels
from repro.mc.pad import pad_plane
from repro.me.cost import MotionCost, lambda_from_qp, mv_rate_bits
from repro.me.search import (
    ALGORITHM_NAMES,
    epzs_search,
    full_search,
    hexagon_search,
    run_search,
)
from repro.me.subpel import refine_subpel
from repro.me.types import MotionVector, SearchResult, ZERO_MV, median_mv
from repro.errors import ConfigError

KERNELS = get_kernels("simd")


def textured_plane(size: int = 64, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    coarse = rng.integers(0, 256, (size // 4 + 1, size // 4 + 1))
    return np.kron(coarse, np.ones((4, 4), dtype=np.int64))[:size, :size].astype(np.int64)


def make_cost(dx: int, dy: int, search_range: int = 8,
              lagrangian: int = 0) -> MotionCost:
    """A cost whose optimum is the planted displacement (dx, dy)."""
    reference = textured_plane()
    x, y = 24, 24
    current = reference[y + dy : y + dy + 16, x + dx : x + dx + 16]
    return MotionCost(
        kernels=KERNELS,
        current=current,
        reference=pad_plane(reference, search_range),
        x=x,
        y=y,
        width=16,
        height=16,
        predictor=ZERO_MV,
        lagrangian=lagrangian,
        search_range=search_range,
    )


class TestTypes:
    def test_vector_arithmetic(self):
        a = MotionVector(3, -2)
        b = MotionVector(-1, 5)
        assert a + b == MotionVector(2, 3)
        assert a - b == MotionVector(4, -7)
        assert -a == MotionVector(-3, 2)
        assert a.scaled(2) == MotionVector(6, -4)

    def test_clamped(self):
        assert MotionVector(10, -10).clamped(4) == MotionVector(4, -4)

    def test_median(self):
        result = median_mv(MotionVector(1, 9), MotionVector(5, 3), MotionVector(2, 7))
        assert result == MotionVector(2, 7)

    def test_search_result_comparison(self):
        assert SearchResult(ZERO_MV, 5).better_than(SearchResult(ZERO_MV, 9))


class TestCostModel:
    def test_zero_mv_on_static_scene_is_zero_sad(self):
        cost = make_cost(0, 0)
        assert cost.evaluate(ZERO_MV) == 0

    def test_planted_motion_has_zero_sad(self):
        cost = make_cost(3, -2)
        assert cost.evaluate(MotionVector(3, -2)) == 0

    def test_out_of_range_is_prohibitive(self):
        cost = make_cost(0, 0, search_range=4)
        assert cost.evaluate(MotionVector(5, 0)) > 10 ** 12

    def test_rate_term_penalises_long_vectors(self):
        cost = make_cost(0, 0, lagrangian=10)
        assert cost.evaluate(MotionVector(4, 4)) >= 10 * mv_rate_bits(
            MotionVector(4, 4), ZERO_MV
        )

    def test_cache_counts_distinct_candidates(self):
        cost = make_cost(0, 0)
        cost.evaluate(ZERO_MV)
        cost.evaluate(ZERO_MV)
        cost.evaluate(MotionVector(1, 0))
        assert cost.evaluations == 2

    def test_lambda_grows_with_qp(self):
        values = [lambda_from_qp(qp) for qp in (10, 26, 40)]
        assert values == sorted(values)
        assert values[0] >= 1

    def test_mv_rate_bits_zero_diff_minimal(self):
        assert mv_rate_bits(MotionVector(3, 4), MotionVector(3, 4)) == 2


class TestSearches:
    @pytest.mark.parametrize("dx, dy", [(0, 0), (3, 1), (-4, 2), (5, -5)])
    def test_full_search_finds_planted_motion(self, dx, dy):
        result = full_search(make_cost(dx, dy))
        assert result.mv == MotionVector(dx, dy)
        assert result.cost == 0

    @pytest.mark.parametrize("dx, dy", [(0, 0), (2, 1), (-3, -2)])
    def test_epzs_finds_planted_motion(self, dx, dy):
        result = epzs_search(make_cost(dx, dy))
        assert result.mv == MotionVector(dx, dy)

    def test_epzs_uses_extra_predictors(self):
        # With a far displacement, the diamond descent from zero may stall;
        # a predictor pointing at the optimum must be used.
        cost = make_cost(7, 7)
        result = epzs_search(cost, extra_predictors=[MotionVector(7, 7)])
        assert result.mv == MotionVector(7, 7)

    @pytest.mark.parametrize("dx, dy", [(0, 0), (2, 0), (-2, 2), (4, -3)])
    def test_hexagon_finds_planted_motion(self, dx, dy):
        result = hexagon_search(make_cost(dx, dy))
        assert result.mv == MotionVector(dx, dy)

    def test_fast_searches_never_beat_full_search(self):
        for seed in range(3):
            cost_full = make_cost(3, -1)
            best = full_search(cost_full)
            for algorithm in ("epzs", "hex"):
                cost = make_cost(3, -1)
                result = run_search(algorithm, cost)
                assert result.cost >= best.cost

    def test_fast_searches_evaluate_fewer_candidates(self):
        cost_full = make_cost(2, 2)
        full_search(cost_full)
        cost_epzs = make_cost(2, 2)
        epzs_search(cost_epzs)
        assert cost_epzs.evaluations < cost_full.evaluations / 4

    def test_run_search_dispatch(self):
        assert set(ALGORITHM_NAMES) == {"epzs", "full", "hex"}
        with pytest.raises(ConfigError):
            run_search("umh", make_cost(0, 0))


class TestSubpel:
    def test_halfpel_refinement_improves_on_fractional_motion(self):
        # Build a reference and a current that is the half-pel interpolation
        # of it, so the optimum is at a fractional position.
        reference = textured_plane(seed=3)
        padded = pad_plane(reference, 8)
        x, y = 24, 24
        px, py = padded.offset(x, y)
        current = KERNELS.mc_halfpel(padded.plane, px, py, 16, 16, 1, 0)
        cost = MotionCost(
            kernels=KERNELS, current=current, reference=padded,
            x=x, y=y, width=16, height=16,
            predictor=ZERO_MV, lagrangian=0, search_range=8,
        )
        integer = full_search(cost)
        refined = refine_subpel(
            KERNELS, current, padded, x, y, 16, 16, integer,
            predictor=ZERO_MV, lagrangian=0, unit=2,
            interp=KERNELS.mc_halfpel,
        )
        assert refined.mv == MotionVector(1, 0)
        assert refined.cost == 0
        assert refined.cost <= integer.cost

    def test_quarter_pel_units(self):
        reference = textured_plane(seed=4)
        padded = pad_plane(reference, 8)
        x, y = 24, 24
        px, py = padded.offset(x, y)
        current = KERNELS.mc_qpel_bilinear(padded.plane, px, py, 16, 16, 5, 2)
        cost = MotionCost(
            kernels=KERNELS, current=current, reference=padded,
            x=x, y=y, width=16, height=16,
            predictor=ZERO_MV, lagrangian=0, search_range=8,
        )
        integer = full_search(cost)
        refined = refine_subpel(
            KERNELS, current, padded, x, y, 16, 16, integer,
            predictor=ZERO_MV, lagrangian=0, unit=4,
            interp=KERNELS.mc_qpel_bilinear,
        )
        assert refined.cost == 0
        assert refined.mv == MotionVector(5, 2)

    def test_integer_optimum_is_kept(self):
        cost = make_cost(2, 1)
        integer = full_search(cost)
        reference = cost.reference
        refined = refine_subpel(
            KERNELS, cost.current, reference, cost.x, cost.y, 16, 16, integer,
            predictor=ZERO_MV, lagrangian=0, unit=2, interp=KERNELS.mc_halfpel,
        )
        assert refined.mv == integer.mv.scaled(2)
