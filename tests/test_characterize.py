"""Tests for the workload characterisation module."""

import pytest

from repro.bench.characterize import (
    CountingKernels,
    characterize_decode,
    characterize_encode,
    render_profile,
)
from repro.codecs import CODEC_NAMES, get_encoder
from repro.kernels import get_kernels
from repro.kernels.api import implements_kernel_api


def fields_for(codec, video):
    fields = dict(width=video.width, height=video.height, search_range=4)
    if codec == "h264":
        fields["qp"] = 26
    else:
        fields["qscale"] = 5
    return fields


class TestCountingKernels:
    def test_implements_full_api(self):
        assert implements_kernel_api(CountingKernels("simd"))

    def test_counts_calls_and_samples(self):
        import numpy as np

        counting = CountingKernels("simd")
        a = np.zeros((8, 8), dtype=np.int64)
        counting.sad(a, a)
        counting.sad(a, a)
        counting.fdct8(a)
        assert counting.profile.kernels["sad"].calls == 2
        assert counting.profile.kernels["sad"].samples == 128
        assert counting.profile.kernels["fdct8"].calls == 1
        assert counting.profile.total_calls == 3

    def test_results_match_plain_backend(self):
        import numpy as np

        rng = np.random.default_rng(0)
        block = rng.integers(-100, 100, (8, 8)).astype(np.int64)
        counting = CountingKernels("simd")
        plain = get_kernels("simd")
        assert np.array_equal(counting.fdct8(block), plain.fdct8(block))


class TestCharacterization:
    @pytest.fixture(scope="class")
    def profiles(self, tiny_video):
        result = {}
        for codec in CODEC_NAMES:
            fields = fields_for(codec, tiny_video)
            encode_profile, stream = characterize_encode(codec, tiny_video, **fields)
            decode_profile, decoded = characterize_decode(codec, stream)
            assert len(decoded) == len(tiny_video)
            result[codec] = (encode_profile, decode_profile)
        return result

    def test_encode_dominated_by_motion_search(self, profiles):
        # SAD is the encode hot kernel for the hybrid codecs — the classic
        # characterisation result that motivates fast ME algorithms.
        for codec in ("mpeg2", "mpeg4"):
            encode_profile, _ = profiles[codec]
            top_kernel = encode_profile.top(1)[0][0]
            assert top_kernel in ("sad", "mc_qpel_bilinear", "mc_halfpel", "mc_qpel_h264")

    def test_decode_has_no_motion_search(self, profiles):
        for codec in CODEC_NAMES:
            _, decode_profile = profiles[codec]
            assert decode_profile.kernels["sad"].calls == 0

    def test_encode_heavier_than_decode(self, profiles):
        for codec in CODEC_NAMES:
            encode_profile, decode_profile = profiles[codec]
            assert encode_profile.total_calls > decode_profile.total_calls

    def test_h264_uses_its_kernel_family(self, profiles):
        encode_profile, decode_profile = profiles["h264"]
        assert encode_profile.kernels["fwd_transform4"].calls > 0
        assert decode_profile.kernels["inv_transform4"].calls > 0
        assert decode_profile.kernels["deblock_normal"].calls > 0
        assert decode_profile.kernels["fdct8"].calls == 0

    def test_mpeg_codecs_use_dct8(self, profiles):
        for codec in ("mpeg2", "mpeg4"):
            encode_profile, decode_profile = profiles[codec]
            assert encode_profile.kernels["fdct8"].calls > 0
            assert decode_profile.kernels["idct8"].calls > 0
            assert encode_profile.kernels["fwd_transform4"].calls == 0

    def test_render(self, profiles):
        encode_profile, _ = profiles["mpeg2"]
        text = render_profile(encode_profile)
        assert "Kernel mix" in text
        assert "TOTAL" in text
        assert "sad" in text

    def test_render_top(self, profiles):
        encode_profile, _ = profiles["h264"]
        text = render_profile(encode_profile, top=3)
        # 3 kernels + total + header rows.
        assert len(text.splitlines()) == 3 + 1 + 3
