"""Tests for the benchmark harness: config, timing, reporting, table data."""

from fractions import Fraction

import pytest

from repro.bench.commands import command_table, render_table4
from repro.bench.config import BenchConfig, quick_config
from repro.bench.harness import REAL_TIME_FPS, time_callable
from repro.bench.registry_tables import (
    TABLE_I,
    TABLE_II,
    render_table1,
    render_table2,
    render_table3,
)
from repro.bench.report import render_bars, render_table
from repro.errors import ConfigError


class TestBenchConfig:
    def test_defaults_match_paper_settings(self):
        config = BenchConfig()
        assert config.qscale == 5
        assert config.h264_qp == 26  # Equation 1
        assert config.sequences == ("blue_sky", "pedestrian_area", "riverbed", "rush_hour")
        assert config.tier_names == ("576p25", "720p25", "1088p25")

    def test_tiers_scaled(self):
        config = BenchConfig(scale=Fraction(1, 8))
        tiers = config.tiers()
        assert [(t.width, t.height) for t in tiers] == [(96, 80), (160, 96), (240, 144)]

    def test_encoder_fields_per_codec(self):
        config = BenchConfig()
        tier = config.tiers()[0]
        mpeg_fields = config.encoder_fields("mpeg2", tier)
        assert mpeg_fields["qscale"] == 5
        assert "qp" not in mpeg_fields
        h264_fields = config.encoder_fields("h264", tier, backend="scalar")
        assert h264_fields["qp"] == 26
        assert h264_fields["backend"] == "scalar"

    def test_invalid_values(self):
        with pytest.raises(ConfigError):
            BenchConfig(frames=0)
        with pytest.raises(ConfigError):
            BenchConfig(runs=0)

    def test_quick_config_is_small(self):
        config = quick_config()
        assert config.frames <= 5
        assert len(config.sequences) == 1
        assert len(config.tier_names) == 1


class TestHarness:
    def test_fps_computation(self):
        timing = time_callable(lambda: None, frame_count=10, runs=3, warmup=0)
        assert timing.fps > 0
        assert len(timing.runs) == 3

    def test_median_of_runs(self):
        timing = time_callable(lambda: None, frame_count=5, runs=5, warmup=1)
        ordered = sorted(timing.runs)
        assert timing.seconds == ordered[2]

    def test_real_time_threshold(self):
        from repro.bench.harness import Timing

        fast = Timing(seconds=0.1, runs=[0.1], frame_count=10)   # 100 fps
        slow = Timing(seconds=1.0, runs=[1.0], frame_count=10)   # 10 fps
        assert fast.real_time
        assert not slow.real_time
        assert REAL_TIME_FPS == 25.0

    def test_runs_validated(self):
        with pytest.raises(ConfigError):
            time_callable(lambda: None, frame_count=1, runs=0)


class TestReport:
    def test_render_table_alignment(self):
        text = render_table(["a", "long_header"], [["x", "1"], ["yyyy", "22"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_render_table_title(self):
        text = render_table(["c"], [["v"]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_render_bars_reference_line(self):
        text = render_bars(["a", "b"], [50.0, 10.0], reference=25.0,
                           reference_label="real time")
        assert "|" in text
        assert "real time" in text

    def test_render_bars_empty(self):
        assert render_bars([], []) == "(no data)"


class TestStaticTables:
    def test_table1_surveys_prior_benchmarks(self):
        names = [entry.name for entry in TABLE_I]
        assert "Mediabench I" in names
        assert "EEMBC Digital Entertainment" in names
        text = render_table1()
        assert "MSSG" in text

    def test_table2_lists_six_applications(self):
        assert len(TABLE_II) == 6
        text = render_table2()
        for application in ("libmpeg2", "x264", "Xvid", "ffmpeg-h264"):
            assert application in text

    def test_table3_lists_sequences(self):
        text = render_table3()
        for name in ("blue_sky", "riverbed", "rush_hour", "pedestrian_area"):
            assert name in text
        assert "1920x1088" in text

    def test_table4_commands_executable_shape(self):
        entries = command_table()
        assert len(entries) == 6
        for entry in entries:
            assert entry.command.startswith(("hdvb-player", "hdvb-mencoder"))
        text = render_table4()
        assert "vqscale=5" in text
        assert "qp=26" in text  # Equation 1 applied
        assert "me=hex" in text
