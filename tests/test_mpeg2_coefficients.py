"""Tests for MPEG-2 run/level coding and its static tables."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.codecs.mpeg2 import tables
from repro.codecs.mpeg2.coefficients import decode_run_level, encode_run_level
from repro.common.bitstream import BitReader, BitWriter
from repro.errors import BitstreamError


def roundtrip(scanned, start=0):
    writer = BitWriter()
    encode_run_level(writer, scanned, start=start)
    writer.align()
    reader = BitReader(writer.to_bytes())
    return decode_run_level(reader, len(scanned), start=start)


class TestTables:
    def test_eob_is_short(self):
        assert tables.COEFF_TABLE.bits(tables.EOB) <= 3

    def test_small_events_cheap(self):
        assert tables.COEFF_TABLE.bits((0, 1)) <= 4
        assert tables.COEFF_TABLE.bits((0, 1)) < tables.COEFF_TABLE.bits((5, 5))

    def test_all_events_in_table(self):
        for run in range(tables.MAX_RUN + 1):
            for level in range(1, tables.MAX_LEVEL + 1):
                assert (run, level) in tables.COEFF_TABLE

    def test_cbp_table_complete(self):
        for pattern in range(64):
            assert pattern in tables.CBP_TABLE

    def test_full_pattern_is_cheap(self):
        assert tables.CBP_TABLE.bits(0b111111) <= tables.CBP_TABLE.bits(0b101010)

    def test_mb_mode_tables(self):
        assert "skip" in tables.MB_P_TABLE
        assert "bi" in tables.MB_B_TABLE


class TestRunLevel:
    def test_empty_block(self):
        assert roundtrip([0] * 64) == [0] * 64

    def test_single_dc(self):
        scanned = [0] * 64
        scanned[0] = 7
        assert roundtrip(scanned) == scanned

    def test_trailing_coefficient(self):
        scanned = [0] * 64
        scanned[63] = -1
        assert roundtrip(scanned) == scanned

    def test_start_offset_skips_dc(self):
        scanned = [99] + [0] * 63
        scanned[5] = -3
        decoded = roundtrip(scanned, start=1)
        assert decoded[0] == 0  # DC position not coded here
        assert decoded[5] == -3

    def test_escape_for_large_level(self):
        scanned = [0] * 64
        scanned[2] = 500  # beyond MAX_LEVEL -> escape path
        assert roundtrip(scanned) == scanned

    def test_escape_for_long_run(self):
        scanned = [0] * 64
        scanned[40] = 2  # run 40 > MAX_RUN
        assert roundtrip(scanned) == scanned

    def test_negative_levels(self):
        scanned = [0] * 64
        scanned[1] = -1
        scanned[3] = -15
        scanned[10] = -2000
        assert roundtrip(scanned) == scanned

    def test_dense_block(self):
        scanned = [(-1) ** i * (1 + i % 5) for i in range(64)]
        assert roundtrip(scanned) == scanned

    def test_overrun_raises(self):
        # Hand-craft: event with run beyond the block end.
        writer = BitWriter()
        tables.COEFF_TABLE.write(writer, tables.ESCAPE)
        writer.write_bits(63, tables.ESCAPE_RUN_BITS)
        writer.write_signed(5, tables.ESCAPE_LEVEL_BITS)
        writer.align()
        with pytest.raises(BitstreamError):
            decode_run_level(BitReader(writer.to_bytes()), 16)

    @given(st.lists(st.integers(-2047, 2047), min_size=64, max_size=64))
    @settings(max_examples=60)
    def test_roundtrip_property(self, scanned):
        assert roundtrip(scanned) == scanned

    @given(st.lists(st.integers(-300, 300), min_size=64, max_size=64))
    @settings(max_examples=30)
    def test_roundtrip_from_ac_start(self, scanned):
        decoded = roundtrip(scanned, start=1)
        assert decoded[1:] == scanned[1:]
        assert decoded[0] == 0
