"""Tests for the streaming transport layer (repro.transport)."""

from __future__ import annotations

import pickle
import random

import pytest

from repro.errors import BitstreamError, ConfigError, ReproError, TruncationError
from repro.robustness.bench import ALL_CODECS, encoder_fields, make_bench_clip
from repro.codecs import get_encoder
from repro.common.gop import FrameType
from repro.transport import (
    GilbertElliott,
    JitterBuffer,
    LossyChannel,
    Packet,
    fec_decode,
    fec_encode,
    packet_from_bytes,
    packetize,
    reassemble,
    receive,
    simulate_transmission,
)
from repro.transport.channel import Arrival


@pytest.fixture(scope="module")
def streams():
    """One small encoded stream per codec."""
    video = make_bench_clip()
    built = {}
    for codec in ALL_CODECS:
        encoder = get_encoder(codec, **encoder_fields(codec, 32, 32))
        built[codec] = encoder.encode_sequence(video)
    return built


@pytest.fixture(scope="module")
def video():
    return make_bench_clip()


# ---------------------------------------------------------------------------
# packetize / reassemble
# ---------------------------------------------------------------------------

class TestPacketizeRoundTrip:
    @pytest.mark.parametrize("codec", ALL_CODECS)
    @pytest.mark.parametrize("mtu", (48, 1200))
    def test_shuffle_duplicate_reassemble_is_lossless(self, streams, codec, mtu):
        # The property: packetize -> arbitrary arrival order with duplicates
        # -> reassemble reproduces every picture byte for byte.
        stream = streams[codec]
        session, packets = packetize(stream, mtu=mtu)
        delivered = list(packets) + list(packets[::3])  # every 3rd twice
        random.Random(codec + str(mtu)).shuffle(delivered)
        rebuilt, losses = reassemble(session, delivered)
        assert losses == []
        assert rebuilt.codec == stream.codec
        assert (rebuilt.width, rebuilt.height, rebuilt.fps) == (
            stream.width, stream.height, stream.fps)
        for original, copy in zip(stream.pictures, rebuilt.pictures):
            assert copy.payload == original.payload
            assert copy.display_index == original.display_index
            assert copy.frame_type == original.frame_type

    def test_fragments_respect_mtu(self, streams):
        session, packets = packetize(streams["mpeg2"], mtu=48)
        assert all(len(p.payload) <= 48 for p in packets)
        assert [p.seq for p in packets] == list(range(len(packets)))
        assert len(packets) == session.packet_count

    def test_lost_tail_fragment_truncates_payload(self, streams):
        stream = streams["mpeg2"]
        session, packets = packetize(stream, mtu=48)
        victim = next(p for p in packets
                      if p.frag_count > 1 and p.frag_index == p.frag_count - 1)
        survivors = [p for p in packets if p.seq != victim.seq]
        rebuilt, losses = reassemble(session, survivors)
        assert len(losses) == 1
        loss = losses[0]
        assert loss.picture_index == victim.picture_index
        assert loss.lost_seqs == (victim.seq,)
        assert not loss.erased
        damaged = rebuilt.pictures[victim.picture_index]
        original = stream.pictures[victim.picture_index]
        assert damaged.payload == original.payload[:len(damaged.payload)]
        assert 0 < len(damaged.payload) < len(original.payload)

    def test_fully_lost_picture_becomes_erased_slot(self, streams):
        stream = streams["mpeg2"]
        session, packets = packetize(stream, mtu=48)
        survivors = [p for p in packets if p.picture_index != 2]
        rebuilt, losses = reassemble(session, survivors)
        assert len(rebuilt.pictures) == len(stream.pictures)
        assert rebuilt.pictures[2].payload == b""
        (loss,) = losses
        assert loss.erased
        assert len(loss.lost_seqs) == session.pictures[2][2]

    def test_invalid_mtu_rejected(self, streams):
        with pytest.raises(ConfigError):
            packetize(streams["mpeg2"], mtu=0)
        with pytest.raises(ConfigError):
            packetize(streams["mpeg2"], mtu=100_000)


class TestWireFormat:
    def test_media_packet_round_trip(self, streams):
        _, packets = packetize(streams["h264"], mtu=48)
        for packet in packets:
            assert packet_from_bytes(packet.to_bytes()) == packet

    def test_parity_packet_round_trip(self, streams):
        _, packets = packetize(streams["h264"], mtu=48)
        parity = [p for p in fec_encode(packets, group_size=4, depth=2)
                  if p.is_parity]
        assert parity
        for packet in parity:
            assert packet_from_bytes(packet.to_bytes()) == packet

    def test_corrupt_wire_data_rejected(self, streams):
        _, packets = packetize(streams["mpeg2"], mtu=48)
        wire = packets[0].to_bytes()
        with pytest.raises(BitstreamError, match="magic"):
            packet_from_bytes(b"XX" + wire[2:])
        with pytest.raises(BitstreamError, match="truncated"):
            packet_from_bytes(wire[:-1])
        with pytest.raises(BitstreamError, match="trailing"):
            packet_from_bytes(wire + b"\x00")


# ---------------------------------------------------------------------------
# channel models
# ---------------------------------------------------------------------------

class TestGilbertElliott:
    def test_statistics_match_configuration(self):
        # The satellite property test: empirical loss rate and mean burst
        # length of the chain match the configured parameters.
        model = GilbertElliott(loss_rate=0.10, burst_length=4.0, seed=42)
        outcomes = [model.survives() for _ in range(200_000)]
        losses = outcomes.count(False)
        assert losses / len(outcomes) == pytest.approx(0.10, abs=0.01)

        bursts = []
        run = 0
        for delivered in outcomes:
            if not delivered:
                run += 1
            elif run:
                bursts.append(run)
                run = 0
        mean_burst = sum(bursts) / len(bursts)
        assert mean_burst == pytest.approx(4.0, rel=0.10)

    def test_iid_degenerate_case(self):
        model = GilbertElliott(loss_rate=0.2, burst_length=1.0, seed=7)
        assert model.r == 1.0
        outcomes = [model.survives() for _ in range(50_000)]
        assert outcomes.count(False) / len(outcomes) == pytest.approx(0.2, abs=0.01)

    def test_zero_loss_never_drops(self):
        model = GilbertElliott(loss_rate=0.0, seed=0)
        assert all(model.survives() for _ in range(1000))

    def test_same_seed_same_sequence(self):
        a = GilbertElliott(0.3, 2.0, seed=9)
        b = GilbertElliott(0.3, 2.0, seed=9)
        assert [a.survives() for _ in range(500)] == \
               [b.survives() for _ in range(500)]

    def test_invalid_parameters(self):
        with pytest.raises(ConfigError):
            GilbertElliott(loss_rate=1.0)
        with pytest.raises(ConfigError):
            GilbertElliott(loss_rate=0.1, burst_length=0.5)


class TestLossyChannel:
    def test_perfect_channel_delivers_in_order(self, streams):
        _, packets = packetize(streams["mpeg2"], mtu=48)
        arrivals, report = LossyChannel(seed=1).transmit(packets, 1e-3)
        assert [a.packet.seq for a in arrivals] == [p.seq for p in packets]
        assert report.lost == 0 and report.reordered == 0
        assert report.delivered == len(packets)

    def test_loss_and_duplication_accounting(self, streams):
        _, packets = packetize(streams["mpeg2"], mtu=48)
        channel = LossyChannel(loss_rate=0.2, duplicate_rate=0.1, seed=3)
        arrivals, report = channel.transmit(packets, 1e-3)
        assert report.sent == len(packets)
        assert report.delivered + report.lost == report.sent
        assert len(arrivals) == report.delivered + report.duplicated

    def test_jitter_causes_reordering(self, streams):
        _, packets = packetize(streams["mpeg2"], mtu=48)
        channel = LossyChannel(jitter=0.05, seed=5)
        arrivals, report = channel.transmit(packets, 1e-3)
        assert report.reordered > 0
        assert [a.packet.seq for a in arrivals] != [p.seq for p in packets]

    def test_same_seed_is_bit_reproducible(self, streams):
        _, packets = packetize(streams["mpeg2"], mtu=48)
        first = LossyChannel(loss_rate=0.1, jitter=0.01, duplicate_rate=0.05,
                             seed=11).transmit(packets, 1e-3)
        second = LossyChannel(loss_rate=0.1, jitter=0.01, duplicate_rate=0.05,
                              seed=11).transmit(packets, 1e-3)
        assert first == second


# ---------------------------------------------------------------------------
# FEC
# ---------------------------------------------------------------------------

class TestFec:
    def test_single_loss_per_group_recovered(self, streams):
        _, packets = packetize(streams["mpeg4"], mtu=48)
        protected = fec_encode(packets, group_size=4)
        victim = packets[5]
        received = [p for p in protected if p.seq != victim.seq]
        media, report = fec_decode(received)
        assert report.recovered == 1
        assert report.recovered_seqs == [victim.seq]
        recovered = next(p for p in media if p.seq == victim.seq)
        assert recovered == victim

    def test_double_loss_in_group_unrecoverable(self, streams):
        _, packets = packetize(streams["mpeg4"], mtu=48)
        protected = fec_encode(packets, group_size=4, depth=1)
        parity = next(p for p in protected if p.is_parity)
        doomed = {ref.seq for ref in parity.protects[:2]}
        received = [p for p in protected if p.seq not in doomed]
        media, report = fec_decode(received)
        assert report.recovered == 0
        assert report.unrecoverable == 1
        assert report.unrecoverable_losses == 2
        assert not any(p.seq in doomed for p in media)

    def test_interleaving_absorbs_bursts(self, streams):
        # A burst of `depth` consecutive losses hits `depth` different
        # groups, one loss each: everything comes back.
        _, packets = packetize(streams["mpeg4"], mtu=48)
        depth = 3
        protected = fec_encode(packets, group_size=3, depth=depth)
        burst = {2, 3, 4}
        received = [p for p in protected if p.seq not in burst]
        media, report = fec_decode(received)
        assert report.recovered == depth
        assert {p.seq for p in media} >= burst

    def test_overhead_is_one_over_group_size(self, streams):
        _, packets = packetize(streams["h264"], mtu=48)
        protected = fec_encode(packets, group_size=4, depth=1)
        parity_count = sum(p.is_parity for p in protected)
        assert parity_count == -(-len(packets) // 4)

    def test_group_size_zero_disables_fec(self, streams):
        _, packets = packetize(streams["h264"], mtu=48)
        assert fec_encode(packets, group_size=0) == list(packets)

    def test_recovery_across_payload_lengths(self):
        # The short last fragment recovers at its exact length.
        packets = [
            Packet(seq, 0, 0, FrameType.I, seq, 3, payload)
            for seq, payload in enumerate([b"abcdefgh", b"ijklmnop", b"qr"])
        ]
        protected = fec_encode(packets, group_size=3)
        received = [p for p in protected if p.seq != 2]
        media, report = fec_decode(received)
        assert report.recovered == 1
        assert next(p for p in media if p.seq == 2).payload == b"qr"


# ---------------------------------------------------------------------------
# jitter buffer
# ---------------------------------------------------------------------------

class TestJitterBuffer:
    def _packet(self, seq, display):
        return Packet(seq, display, display, FrameType.P, 0, 1, b"x")

    def test_on_time_admitted_late_dropped(self):
        buffer = JitterBuffer(fps=25, depth=0.2)
        packets = [self._packet(0, 0), self._packet(1, 1)]
        arrivals = [
            Arrival(packets[0], 0.19),            # deadline 0.2: on time
            Arrival(packets[1], 0.5),             # deadline 0.24: late
        ]
        admitted, report = buffer.admit(arrivals)
        assert [p.seq for p in admitted] == [0]
        assert report.late_dropped == 1
        assert report.late_seqs == [1]
        assert report.max_lateness == pytest.approx(0.26)

    def test_parity_inherits_latest_protected_deadline(self):
        buffer = JitterBuffer(fps=25, depth=0.2)
        media = [self._packet(0, 0), self._packet(1, 5)]
        parity = fec_encode(media, group_size=2)[-1]
        assert parity.is_parity
        # display 5 plays at 0.2 + 5/25 = 0.4: parity at 0.35 is on time.
        admitted, report = buffer.admit([Arrival(parity, 0.35)])
        assert admitted == [parity]
        assert report.late_dropped == 0

    def test_invalid_configuration(self):
        with pytest.raises(ConfigError):
            JitterBuffer(fps=0)
        with pytest.raises(ConfigError):
            JitterBuffer(fps=25, depth=-1)


# ---------------------------------------------------------------------------
# receiver: transport -> hardened decode engine
# ---------------------------------------------------------------------------

class TestReceiver:
    def test_clean_channel_decodes_identically(self, streams):
        stream = streams["mpeg2"]
        from repro.codecs import get_decoder
        reference = get_decoder("mpeg2").decode(stream)
        result = simulate_transmission(stream, mtu=48, fec_group=0)
        assert result.complete
        assert result.concealed_count == 0
        for a, b in zip(reference, result.frames):
            assert (a.y == b.y).all()

    @pytest.mark.parametrize("codec", ALL_CODECS)
    def test_lossy_channel_conceals_to_full_length(self, streams, codec):
        channel = LossyChannel(loss_rate=0.1, burst_length=3.0, seed=17)
        result = simulate_transmission(
            streams[codec], mtu=48, fec_group=4, fec_depth=3, channel=channel)
        assert result.complete
        assert len(result.frames) == streams[codec].frame_count

    def test_strict_mode_error_carries_packet_seq(self, streams):
        stream = streams["mpeg2"]
        session, packets = packetize(stream, mtu=48)
        victim = next(p for p in packets if p.picture_index == 1)
        survivors = [p for p in packets if p.seq != victim.seq]
        damaged, losses = reassemble(session, survivors)
        assert losses
        arrivals = [Arrival(p, 0.0) for p in survivors]
        with pytest.raises(ReproError) as excinfo:
            receive(session, arrivals, conceal=None)
        error = excinfo.value
        assert error.packet_seq == losses[0].lost_seqs[0]
        assert f"packet={error.packet_seq}" in str(error)

    def test_fec_repairs_before_the_decoder_notices(self, streams):
        stream = streams["h264"]
        session, packets = packetize(stream, mtu=48)
        protected = fec_encode(packets, group_size=4)
        victim = packets[3]
        arrivals = [Arrival(p, 0.0) for p in protected if p.seq != victim.seq]
        result = receive(session, arrivals)
        assert result.fec.recovered == 1
        assert result.damaged_pictures == 0
        assert result.concealed_count == 0

    def test_telemetry_counters_behind_fast_path(self, streams):
        import repro.telemetry as telemetry

        telemetry.reset()
        telemetry.enable()
        try:
            channel = LossyChannel(loss_rate=0.3, burst_length=2.0, seed=2)
            simulate_transmission(streams["mpeg2"], mtu=48, fec_group=4,
                                  channel=channel)
            registry = telemetry.registry()
            assert registry.value("transport.packets.sent") > 0
            assert registry.value("transport.packets.received") > 0
            spans = telemetry.current_trace().spans("transport.receive")
            assert len(spans) == 1
        finally:
            telemetry.disable()
            telemetry.reset()


# ---------------------------------------------------------------------------
# the shared error taxonomy
# ---------------------------------------------------------------------------

class TestPacketSeqContext:
    def test_str_appends_packet_context(self):
        error = TruncationError("payload ends early", codec="mpeg2",
                                picture_index=3, bit_position=17, packet_seq=41)
        assert "packet=41" in str(error)

    def test_context_dict_includes_packet_seq(self):
        error = ReproError("x", packet_seq=7)
        assert error.context["packet_seq"] == 7

    def test_pickle_round_trip_keeps_packet_seq(self):
        error = TruncationError("lost", codec="h264", picture_index=1,
                                bit_position=0, packet_seq=99)
        clone = pickle.loads(pickle.dumps(error))
        assert isinstance(clone, TruncationError)
        assert clone.packet_seq == 99
        assert clone.codec == "h264"


# ---------------------------------------------------------------------------
# channel flaps, segmented transmission, session context (origin seams)
# ---------------------------------------------------------------------------

class TestChannelFlap:
    def test_set_loss_changes_the_process_mid_stream(self, streams):
        _, packets = packetize(streams["h264"], mtu=64)
        channel = LossyChannel(loss_rate=0.0, seed=7)
        _, clean = channel.transmit(packets, 1e-3)
        assert clean.lost == 0
        channel.set_loss(0.8, 2.0)
        _, flapped = channel.transmit(packets, 1e-3)
        assert flapped.lost > 0
        assert channel.loss_rate == 0.8 and channel.burst_length == 2.0

    def test_flapped_runs_stay_reproducible(self, streams):
        _, packets = packetize(streams["h264"], mtu=64)

        def run_one():
            channel = LossyChannel(loss_rate=0.1, burst_length=2.0, seed=3)
            first, _ = channel.transmit(packets, 1e-3)
            channel.set_loss(0.5, 3.0)
            second, _ = channel.transmit(packets, 1e-3)
            channel.set_loss(0.1, 2.0)       # heal
            third, _ = channel.transmit(packets, 1e-3)
            return [(a.packet.seq, a.time) for a in first + second + third]

        assert run_one() == run_one()

    def test_reconfigure_validates(self):
        channel = LossyChannel(loss_rate=0.1, seed=0)
        with pytest.raises(ConfigError):
            channel.set_loss(1.0)
        with pytest.raises(ConfigError):
            channel.set_loss(0.1, burst_length=0.5)

    def test_gilbert_elliott_reconfigure_keeps_state(self):
        model = GilbertElliott(loss_rate=0.2, burst_length=2.0, seed=5)
        for _ in range(10):
            model.survives()
        model.reconfigure(0.05, 1.0)
        assert model.loss_rate == 0.05
        assert model.r == pytest.approx(1.0)


class TestStartTimeOffset:
    def test_segmented_transmission_advances_the_clock(self, streams):
        _, packets = packetize(streams["h264"], mtu=64)
        channel = LossyChannel(loss_rate=0.0, delay=0.01, seed=1)
        first, _ = channel.transmit(packets, 1e-3, start_time=0.0)
        second, _ = channel.transmit(packets, 1e-3, start_time=5.0)
        assert all(a.time >= 5.0 for a in second)
        assert max(a.time for a in first) < min(a.time for a in second)

    def test_negative_start_time_raises(self, streams):
        channel = LossyChannel()
        with pytest.raises(ConfigError):
            channel.transmit([], 1e-3, start_time=-1.0)


class TestSessionContext:
    def test_injected_channel_is_used_and_advanced(self, streams):
        channel = LossyChannel(loss_rate=0.3, burst_length=2.0, seed=11)
        before = channel._rng.getstate()
        result = simulate_transmission(streams["h264"], channel=channel,
                                       fec_group=0)
        assert result.channel.sent > 0
        assert channel._rng.getstate() != before   # same instance advanced

    def test_strict_decode_carries_session_id(self, streams):
        channel = LossyChannel(loss_rate=0.6, burst_length=3.0, seed=2)
        with pytest.raises(ReproError) as excinfo:
            simulate_transmission(streams["h264"], channel=channel,
                                  fec_group=0, conceal=None,
                                  session_id="c0042")
        assert excinfo.value.session_id == "c0042"
        assert "c0042" in str(excinfo.value)
