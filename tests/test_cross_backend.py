"""Integration tests: the scalar and SIMD backends produce identical codecs.

These are the end-to-end counterparts of the per-kernel equivalence
property tests: full encodes must be bit-exact and full decodes sample-
exact across backends, for every codec.  Figure 1's scalar/SIMD comparison
is meaningful only because of this invariant.
"""

import pytest

from repro.codecs import CODEC_NAMES, get_decoder, get_encoder


def fields_for(codec, video):
    fields = dict(width=video.width, height=video.height, search_range=4)
    if codec == "h264":
        fields["qp"] = 26
    else:
        fields["qscale"] = 5
    return fields


@pytest.mark.parametrize("codec", CODEC_NAMES)
class TestBackendEquivalence:
    def test_encoded_streams_bit_exact(self, codec, tiny_video):
        fields = fields_for(codec, tiny_video)
        simd = get_encoder(codec, backend="simd", **fields).encode_sequence(tiny_video)
        scalar = get_encoder(codec, backend="scalar", **fields).encode_sequence(tiny_video)
        assert len(simd.pictures) == len(scalar.pictures)
        for picture_simd, picture_scalar in zip(simd.pictures, scalar.pictures):
            assert picture_simd.payload == picture_scalar.payload

    def test_decoded_frames_sample_exact(self, codec, tiny_video):
        fields = fields_for(codec, tiny_video)
        stream = get_encoder(codec, **fields).encode_sequence(tiny_video)
        simd = get_decoder(codec, backend="simd").decode(stream)
        scalar = get_decoder(codec, backend="scalar").decode(stream)
        assert len(simd) == len(scalar)
        for frame_simd, frame_scalar in zip(simd, scalar):
            assert frame_simd == frame_scalar

    def test_cross_backend_decode_of_scalar_stream(self, codec, tiny_video):
        fields = fields_for(codec, tiny_video)
        stream = get_encoder(codec, backend="scalar", **fields).encode_sequence(tiny_video)
        decoded = get_decoder(codec, backend="simd").decode(stream)
        assert len(decoded) == len(tiny_video)
