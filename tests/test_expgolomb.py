"""Tests for Exp-Golomb codes."""

import pytest
from hypothesis import given, strategies as st

from repro.common.bitstream import BitReader, BitWriter
from repro.errors import BitstreamError
from repro.common.expgolomb import (
    read_se,
    read_ue,
    se_bit_length,
    ue_bit_length,
    write_se,
    write_ue,
)


def _encode_ue(value: int) -> str:
    writer = BitWriter()
    write_ue(writer, value)
    raw = writer.to_bytes()
    return "".join(f"{byte:08b}" for byte in raw)[: len(writer)]


class TestUnsigned:
    @pytest.mark.parametrize(
        "value, bits",
        [(0, "1"), (1, "010"), (2, "011"), (3, "00100"), (4, "00101"),
         (5, "00110"), (6, "00111"), (7, "0001000")],
    )
    def test_known_codes(self, value, bits):
        assert _encode_ue(value) == bits

    def test_negative_rejected(self):
        with pytest.raises(BitstreamError):
            write_ue(BitWriter(), -1)

    @given(st.integers(0, 100000))
    def test_roundtrip(self, value):
        writer = BitWriter()
        write_ue(writer, value)
        writer.align()
        assert read_ue(BitReader(writer.to_bytes())) == value

    @given(st.integers(0, 100000))
    def test_bit_length_matches_encoding(self, value):
        writer = BitWriter()
        write_ue(writer, value)
        assert len(writer) == ue_bit_length(value)

    def test_code_lengths_monotone(self):
        lengths = [ue_bit_length(v) for v in range(200)]
        assert lengths == sorted(lengths)


class TestSigned:
    @pytest.mark.parametrize("value, k", [(0, 0), (1, 1), (-1, 2), (2, 3), (-2, 4)])
    def test_mapping_order(self, value, k):
        # se(v) maps to the ue code number k: 0, 1, -1, 2, -2, ...
        writer = BitWriter()
        write_se(writer, value)
        expected = BitWriter()
        write_ue(expected, k)
        assert writer.to_bytes() == expected.to_bytes()

    @given(st.integers(-50000, 50000))
    def test_roundtrip(self, value):
        writer = BitWriter()
        write_se(writer, value)
        writer.align()
        assert read_se(BitReader(writer.to_bytes())) == value

    @given(st.integers(-50000, 50000))
    def test_bit_length_matches_encoding(self, value):
        writer = BitWriter()
        write_se(writer, value)
        assert len(writer) == se_bit_length(value)

    def test_zero_is_shortest(self):
        assert se_bit_length(0) == 1
        assert all(se_bit_length(v) > 1 for v in (-3, -1, 1, 3))

    def test_sequence_of_mixed_codes(self):
        writer = BitWriter()
        values = [0, -4, 17, 3, -300]
        for value in values:
            write_se(writer, value)
        write_ue(writer, 99)
        writer.align()
        reader = BitReader(writer.to_bytes())
        assert [read_se(reader) for _ in values] == values
        assert read_ue(reader) == 99
