"""Tests for the one-pass CBR rate-control extension."""

import pytest

from repro.codecs import get_decoder
from repro.common.metrics import bitrate_kbps, sequence_psnr
from repro.errors import ConfigError
from repro.ratecontrol import RateControlStep, cbr_encode, _next_qscale
from tests.conftest import make_moving_sequence


@pytest.fixture(scope="module")
def video():
    return make_moving_sequence(width=48, height=32, frames=18, dx=2, dy=1, seed=12)


class TestController:
    def test_over_budget_raises_qscale(self):
        assert _next_qscale(5, 1.5) == 6
        assert _next_qscale(5, 2.5) == 7

    def test_under_budget_lowers_qscale(self):
        assert _next_qscale(5, 0.7) == 4
        assert _next_qscale(5, 0.3) == 3

    def test_dead_band_holds(self):
        assert _next_qscale(5, 1.0) == 5
        assert _next_qscale(5, 0.9) == 5

    def test_clamped_to_valid_range(self):
        assert _next_qscale(1, 0.1) == 1
        assert _next_qscale(31, 3.0) == 31

    def test_step_fullness(self):
        step = RateControlStep(0, 6, 5, bits_spent=1200, bits_budget=1000)
        assert step.fullness == pytest.approx(1.2)


class TestCbrEncode:
    def test_tracks_low_vs_high_target(self, video):
        fields = dict(width=video.width, height=video.height, search_range=4)
        low, _ = cbr_encode("mpeg2", video, target_kbps=80, **fields)
        high, _ = cbr_encode("mpeg2", video, target_kbps=600, **fields)
        assert low.total_bytes < high.total_bytes
        assert low.bitrate_kbps < 3 * 80           # within striking distance
        assert high.bitrate_kbps > 80

    def test_output_decodes(self, video):
        fields = dict(width=video.width, height=video.height, search_range=4)
        stream, trace = cbr_encode("mpeg4", video, target_kbps=200, **fields)
        decoded = get_decoder("mpeg4").decode(stream)
        assert len(decoded) == len(video)
        assert sequence_psnr(video, decoded).y > 25.0
        assert len(trace) >= 2

    def test_trace_covers_sequence(self, video):
        fields = dict(width=video.width, height=video.height, search_range=4)
        _, trace = cbr_encode("mpeg2", video, target_kbps=150, **fields)
        assert trace[0].start_frame == 0
        assert trace[-1].stop_frame == len(video)
        for a, b in zip(trace, trace[1:]):
            assert a.stop_frame == b.start_frame

    def test_controller_reacts(self, video):
        # With a starving target the quantiser must rise over the run.
        fields = dict(width=video.width, height=video.height, search_range=4)
        _, trace = cbr_encode("mpeg2", video, target_kbps=20,
                              initial_qscale=3, **fields)
        assert trace[-1].qscale > trace[0].qscale

    def test_h264_uses_equation1_mapping(self, video):
        fields = dict(width=video.width, height=video.height, search_range=4)
        stream, trace = cbr_encode("h264", video, target_kbps=150, **fields)
        decoded = get_decoder("h264").decode(stream)
        assert len(decoded) == len(video)

    def test_quantiser_fields_rejected(self, video):
        with pytest.raises(ConfigError):
            cbr_encode("mpeg2", video, target_kbps=100, qscale=5,
                       width=video.width, height=video.height)

    def test_invalid_target(self, video):
        with pytest.raises(ConfigError):
            cbr_encode("mpeg2", video, target_kbps=0,
                       width=video.width, height=video.height)
