"""Tests for the deterministic Huffman builder and VLC tables."""

import pytest
from hypothesis import given, strategies as st

from repro.codecs.huffman import (
    VlcTable,
    canonical_codes,
    geometric,
    huffman_code_lengths,
)
from repro.common.bitstream import BitReader, BitWriter
from repro.errors import BitstreamError, ConfigError


class TestHuffmanLengths:
    def test_two_symbols_get_one_bit(self):
        lengths = huffman_code_lengths({"a": 0.9, "b": 0.1})
        assert lengths == {"a": 1, "b": 1}

    def test_rare_symbols_get_longer_codes(self):
        lengths = huffman_code_lengths({"common": 0.9, "rare": 0.05, "rarer": 0.05})
        assert lengths["common"] < lengths["rare"]

    def test_deterministic_under_reordering(self):
        freqs = {"a": 0.3, "b": 0.3, "c": 0.2, "d": 0.2}
        first = huffman_code_lengths(freqs)
        second = huffman_code_lengths(dict(reversed(list(freqs.items()))))
        assert first == second

    def test_kraft_equality(self):
        freqs = {f"s{i}": geometric(0.3, i) + 1e-9 for i in range(40)}
        lengths = huffman_code_lengths(freqs)
        assert sum(2.0 ** -length for length in lengths.values()) == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            huffman_code_lengths({})

    def test_zero_frequency_rejected(self):
        with pytest.raises(ConfigError):
            huffman_code_lengths({"a": 0.0, "b": 1.0})

    def test_single_symbol(self):
        assert huffman_code_lengths({"only": 1.0}) == {"only": 1}


class TestCanonicalCodes:
    def test_shortest_code_is_zero(self):
        codes = canonical_codes({"a": 1, "b": 2, "c": 2})
        assert codes["a"] == (0, 1)

    def test_all_codes_distinct(self):
        lengths = huffman_code_lengths({f"s{i}": 1.0 / (i + 1) for i in range(20)})
        codes = canonical_codes(lengths)
        assert len({code for code in codes.values()}) == len(codes)


class TestVlcTable:
    def build(self, count: int = 30) -> VlcTable:
        freqs = {i: geometric(0.4, i) + 1e-12 for i in range(count)}
        return VlcTable.from_frequencies(freqs, name="test")

    def test_roundtrip_all_symbols(self):
        table = self.build()
        writer = BitWriter()
        for symbol in range(30):
            table.write(writer, symbol)
        writer.align()
        reader = BitReader(writer.to_bytes())
        assert [table.read(reader) for _ in range(30)] == list(range(30))

    def test_bits_matches_written_length(self):
        table = self.build()
        for symbol in range(30):
            writer = BitWriter()
            table.write(writer, symbol)
            assert len(writer) == table.bits(symbol)

    def test_common_symbols_cost_fewer_bits(self):
        table = self.build()
        assert table.bits(0) <= table.bits(10) <= table.bits(29)

    def test_unknown_symbol_raises(self):
        table = self.build()
        with pytest.raises(BitstreamError):
            table.write(BitWriter(), "nope")

    def test_invalid_bitstream_raises(self):
        # A code of all ones at max length+ that matches nothing.
        freqs = {"a": 0.6, "b": 0.3, "c": 0.1}
        table = VlcTable.from_frequencies(freqs, name="tiny")
        # Exhaust: read from an empty stream raises BitstreamError.
        with pytest.raises(BitstreamError):
            table.read(BitReader(b""))

    def test_contains_and_len(self):
        table = self.build(5)
        assert len(table) == 5
        assert 3 in table
        assert 99 not in table

    def test_duplicate_codes_rejected(self):
        with pytest.raises(ConfigError):
            VlcTable({"a": (0, 1), "b": (0, 1)})

    def test_prefix_violation_rejected(self):
        with pytest.raises(ConfigError):
            VlcTable({"a": (0, 1), "b": (1, 2)})  # '0' is a prefix of... ok
        # '0' and '00' collide as prefix:
        with pytest.raises(ConfigError):
            VlcTable({"a": (0, 1), "b": (0, 2)})

    @given(st.integers(2, 60), st.integers(0, 1000))
    def test_roundtrip_random_alphabets(self, size, seed):
        import random

        rng = random.Random(seed)
        freqs = {i: rng.random() + 1e-6 for i in range(size)}
        table = VlcTable.from_frequencies(freqs, name="prop")
        writer = BitWriter()
        symbols = [rng.randrange(size) for _ in range(40)]
        for symbol in symbols:
            table.write(writer, symbol)
        writer.align()
        reader = BitReader(writer.to_bytes())
        assert [table.read(reader) for _ in symbols] == symbols
