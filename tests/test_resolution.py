"""Tests for resolution tiers."""

from fractions import Fraction

import pytest

from repro.common.resolution import (
    DVD,
    HD720,
    HD1088,
    PAPER_TIERS,
    Resolution,
    bench_tiers,
    scaled_tier,
    tier_by_name,
)
from repro.errors import ConfigError


class TestPaperTiers:
    def test_paper_dimensions(self):
        assert (DVD.width, DVD.height) == (720, 576)
        assert (HD720.width, HD720.height) == (1280, 720)
        assert (HD1088.width, HD1088.height) == (1920, 1088)

    def test_tier_names_match_figure1_labels(self):
        assert [tier.name for tier in PAPER_TIERS] == ["576p25", "720p25", "1088p25"]

    def test_pixel_counts_increase(self):
        pixels = [tier.pixels for tier in PAPER_TIERS]
        assert pixels == sorted(pixels)

    def test_macroblock_counts(self):
        assert DVD.macroblocks == (720 // 16) * (576 // 16)
        assert HD1088.mb_width == 120
        assert HD1088.mb_height == 68


class TestValidation:
    def test_rejects_unaligned(self):
        with pytest.raises(ConfigError):
            Resolution("bad", 100, 64)

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            Resolution("bad", 0, 16)

    def test_str_includes_name_and_size(self):
        assert "576p25" in str(DVD)
        assert "720x576" in str(DVD)


class TestScaling:
    def test_identity_scale_returns_same(self):
        assert scaled_tier(DVD, Fraction(1)) is DVD

    def test_default_bench_tiers(self):
        tiers = bench_tiers()
        assert [(t.width, t.height) for t in tiers] == [(96, 80), (160, 96), (240, 144)]

    def test_scaled_keeps_name(self):
        assert scaled_tier(HD720, Fraction(1, 8)).name == "720p25"

    def test_scaled_is_macroblock_aligned(self):
        for denominator in (2, 3, 5, 7, 8, 16):
            for tier in PAPER_TIERS:
                scaled = scaled_tier(tier, Fraction(1, denominator))
                assert scaled.width % 16 == 0
                assert scaled.height % 16 == 0

    def test_never_smaller_than_one_macroblock(self):
        scaled = scaled_tier(DVD, Fraction(1, 100))
        assert scaled.width >= 16 and scaled.height >= 16

    def test_negative_scale_rejected(self):
        with pytest.raises(ConfigError):
            scaled_tier(DVD, Fraction(-1, 2))

    def test_pixel_ratio_roughly_preserved(self):
        tiers = bench_tiers()
        # Paper ratio 1088p/576p is ~5.0x; the scaled tiers keep it coarse.
        ratio = tiers[2].pixels / tiers[0].pixels
        assert 3.5 <= ratio <= 6.5


class TestLookup:
    def test_lookup_by_name(self):
        assert tier_by_name("720p25") is HD720

    def test_lookup_scaled(self):
        tier = tier_by_name("1088p25", Fraction(1, 8))
        assert (tier.width, tier.height) == (240, 144)

    def test_unknown_name(self):
        with pytest.raises(ConfigError):
            tier_by_name("480p30")
