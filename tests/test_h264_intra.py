"""Tests for H.264 intra prediction."""

import numpy as np
import pytest

from repro.codecs.h264.intra import (
    BLOCK_MODES,
    DC_MODE_INDEX,
    LUMA4_MODES,
    available_block_modes,
    available_luma4_modes,
    predict_block,
    predict_luma4,
)
from repro.errors import CodecError


def plane_with_neighbours(size: int = 24, seed: int = 0) -> np.ndarray:
    return np.random.default_rng(seed).integers(0, 256, (size, size)).astype(np.int64)


class TestAvailability:
    def test_corner_block_is_dc_only(self):
        assert available_luma4_modes(False, False) == ["DC"]
        assert available_block_modes(False, False) == ["DC"]

    def test_top_row(self):
        modes = available_luma4_modes(True, False)
        assert "V" in modes and "DDL" in modes
        assert "H" not in modes and "DDR" not in modes

    def test_left_column(self):
        modes = available_luma4_modes(False, True)
        assert "H" in modes and "V" not in modes

    def test_interior_has_all(self):
        assert set(available_luma4_modes(True, True)) == set(LUMA4_MODES)
        assert set(available_block_modes(True, True)) == set(BLOCK_MODES)

    def test_dc_mode_index(self):
        assert LUMA4_MODES[DC_MODE_INDEX] == "DC"


class TestLuma4Modes:
    def test_vertical_copies_top(self):
        plane = plane_with_neighbours()
        pred = predict_luma4(plane, 8, 8, "V")
        for row in range(4):
            assert np.array_equal(pred[row], plane[7, 8:12])

    def test_horizontal_copies_left(self):
        plane = plane_with_neighbours(seed=1)
        pred = predict_luma4(plane, 8, 8, "H")
        for col in range(4):
            assert np.array_equal(pred[:, col], plane[8:12, 7])

    def test_dc_is_mean_of_neighbours(self):
        plane = np.full((16, 16), 80, dtype=np.int64)
        plane[7, 8:12] = 100
        plane[8:12, 7] = 60
        pred = predict_luma4(plane, 8, 8, "DC")
        assert np.all(pred == 80)  # (4*100 + 4*60 + 4) // 8

    def test_dc_without_neighbours_is_128(self):
        plane = plane_with_neighbours(seed=2)
        pred = predict_luma4(plane, 0, 0, "DC")
        assert np.all(pred == 128)

    def test_dc_top_only(self):
        plane = np.zeros((8, 8), dtype=np.int64)
        plane[3, :] = 40
        pred = predict_luma4(plane, 0, 4, "DC")
        assert np.all(pred == 40)

    def test_ddl_flat_on_flat_top(self):
        plane = np.full((16, 16), 55, dtype=np.int64)
        pred = predict_luma4(plane, 8, 8, "DDL")
        assert np.all(pred == 55)

    def test_ddr_diagonal_structure(self):
        plane = np.full((16, 16), 10, dtype=np.int64)
        plane[7, 7] = 200  # corner sample
        pred = predict_luma4(plane, 8, 8, "DDR")
        # The corner feeds the main diagonal.
        assert pred[0, 0] > pred[0, 3]
        assert pred[1, 1] > pred[0, 3]

    def test_unknown_mode_raises(self):
        with pytest.raises(CodecError):
            predict_luma4(plane_with_neighbours(), 8, 8, "PLANE")

    def test_outputs_in_pixel_range(self):
        plane = plane_with_neighbours(seed=3)
        for mode in LUMA4_MODES:
            pred = predict_luma4(plane, 8, 8, mode)
            assert np.all(pred >= 0) and np.all(pred <= 255)
            assert pred.shape == (4, 4)


class TestBlockModes:
    @pytest.mark.parametrize("size", [8, 16])
    def test_vertical(self, size):
        plane = plane_with_neighbours(size=2 * size + 8, seed=4)
        pred = predict_block(plane, size, size, size, "V")
        for row in range(size):
            assert np.array_equal(pred[row], plane[size - 1, size : 2 * size])

    @pytest.mark.parametrize("size", [8, 16])
    def test_horizontal(self, size):
        plane = plane_with_neighbours(size=2 * size + 8, seed=5)
        pred = predict_block(plane, size, size, size, "H")
        for col in range(size):
            assert np.array_equal(pred[:, col], plane[size : 2 * size, size - 1])

    def test_dc_flat(self):
        plane = np.full((48, 48), 90, dtype=np.int64)
        pred = predict_block(plane, 16, 16, 16, "DC")
        assert np.all(pred == 90)

    def test_plane_reproduces_linear_ramp(self):
        ys, xs = np.mgrid[0:64, 0:64]
        plane = (2 * xs + 3 * ys).astype(np.int64)
        pred = predict_block(plane, 16, 16, 16, "PLANE")
        actual = plane[16:32, 16:32]
        assert np.max(np.abs(pred - actual)) <= 4

    def test_plane_8x8_chroma(self):
        ys, xs = np.mgrid[0:32, 0:32]
        plane = (xs + ys).astype(np.int64)
        pred = predict_block(plane, 8, 8, 8, "PLANE")
        actual = plane[8:16, 8:16]
        assert np.max(np.abs(pred - actual)) <= 3

    def test_plane_clipped(self):
        plane = np.zeros((48, 48), dtype=np.int64)
        plane[:, 15] = 255
        plane[15, :] = 255
        pred = predict_block(plane, 16, 16, 16, "PLANE")
        assert np.all(pred >= 0) and np.all(pred <= 255)

    def test_unknown_mode_raises(self):
        with pytest.raises(CodecError):
            predict_block(plane_with_neighbours(), 8, 8, 8, "DDL")
