"""Tests for the observability plane: correlated events, the flight
recorder, SLO burn rates, timeline reconstruction, tail and the
OpenMetrics HTTP endpoint."""

import json
import urllib.request

import pytest

from repro.errors import (
    ConfigError,
    ObserveError,
    OriginError,
    ReproError,
    SessionAborted,
)
from repro.observe.cli import main as observe_main
from repro.observe.httpd import parse_listen, serve_metrics
from repro.observe.record import BenchRecord
from repro.observe.slo import (
    DEFAULT_SLOS,
    SLO_SCHEMA,
    SloObjective,
    evaluate_slos,
    load_slo_spec,
    render_slo_table,
)
from repro.observe.store import HistoryStore
from repro.observe.tail import (
    render_event_line,
    render_history_line,
    tail_files,
)
from repro.observe.timeline import (
    TIMELINE_SCHEMA,
    build_timeline,
    load_events_jsonl,
    load_flight_dumps,
    render_timeline,
)
from repro.telemetry import events, flightrec, trace
from repro.telemetry.events import (
    EVENT_NAMES,
    EVENT_SCHEMA,
    correlation_id,
    correlation_scope,
    current_correlation,
    emit,
)
from repro.telemetry.flightrec import FLIGHTDUMP_SCHEMA, FlightRecorder


@pytest.fixture(autouse=True)
def _telemetry_hygiene(tmp_path):
    """Every test starts and ends with telemetry off and rings clear."""
    events.disable()
    events.reset()
    trace.disable()
    trace.reset()
    original_dir = flightrec.recorder.dump_dir
    original_ring = flightrec.recorder.ring_events
    flightrec.recorder.configure(dump_dir=str(tmp_path / "flightrec"))
    yield
    events.disable()
    events.reset()
    trace.disable()
    trace.reset()
    flightrec.recorder.configure(dump_dir=original_dir,
                                 ring_events=original_ring)


class TestEventLog:
    def test_disabled_emit_is_a_noop(self):
        assert emit("session.state", state="live") is None
        assert len(events.current_log()) == 0
        # disabled emits never validate names either (the fast path).
        assert emit("not.a.registered.name") is None

    def test_enabled_emit_records_and_validates(self):
        events.enable()
        event = emit("session.state", state="live")
        assert event is not None and event.seq == 1
        with pytest.raises(ConfigError, match="unregistered event name"):
            emit("totally.made.up")

    def test_canonical_dict_excludes_wall_pid_tid(self):
        events.enable()
        event = emit("session.state", b=2, a=1)
        canonical = event.canonical_dict()
        assert canonical["schema"] == EVENT_SCHEMA
        assert set(canonical) == {"schema", "seq", "name", "correlation",
                                  "fields"}
        assert list(canonical["fields"]) == ["a", "b"]
        full = event.to_dict()
        assert {"wall", "pid", "tid"} <= set(full)

    def test_correlation_scope_nests_and_merges(self):
        with correlation_scope(run_id="r1"):
            assert current_correlation() == {"run_id": "r1"}
            with correlation_scope(cell_id="c1", run_id="r2"):
                assert current_correlation() == {"run_id": "r2",
                                                 "cell_id": "c1"}
                assert correlation_id() == "c1"  # cell beats run
                with correlation_scope(session_id="s1"):
                    assert correlation_id() == "s1"  # session beats all
            assert current_correlation() == {"run_id": "r1"}
        assert current_correlation() == {}
        assert correlation_id() is None

    def test_events_carry_the_active_scope(self):
        events.enable()
        with correlation_scope(session_id="s9"):
            event = emit("session.state", state="live")
        assert event.correlation == {"session_id": "s9"}

    def test_reset_restarts_sequence(self):
        events.enable()
        emit("session.state", state="a")
        events.reset()
        events.enable()
        assert emit("session.state", state="b").seq == 1

    def test_jsonl_export_is_bit_stable(self):
        def one_run():
            events.reset()
            events.enable()
            with correlation_scope(session_id="s0"):
                emit("session.state", state="live", t=0.25)
                emit("session.degrade", action="fec", t=0.5)
            text = events.current_log().to_jsonl(canonical=True)
            events.disable()
            return text

        assert one_run() == one_run()

    def test_bounded_log_counts_drops(self):
        events.enable(max_events=2)
        for index in range(4):
            emit("session.state", state=index)
        log = events.current_log()
        assert len(log) == 2
        assert log.dropped == 2
        log.max_events = events.DEFAULT_MAX_EVENTS


class TestReproErrorCorrelation:
    def test_scope_autofills_context(self):
        with correlation_scope(session_id="s7", cell_id="c3"):
            error = OriginError("boom")
        assert error.session_id == "s7"
        assert error.cell_id == "c3"
        assert error.correlation_id == "s7"
        context = error.to_context_dict()
        assert context["error"] == "OriginError"
        assert context["message"] == "boom"
        assert context["correlation_id"] == "s7"

    def test_run_scope_fills_correlation_only(self):
        with correlation_scope(run_id="r42"):
            error = ReproError("x")
        assert error.session_id is None
        assert error.correlation_id == "r42"

    def test_explicit_ids_win_over_scope(self):
        with correlation_scope(session_id="scope"):
            error = OriginError("x", session_id="explicit")
        assert error.session_id == "explicit"

    def test_outside_scope_stays_none(self):
        error = ReproError("x")
        assert error.correlation_id is None
        assert error.to_context_dict() == {"error": "ReproError",
                                           "message": "x"}


class TestFlightRecorder:
    def test_ring_is_bounded_per_scope(self):
        recorder = FlightRecorder(ring_events=4)
        events.enable()
        events._ring_sink = recorder.record
        with correlation_scope(session_id="s1"):
            for index in range(10):
                emit("session.state", state=index)
        events._ring_sink = None
        ring = recorder.ring("s1")
        assert len(ring) == 4
        assert [event.fields["state"] for event in ring] == [6, 7, 8, 9]
        # the global ring mirrors scoped traffic
        assert len(recorder.ring(None)) == 4

    def test_dump_is_noop_while_disabled(self, tmp_path):
        recorder = FlightRecorder(dump_dir=str(tmp_path / "fr"))
        assert recorder.dump("session.aborted") is None
        assert recorder.dumps == []

    def test_dump_writes_wellformed_document(self, tmp_path):
        events.enable()
        with correlation_scope(session_id="s2"):
            emit("session.state", state="live", t=1.0)
            error = SessionAborted("failure budget exhausted")
            path = flightrec.recorder.dump("session.aborted", error=error)
        assert path is not None
        document = json.loads(open(path, encoding="utf-8").read())
        assert document["schema"] == FLIGHTDUMP_SCHEMA
        assert document["trigger"] == "session.aborted"
        assert document["correlation_id"] == "s2"
        assert document["error"]["error"] == "SessionAborted"
        assert document["error"]["session_id"] == "s2"
        names = [event["name"] for event in document["events"]]
        assert "session.state" in names
        for event in document["events"]:
            assert {"wall", "pid", "tid"}.isdisjoint(event)

    def test_dump_captures_open_spans(self):
        events.enable()
        trace.enable()
        with correlation_scope(session_id="s3"):
            with trace.span("origin.session", session="s3"):
                emit("session.state", state="live")
                path = flightrec.recorder.dump("session.aborted")
        document = json.loads(open(path, encoding="utf-8").read())
        open_names = [span["name"] for span in document["open_spans"]]
        assert "origin.session" in open_names
        # after exit the span is no longer open
        assert flightrec.recorder.open_spans() == []


class TestSloObjectives:
    def test_validation_rejects_bad_specs(self):
        with pytest.raises(ObserveError, match="direction"):
            SloObjective(name="x", bench="b", metric="m", objective=1.0,
                         direction="sideways")
        with pytest.raises(ObserveError, match="budget"):
            SloObjective(name="x", bench="b", metric="m", objective=1.0,
                         budget=0.0)
        with pytest.raises(ObserveError, match="fast_window"):
            SloObjective(name="x", bench="b", metric="m", objective=1.0,
                         window=2, fast_window=3)

    def test_spec_file_round_trip(self, tmp_path):
        spec = tmp_path / "slo.json"
        spec.write_text(json.dumps({
            "schema": SLO_SCHEMA,
            "objectives": [obj.to_dict() for obj in DEFAULT_SLOS],
        }))
        parsed = load_slo_spec(str(spec))
        assert [obj.name for obj in parsed] == [obj.name
                                                for obj in DEFAULT_SLOS]

    def test_spec_file_rejects_wrong_schema(self, tmp_path):
        spec = tmp_path / "slo.json"
        spec.write_text(json.dumps({"schema": "nope", "objectives": []}))
        with pytest.raises(ObserveError, match="schema"):
            load_slo_spec(str(spec))

    def _seed(self, store, miss_rates):
        records = []
        for index, rate in enumerate(miss_rates):
            records.append(BenchRecord(
                run_id=f"run-{index:03d}", bench="serve",
                axes={"codec": "h264"},
                metrics={"deadline_miss_rate": rate, "graceful_rate": 1.0},
                created=1000.0 + index))
        store.append_many(records)

    def test_clean_history_yields_no_findings(self, tmp_path):
        store = HistoryStore(tmp_path / "hist")
        self._seed(store, [0.0, 0.01, 0.0, 0.015])
        statuses, findings = evaluate_slos(store)
        assert findings == []
        assert all(not status.breached for status in statuses)
        table = render_slo_table(statuses)
        assert "serve-deadline-miss" in table

    def test_planted_burn_raises_all_three_findings(self, tmp_path):
        store = HistoryStore(tmp_path / "hist")
        self._seed(store, [0.0] * 5 + [0.2, 0.25, 0.3])
        statuses, findings = evaluate_slos(store)
        ids = [finding.rule_id for finding in findings]
        assert ids == ["OBS300", "OBS301", "OBS302"]
        breached = [status for status in statuses if status.breached]
        assert breached and breached[0].budget_remaining == 0.0

    def test_cli_exit_codes(self, tmp_path, capsys):
        store = tmp_path / "hist"
        self._seed(HistoryStore(store), [0.0, 0.0, 0.0])
        assert observe_main(["slo", "--store", str(store)]) == 0
        capsys.readouterr()
        self._seed(HistoryStore(store), [0.3] * 8)
        assert observe_main(["slo", "--store", str(store),
                             "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == SLO_SCHEMA
        assert [f["rule"] for f in payload["findings"]] == [
            "OBS300", "OBS301", "OBS302"]


class TestTimeline:
    def _write_events(self, path):
        events.enable()
        with correlation_scope(session_id="s1"):
            emit("session.state", state="live", t=0.1)
            emit("session.degrade", action="fec", t=0.2)
        with correlation_scope(session_id="other"):
            emit("session.state", state="live", t=0.3)
        path.write_text(events.current_log().to_jsonl(canonical=True))

    def test_strict_schema_check(self, tmp_path):
        bad = tmp_path / "events.jsonl"
        bad.write_text('{"schema": "wrong/1", "seq": 1, "name": "x"}\n')
        with pytest.raises(ObserveError, match="schema"):
            load_events_jsonl(str(bad))

    def test_build_filters_and_orders(self, tmp_path):
        log_path = tmp_path / "events.jsonl"
        self._write_events(log_path)
        loaded = load_events_jsonl(str(log_path))
        timeline = build_timeline("s1", loaded)
        assert timeline["schema"] == TIMELINE_SCHEMA
        assert [event["name"] for event in timeline["events"]] == [
            "session.state", "session.degrade"]
        human = render_timeline(timeline)
        assert "timeline for s1" in human
        assert "session.degrade" in human

    def test_dump_events_fill_holes_and_dedupe(self, tmp_path):
        log_path = tmp_path / "events.jsonl"
        self._write_events(log_path)
        with correlation_scope(session_id="s1"):
            dump_path = flightrec.recorder.dump(
                "session.aborted", error=SessionAborted("dead"))
        loaded = load_events_jsonl(str(log_path))
        dumps = load_flight_dumps(str(tmp_path / "flightrec"))
        assert len(dumps) == 1
        timeline = build_timeline("s1", loaded, dumps)
        seqs = [event["seq"] for event in timeline["events"]]
        assert seqs == sorted(set(seqs))  # deduplicated, ordered
        assert timeline["triggers"][0]["trigger"] == "session.aborted"
        assert timeline["triggers"][0]["error"]["error"] == "SessionAborted"
        assert dump_path.endswith(".json")

    def test_reconstruction_is_deterministic(self, tmp_path):
        log_path = tmp_path / "events.jsonl"
        self._write_events(log_path)
        loaded = load_events_jsonl(str(log_path))
        first = json.dumps(build_timeline("s1", loaded), sort_keys=True)
        second = json.dumps(build_timeline("s1", loaded), sort_keys=True)
        assert first == second


class TestTail:
    def test_render_event_line(self):
        line = json.dumps({"schema": EVENT_SCHEMA, "seq": 3,
                           "name": "session.state",
                           "correlation": {"session_id": "s1"},
                           "fields": {"state": "live"}})
        rendered = render_event_line(line)
        assert rendered == "#3 [session_id=s1] session.state state=live"
        assert render_event_line("not json") is None

    def test_render_history_line(self):
        line = json.dumps({"bench": "serve", "run_id": "r1",
                           "axes": {"codec": "h264"},
                           "metrics": {"fps": 30.0}})
        rendered = render_history_line(line)
        assert "serve" in rendered and "fps=30" in rendered

    def test_one_shot_tail_keeps_last_n(self, tmp_path):
        events_path = tmp_path / "events.jsonl"
        lines = []
        for seq in range(5):
            lines.append(json.dumps({
                "schema": EVENT_SCHEMA, "seq": seq,
                "name": "session.state", "correlation": {},
                "fields": {}}))
        events_path.write_text("\n".join(lines) + "\n")
        captured = []
        count = tail_files(events_path=str(events_path), lines=2,
                           emit_line=captured.append)
        assert count == 2
        assert captured[-1].startswith("events  #4")

    def test_follow_picks_up_appends(self, tmp_path):
        events_path = tmp_path / "events.jsonl"
        events_path.write_text("")
        captured = []
        import threading

        def append_soon():
            with open(events_path, "a", encoding="utf-8") as handle:
                handle.write(json.dumps({
                    "schema": EVENT_SCHEMA, "seq": 1,
                    "name": "session.state", "correlation": {},
                    "fields": {}}) + "\n")

        timer = threading.Timer(0.05, append_soon)
        timer.start()
        try:
            count = tail_files(events_path=str(events_path), follow=True,
                               interval=0.02, max_seconds=0.5,
                               emit_line=captured.append)
        finally:
            timer.cancel()
        assert count == 1
        assert captured[0].startswith("events  #1")


class TestMetricsEndpoint:
    def test_parse_listen_validation(self):
        assert parse_listen("127.0.0.1:9100") == ("127.0.0.1", 9100)
        for bad in ("nohost", "host:notaport", "host:99999", ":8080"):
            with pytest.raises(ObserveError):
                parse_listen(bad)

    def test_scrape_serves_fresh_exposition(self, tmp_path):
        store = HistoryStore(tmp_path / "hist")
        store.append(BenchRecord(
            run_id="r1", bench="serve", axes={"codec": "h264"},
            metrics={"fps": 30.0}, created=1000.0))
        server = serve_metrics(store, "127.0.0.1:0")
        thread = server.serve_background()
        try:
            body = urllib.request.urlopen(server.url).read().decode()
            assert body.rstrip().endswith("# EOF")
            # on-scrape refresh: a record appended after bind shows up
            store.append(BenchRecord(
                run_id="r2", bench="serve", axes={"codec": "mpeg2"},
                metrics={"fps": 31.0}, created=1001.0))
            fresh = urllib.request.urlopen(server.url).read().decode()
            assert "mpeg2" in fresh
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(server.url.replace("/metrics",
                                                          "/nope"))
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)


class TestServeEventIntegration:
    """End-to-end: a seeded serve with a forced abort is reproducible."""

    def _serve(self, tmp_path, tag):
        from repro.bench.cli import main as bench_main
        store = tmp_path / f"store-{tag}"
        events_path = tmp_path / f"events-{tag}.jsonl"
        code = bench_main([
            "serve", "--clients", "6", "--seeds", "3", "--frames", "8",
            "--chaos", "1.0", "--failure-budget", "0",
            "--events", str(events_path), "--store", str(store)])
        assert code == 0
        return store, events_path

    def test_forced_abort_dump_and_reproducibility(self, tmp_path):
        store_a, events_a = self._serve(tmp_path, "a")
        store_b, events_b = self._serve(tmp_path, "b")
        assert events_a.read_text() == events_b.read_text()
        dumps_a = load_flight_dumps(str(store_a / "flightrec"))
        dumps_b = load_flight_dumps(str(store_b / "flightrec"))
        assert dumps_a, "budget-0 chaos serve must abort at least once"
        assert [d["correlation_id"] for d in dumps_a] == [
            d["correlation_id"] for d in dumps_b]
        aborted = dumps_a[0]["correlation_id"]
        timeline_a = build_timeline(
            aborted, load_events_jsonl(str(events_a)), dumps_a)
        timeline_b = build_timeline(
            aborted, load_events_jsonl(str(events_b)), dumps_b)
        assert (json.dumps(timeline_a, sort_keys=True)
                == json.dumps(timeline_b, sort_keys=True))
        assert timeline_a["events"], "the abort timeline must have events"
        assert any(trigger["trigger"] == "session.aborted"
                   for trigger in timeline_a["triggers"])
