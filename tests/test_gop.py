"""Tests for the GOP structure (I-P-B-B schedule)."""

import pytest
from hypothesis import given, strategies as st

from repro.common.gop import PAPER_GOP, CodedFrame, FrameType, GopStructure
from repro.errors import ConfigError


class TestPaperGop:
    def test_pattern_name(self):
        assert PAPER_GOP.pattern_name == "I-P-B-B"

    def test_only_first_frame_is_intra(self):
        types = PAPER_GOP.display_types(20)
        assert types[0] is FrameType.I
        assert all(t is not FrameType.I for t in types[1:])

    def test_two_bs_between_anchors(self):
        types = PAPER_GOP.display_types(10)
        assert [str(t) for t in types[:7]] == ["I", "B", "B", "P", "B", "B", "P"]

    def test_partial_tail_schedule(self):
        # 9 frames: anchors at 0, 3, 6, 8 -> frame 7 is the only tail B.
        types = PAPER_GOP.display_types(9)
        assert [str(t) for t in types] == ["I", "B", "B", "P", "B", "B", "P", "B", "P"]

    def test_last_frame_is_anchor(self):
        for count in range(1, 20):
            types = PAPER_GOP.display_types(count)
            assert types[-1].is_anchor

    def test_coding_order_anchors_before_their_bs(self):
        order = PAPER_GOP.coding_order(7)
        indices = [entry.display_index for entry in order]
        assert indices == [0, 3, 1, 2, 6, 4, 5]

    def test_b_frames_reference_surrounding_anchors(self):
        for entry in PAPER_GOP.coding_order(10):
            if entry.frame_type is FrameType.B:
                assert entry.forward_ref < entry.display_index < entry.backward_ref

    def test_p_frames_reference_previous_anchor(self):
        anchors = []
        for entry in PAPER_GOP.coding_order(10):
            if entry.frame_type is FrameType.P:
                assert entry.forward_ref == anchors[-1]
            if entry.frame_type.is_anchor:
                anchors.append(entry.display_index)

    def test_single_frame(self):
        order = PAPER_GOP.coding_order(1)
        assert len(order) == 1
        assert order[0].frame_type is FrameType.I


class TestGeneralStructures:
    def test_no_bframes_is_ip_only(self):
        gop = GopStructure(bframes=0)
        types = gop.display_types(5)
        assert [str(t) for t in types] == ["I", "P", "P", "P", "P"]
        assert gop.pattern_name == "I-P"

    def test_intra_period_forces_keyframes(self):
        gop = GopStructure(bframes=0, intra_period=2)
        types = gop.display_types(6)
        assert [str(t) for t in types] == ["I", "P", "I", "P", "I", "P"]

    def test_three_bframes(self):
        gop = GopStructure(bframes=3)
        types = gop.display_types(9)
        assert [str(t) for t in types] == ["I", "B", "B", "B", "P", "B", "B", "B", "P"]

    def test_invalid_configs(self):
        with pytest.raises(ConfigError):
            GopStructure(bframes=-1)
        with pytest.raises(ConfigError):
            GopStructure(intra_period=-2)

    def test_zero_frames_rejected(self):
        with pytest.raises(ConfigError):
            PAPER_GOP.display_types(0)


class TestCodedFrameValidation:
    def test_i_frame_takes_no_refs(self):
        with pytest.raises(ConfigError):
            CodedFrame(0, FrameType.I, forward_ref=1)

    def test_p_frame_needs_forward(self):
        with pytest.raises(ConfigError):
            CodedFrame(3, FrameType.P)

    def test_b_frame_needs_both(self):
        with pytest.raises(ConfigError):
            CodedFrame(1, FrameType.B, forward_ref=0)


class TestProperties:
    @given(st.integers(1, 200), st.integers(0, 4))
    def test_coding_order_is_permutation(self, count, bframes):
        gop = GopStructure(bframes=bframes)
        order = gop.display_order(count)
        assert sorted(order) == list(range(count))

    @given(st.integers(1, 200), st.integers(0, 4))
    def test_references_coded_before_use(self, count, bframes):
        gop = GopStructure(bframes=bframes)
        coded = set()
        for entry in gop.coding_order(count):
            if entry.forward_ref is not None:
                assert entry.forward_ref in coded
            if entry.backward_ref is not None:
                assert entry.backward_ref in coded
            coded.add(entry.display_index)

    @given(st.integers(1, 100))
    def test_paper_gop_b_fraction(self, count):
        types = PAPER_GOP.display_types(count)
        b_count = sum(1 for t in types if t is FrameType.B)
        assert b_count <= 2 * (count - b_count)
