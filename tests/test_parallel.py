"""Tests for GOP-level parallel encoding (the paper's CMP extension)."""

import pytest

from repro.codecs import CODEC_NAMES, get_decoder
from repro.common.gop import FrameType
from repro.common.metrics import sequence_psnr
from repro.errors import ConfigError
from repro.parallel import parallel_encode, split_chunks
from tests.conftest import make_moving_sequence


def fields_for(codec, video):
    fields = dict(width=video.width, height=video.height, search_range=4)
    if codec == "h264":
        fields["qp"] = 26
    elif codec == "mjpeg":
        fields["quality"] = 80
    else:
        fields["qscale"] = 5
    return fields


class TestSplitChunks:
    def test_single_chunk(self):
        assert split_chunks(10, 1) == [(0, 10)]

    def test_even_split(self):
        assert split_chunks(12, 3) == [(0, 4), (4, 8), (8, 12)]

    def test_remainder_spread(self):
        spans = split_chunks(10, 3)
        assert spans == [(0, 4), (4, 7), (7, 10)]

    def test_spans_cover_everything(self):
        for frames in (1, 3, 7, 25, 100):
            for chunks in (1, 2, 4, 8):
                spans = split_chunks(frames, chunks)
                assert spans[0][0] == 0
                assert spans[-1][1] == frames
                for (a, b), (c, d) in zip(spans, spans[1:]):
                    assert b == c

    def test_min_chunk_respected(self):
        spans = split_chunks(5, 4)
        assert all(stop - start >= 2 for start, stop in spans)

    def test_invalid_inputs(self):
        with pytest.raises(ConfigError):
            split_chunks(0, 2)
        with pytest.raises(ConfigError):
            split_chunks(10, 0)


@pytest.fixture(scope="module")
def video():
    return make_moving_sequence(width=32, height=32, frames=10, dx=1, dy=0, seed=5)


class TestParallelEncode:
    @pytest.mark.parametrize("codec", CODEC_NAMES)
    def test_single_worker_matches_serial(self, codec, video):
        from repro.codecs import get_encoder

        fields = fields_for(codec, video)
        serial = get_encoder(codec, **fields).encode_sequence(video)
        parallel = parallel_encode(codec, video, workers=1, chunks=1, **fields)
        assert len(serial.pictures) == len(parallel.pictures)
        for a, b in zip(serial.pictures, parallel.pictures):
            assert a.payload == b.payload
            assert a.display_index == b.display_index

    @pytest.mark.parametrize("codec", CODEC_NAMES)
    def test_two_chunks_decode_correctly(self, codec, video):
        fields = fields_for(codec, video)
        stream = parallel_encode(codec, video, workers=1, chunks=2, **fields)
        decoded = get_decoder(codec).decode(stream)
        assert len(decoded) == len(video)
        assert sequence_psnr(video, decoded).y > 29.0

    def test_chunk_count_creates_extra_keyframes(self, video):
        fields = fields_for("mpeg2", video)
        one = parallel_encode("mpeg2", video, workers=1, chunks=1, **fields)
        three = parallel_encode("mpeg2", video, workers=1, chunks=3, **fields)
        assert one.frame_types()[FrameType.I] == 1
        assert three.frame_types()[FrameType.I] == 3

    def test_chunking_costs_bits(self, video):
        fields = fields_for("mpeg2", video)
        one = parallel_encode("mpeg2", video, workers=1, chunks=1, **fields)
        three = parallel_encode("mpeg2", video, workers=1, chunks=3, **fields)
        assert three.total_bytes > one.total_bytes

    def test_multiprocess_workers_match_single_process(self, video):
        fields = fields_for("mpeg2", video)
        single = parallel_encode("mpeg2", video, workers=1, chunks=2, **fields)
        multi = parallel_encode("mpeg2", video, workers=2, chunks=2, **fields)
        assert all(a.payload == b.payload
                   for a, b in zip(single.pictures, multi.pictures))

    def test_h264_multiref_across_chunk_boundary(self, video):
        # The decoder's DPB holds chunk-1 anchors when chunk 2 starts; the
        # signalled L0 size keeps the reference lists consistent.
        fields = fields_for("h264", video)
        fields["ref_frames"] = 3
        stream = parallel_encode("h264", video, workers=1, chunks=2, **fields)
        decoded = get_decoder("h264").decode(stream)
        assert sequence_psnr(video, decoded).y > 29.0

    def test_display_indices_contiguous(self, video):
        stream = parallel_encode("mpeg4", video, workers=1, chunks=3,
                                 **fields_for("mpeg4", video))
        indices = sorted(p.display_index for p in stream.pictures)
        assert indices == list(range(len(video)))

    def test_invalid_workers(self, video):
        with pytest.raises(ConfigError):
            parallel_encode("mpeg2", video, workers=0,
                            **fields_for("mpeg2", video))
