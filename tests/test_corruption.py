"""Failure injection: corrupted streams must raise clean errors, not crash.

Decoders consume untrusted bytes; every corruption must surface as a
:class:`ReproError` subclass (usually :class:`BitstreamError`) — never an
IndexError/ValueError from deep inside a kernel — or, when the damage
happens to decode into valid syntax, produce a frame-count-correct result.
"""

import pytest

from repro.codecs import (
    CODEC_NAMES,
    EXTENSION_CODEC_NAMES,
    container,
    get_decoder,
    get_encoder,
)
from repro.codecs.base import EncodedPicture, EncodedVideo
from repro.common.gop import FrameType
from repro.errors import ReproError


def encoded(tiny_video, codec):
    fields = dict(width=tiny_video.width, height=tiny_video.height, search_range=4)
    if codec == "h264":
        fields["qp"] = 26
    elif codec == "mjpeg":
        fields["quality"] = 80
    else:
        fields["qscale"] = 5
    return get_encoder(codec, **fields).encode_sequence(tiny_video)


def try_decode(codec, stream):
    try:
        result = get_decoder(codec).decode(stream)
    except ReproError:
        return None
    return result


@pytest.mark.parametrize("codec", CODEC_NAMES + EXTENSION_CODEC_NAMES)
class TestCorruption:
    def test_truncated_payload(self, codec, tiny_video):
        stream = encoded(tiny_video, codec)
        stream.pictures[0] = EncodedPicture(
            stream.pictures[0].payload[: len(stream.pictures[0].payload) // 3],
            stream.pictures[0].display_index,
            stream.pictures[0].frame_type,
        )
        result = try_decode(codec, stream)
        assert result is None or len(result) == len(tiny_video)

    def test_bit_flips_do_not_crash(self, codec, tiny_video):
        stream = encoded(tiny_video, codec)
        for position in (1, 7, 19, 53):
            pictures = list(stream.pictures)
            payload = bytearray(pictures[0].payload)
            if position < len(payload):
                payload[position] ^= 0xFF
            pictures[0] = EncodedPicture(bytes(payload), pictures[0].display_index,
                                         pictures[0].frame_type)
            corrupted = EncodedVideo(
                codec=stream.codec, width=stream.width, height=stream.height,
                fps=stream.fps, pictures=pictures,
            )
            result = try_decode(codec, corrupted)
            assert result is None or len(result) == len(tiny_video)

    def test_empty_payload(self, codec, tiny_video):
        stream = encoded(tiny_video, codec)
        stream.pictures[0] = EncodedPicture(b"", 0, FrameType.I)
        assert try_decode(codec, stream) is None

    def test_missing_pictures(self, codec, tiny_video):
        stream = encoded(tiny_video, codec)
        stream.pictures = stream.pictures[:1]
        result = try_decode(codec, stream)
        # A lone I picture may decode fine (1 frame) or fail cleanly.
        assert result is None or len(result) == 1

    def test_reordered_pictures(self, codec, tiny_video):
        stream = encoded(tiny_video, codec)
        stream.pictures = list(reversed(stream.pictures))
        result = try_decode(codec, stream)
        assert result is None or len(result) == len(tiny_video)

    def test_empty_stream(self, codec, tiny_video):
        stream = encoded(tiny_video, codec)
        stream.pictures = []
        assert try_decode(codec, stream) is None

    def test_duplicate_display_indices(self, codec, tiny_video):
        stream = encoded(tiny_video, codec)
        first = stream.pictures[0]
        stream.pictures = [first, EncodedPicture(first.payload, 0, first.frame_type)]
        assert try_decode(codec, stream) is None


class TestContainerCorruption:
    def test_random_bytes_rejected(self):
        import random

        rng = random.Random(0)
        for _ in range(20):
            blob = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 64)))
            with pytest.raises(ReproError):
                container.unpack(blob)

    def test_header_flips_rejected_or_parse(self, tiny_video):
        stream = encoded(tiny_video, "mpeg2")
        data = bytearray(container.pack(stream))
        for position in range(0, min(len(data), 16)):
            mutated = bytearray(data)
            mutated[position] ^= 0x5A
            try:
                container.unpack(bytes(mutated))
            except ReproError:
                pass  # clean rejection is the expected common case


@pytest.mark.parametrize("codec", CODEC_NAMES + EXTENSION_CODEC_NAMES)
class TestErrorContext:
    """Strict decode failures carry codec, picture index and bit position."""

    def decode_error(self, codec, stream):
        try:
            get_decoder(codec).decode(stream)
        except ReproError as error:
            return error
        return None

    def test_empty_payload_error_has_full_context(self, codec, tiny_video):
        stream = encoded(tiny_video, codec)
        stream.pictures[0] = EncodedPicture(b"", 0, FrameType.I)
        error = self.decode_error(codec, stream)
        assert error is not None
        assert error.has_decode_context()
        assert error.codec == codec
        assert error.picture_index == 0
        assert f"codec={codec}" in str(error)

    def test_truncation_is_distinguished(self, codec, tiny_video):
        from repro.errors import TruncationError

        stream = encoded(tiny_video, codec)
        stream.pictures[0] = EncodedPicture(b"", 0, FrameType.I)
        error = self.decode_error(codec, stream)
        assert isinstance(error, TruncationError)

    def test_bit_flip_error_context_points_at_picture(self, codec, tiny_video):
        stream = encoded(tiny_video, codec)
        for position in (1, 7, 19, 53):
            pictures = list(stream.pictures)
            payload = bytearray(pictures[1].payload)
            if position < len(payload):
                payload[position] ^= 0xFF
            pictures[1] = EncodedPicture(bytes(payload), pictures[1].display_index,
                                         pictures[1].frame_type)
            corrupted = EncodedVideo(
                codec=stream.codec, width=stream.width, height=stream.height,
                fps=stream.fps, pictures=pictures,
            )
            error = self.decode_error(codec, corrupted)
            if error is not None:
                assert error.has_decode_context(), (position, repr(error))
                assert error.codec == codec
