"""Tests for ``repro.chaos`` — fault injection, fsck and crash recovery.

Four layers:

* the seeded :class:`FaultPlan` is deterministic (same seed → same fault
  sequence) and validates itself loudly;
* every injected fault class surfaces as a contextful ``ReproError``
  from the production code paths, never an unhandled crash;
* fsck detects each planted corruption (torn tail, mangled line,
  bit-flipped artifact, orphan temp, stale lock), repairs to a clean
  re-check, and never touches a healthy store or cache;
* the forked-process crash matrix proves, for every registered crash
  point: kill → ``fsck --repair`` → resume yields records bit-identical
  to an uninterrupted run.
"""

from __future__ import annotations

import base64
import json
import multiprocessing
import os
import time
from pathlib import Path

import pytest

from repro.chaos import (
    CRASH_EXIT_CODE,
    CRASH_POINTS,
    FAULT_KINDS,
    ChaosFS,
    FaultPlan,
    activate,
    crash_point,
    fileops,
)
from repro.chaos.harness import DEFAULT_SPEC, run_matrix, scenario_for
from repro.errors import (
    ChaosError,
    CrashInjected,
    ObserveError,
    OrchestrateError,
    ReproError,
)
from repro.observe.fsck import FSCK_SCHEMA, QUARANTINE_SCHEMA, fsck_store
from repro.observe.record import BenchRecord, RunInfo
from repro.observe.store import HistoryStore
from repro.orchestrate.artifacts import ArtifactCache, cell_fingerprint
from repro.orchestrate.cache_cli import main as cache_main
from repro.orchestrate.fsck import fsck_cache
from repro.orchestrate.scheduler import run_cells
from repro.orchestrate.spec import parse_spec
from repro.observe.cli import main as observe_main


def record(run="r1", **axes):
    return BenchRecord(run_id=run, bench="performance",
                       axes=axes or {"codec": "mpeg2"},
                       metrics={"fps": 100.0}, created=0.0)


def _tiny_stream():
    from repro.codecs import get_encoder
    from repro.sequences import generate_sequence

    video = generate_sequence("blue_sky", "576p25", frames=2, scale=(1, 16))
    encoder = get_encoder("mjpeg", width=video.width, height=video.height)
    return encoder.encode_sequence(video)


def _committed_entry(tmp_path, name="cache"):
    """A cache with one committed entry; returns (cache, entry_dir)."""
    cache = ArtifactCache(str(tmp_path / name))
    fingerprint = cell_fingerprint("mjpeg", "seq-hash", {"qscale": 8}, 1)
    entry, hit = cache.ensure(fingerprint,
                              lambda: (_tiny_stream(), {"psnr_db": 30.0}))
    assert not hit
    return cache, entry.path


def _require_fork():
    if "fork" not in multiprocessing.get_all_start_methods():
        pytest.skip("fork start method unavailable")


# ----------------------------------------------------------------------
# the fault plan
# ----------------------------------------------------------------------


class TestFaultPlan:
    def test_same_seed_same_fault_sequence(self):
        def draw_all(seed):
            plan = FaultPlan(seed=seed, rate=0.5)
            return [(fault.kind, fault.op) if fault else None
                    for fault in (plan.draw("write", "f") for _ in range(64))]

        assert draw_all(7) == draw_all(7)
        assert draw_all(7) != draw_all(8)

    def test_rate_zero_never_faults(self):
        plan = FaultPlan(seed=0, rate=0.0)
        assert all(plan.draw("write") is None for _ in range(32))

    def test_max_faults_caps_the_stream(self):
        plan = FaultPlan(seed=0, rate=1.0, max_faults=3)
        faults = [plan.draw("write") for _ in range(10)]
        assert sum(1 for fault in faults if fault is not None) == 3

    def test_untargeted_op_passes_through(self):
        plan = FaultPlan(seed=0, rate=1.0, ops=["fsync"])
        assert plan.draw("write") is None
        assert plan.draw("fsync") is not None

    def test_crash_at_fires_on_the_armed_hit_only(self):
        plan = FaultPlan().crash_at("store.append.pre_write", hit=2)
        assert not plan.should_crash("store.append.pre_write")
        assert plan.should_crash("store.append.pre_write")
        assert not plan.should_crash("store.append.pre_write")
        assert not plan.should_crash("store.append.post_write")

    def test_unregistered_crash_point_is_chaos_error(self):
        with pytest.raises(ChaosError, match="unregistered crash point"):
            FaultPlan().crash_at("store.append.pre_repalce")
        try:
            FaultPlan().crash_at("no.such.point")
        except ChaosError as error:
            assert error.crash_point == "no.such.point"

    def test_plan_validation(self):
        with pytest.raises(ChaosError, match="unknown fault kind"):
            FaultPlan(kinds=["meteor_strike"])
        with pytest.raises(ChaosError, match="unknown fault op"):
            FaultPlan(ops=["chmod"])
        with pytest.raises(ChaosError, match="rate"):
            FaultPlan(rate=1.5)
        with pytest.raises(ChaosError, match="max_faults"):
            FaultPlan(max_faults=-1)

    def test_registry_is_frozen_and_scenario_mapped(self):
        assert len(CRASH_POINTS) == len(set(CRASH_POINTS)) == 11
        for point in CRASH_POINTS:
            assert scenario_for(point) in ("run", "compact")


# ----------------------------------------------------------------------
# injected faults surface as contextful errors, not crashes
# ----------------------------------------------------------------------


class TestInjectedFaults:
    def test_fileops_is_passthrough_without_activation(self, tmp_path):
        assert fileops() is fileops()
        crash_point("store.append.pre_write")    # no-op, must not raise

    def test_crash_point_validates_even_in_production(self):
        with pytest.raises(ChaosError, match="unregistered"):
            crash_point("store.append.pre_repalce")

    def test_enospc_on_append_becomes_observe_error(self, tmp_path):
        store = HistoryStore(str(tmp_path / "hist"))
        plan = FaultPlan(seed=0, rate=1.0, kinds=["enospc"], ops=["open"],
                         max_faults=1)
        with activate(ChaosFS(plan)):
            with pytest.raises(ObserveError, match="cannot open history"):
                store.append(record())
        assert plan.injected[0].kind == "enospc"
        # the key stays usable once the disk "recovers"
        store.append(record())
        assert len(store.load()) == 1

    def test_io_error_on_write_becomes_observe_error(self, tmp_path):
        store = HistoryStore(str(tmp_path / "hist"))
        plan = FaultPlan(seed=0, rate=1.0, kinds=["oserror"], ops=["write"],
                         max_faults=1)
        with activate(ChaosFS(plan)):
            with pytest.raises(ObserveError, match="append .* failed"):
                store.append(record())

    def test_short_write_detected_not_silent(self, tmp_path):
        store = HistoryStore(str(tmp_path / "hist"))
        plan = FaultPlan(seed=0, rate=1.0, kinds=["short_write"],
                         ops=["write"], max_faults=1)
        with activate(ChaosFS(plan)):
            with pytest.raises(ObserveError, match="short write"):
                store.append(record())
        # the torn prefix is on disk -- exactly what fsck must find
        assert store.load() == []
        assert store.malformed and store.malformed[0].reason == "truncated-tail"

    def test_fsync_lie_is_counted_and_non_fatal(self, tmp_path):
        store = HistoryStore(str(tmp_path / "hist"))
        store.append_many([record(run=f"r{i}", qp=i) for i in range(3)])
        plan = FaultPlan(seed=0, rate=1.0, kinds=["fsync_lie"],
                         ops=["fsync"])
        with activate(ChaosFS(plan)) as fs:
            assert store.compact(keep_last=1) == 0   # distinct axes: no-op
            store2 = HistoryStore(str(tmp_path / "hist2"))
            store2.append_many([record(run=f"r{i}") for i in range(3)])
            assert store2.compact(keep_last=1) == 2
            assert fs.fsync_lies == 1
        assert len(store2.load()) == 1

    def test_lock_busy_exercises_the_flight_wait_path(self, tmp_path):
        cache = ArtifactCache(str(tmp_path / "cache"), poll_seconds=0.01)
        fingerprint = cell_fingerprint("mjpeg", "h", {"qscale": 8}, 1)
        plan = FaultPlan(seed=0, rate=1.0, kinds=["lock_busy"],
                         ops=["open"], max_faults=1)
        with activate(ChaosFS(plan)):
            entry, hit = cache.ensure(
                fingerprint, lambda: (_tiny_stream(), {"psnr_db": 30.0}))
        assert not hit
        assert cache.flight_waits == 1      # the phantom leader was waited on
        assert entry.metrics == {"psnr_db": 30.0}

    def test_crash_injected_carries_point_and_path(self, tmp_path):
        store = HistoryStore(str(tmp_path / "hist"))
        plan = FaultPlan().crash_at("store.append.pre_write")
        with activate(ChaosFS(plan)):
            with pytest.raises(CrashInjected) as excinfo:
                store.append(record())
        assert excinfo.value.crash_point == "store.append.pre_write"
        assert str(store.path) in str(excinfo.value)
        assert isinstance(excinfo.value, ChaosError)
        assert isinstance(excinfo.value, ReproError)

    def test_execute_cell_never_swallows_crash_injected(self, tmp_path):
        from repro.orchestrate.scheduler import execute_cell
        from repro.orchestrate.spec import expand_cells

        spec = parse_spec(DEFAULT_SPEC)
        cell = expand_cells(spec)[0]
        plan = FaultPlan().crash_at("scheduler.cell.pre_execute")
        with activate(ChaosFS(plan)):
            with pytest.raises(CrashInjected):
                execute_cell(cell, ArtifactCache(str(tmp_path / "cache")))

    def test_mid_write_tear_leaves_half_a_line(self, tmp_path):
        store = HistoryStore(str(tmp_path / "hist"))
        store.append(record(run="good"))
        plan = FaultPlan().crash_at("store.append.mid_write")
        with activate(ChaosFS(plan)):
            with pytest.raises(CrashInjected):
                store.append(record(run="torn"))
        assert [r.run_id for r in store.load()] == ["good"]
        assert store.malformed[0].reason == "truncated-tail"
        assert store.malformed[0].offset > 0


# ----------------------------------------------------------------------
# store fsck
# ----------------------------------------------------------------------


class TestStoreFsck:
    def _dirty_store(self, tmp_path):
        store = HistoryStore(str(tmp_path / "hist"))
        store.append(record(run="good-1"))
        with open(store.path, "a", encoding="utf-8") as handle:
            handle.write('{"mangled\n')
        store.append(record(run="good-2"))
        with open(store.path, "ab") as handle:
            handle.write(b'{"schema":"repro.observe.record/1","half')
        return store

    def test_healthy_store_untouched(self, tmp_path):
        store = HistoryStore(str(tmp_path / "hist"))
        store.append_many([record(run=f"r{i}") for i in range(3)])
        before = store.path.read_bytes()
        assert fsck_store(store, repair=True) == []
        assert store.path.read_bytes() == before
        assert not store.quarantine_path.exists()

    def test_detects_each_planted_corruption(self, tmp_path):
        store = self._dirty_store(tmp_path)
        store.compact_tmp_path.write_bytes(b"debris")
        findings = fsck_store(store)
        assert [f.rule_id for f in findings] == ["FSCK301", "FSCK302",
                                                 "FSCK303"]
        assert "offset" in findings[0].message

    def test_repair_quarantines_and_preserves_good_bytes(self, tmp_path):
        store = self._dirty_store(tmp_path)
        good_lines = [line for line in store.path.read_bytes().splitlines(True)
                      if line.startswith(b'{"axes"') or b'"fps"' in line]
        findings = fsck_store(store, repair=True)
        assert len(findings) == 2
        assert fsck_store(store) == []
        # good records survived byte-identically, bad ranges quarantined
        assert store.path.read_bytes() == b"".join(good_lines)
        assert [r.run_id for r in store.load()] == ["good-1", "good-2"]
        envelopes = [json.loads(line) for line in
                     store.quarantine_path.read_text().splitlines()]
        assert [e["schema"] for e in envelopes] == [QUARANTINE_SCHEMA] * 2
        assert base64.b64decode(envelopes[0]["data"]) == b'{"mangled'
        assert envelopes[1]["reason"] == "truncated-tail"

    def test_repair_deletes_orphan_compact_temp(self, tmp_path):
        store = HistoryStore(str(tmp_path / "hist"))
        store.append(record())
        store.compact_tmp_path.write_bytes(b"debris")
        findings = fsck_store(store, repair=True)
        assert [f.rule_id for f in findings] == ["FSCK303"]
        assert not store.compact_tmp_path.exists()
        assert fsck_store(store) == []

    def test_malformed_lines_have_exact_offsets(self, tmp_path):
        store = self._dirty_store(tmp_path)
        raw = store.path.read_bytes()
        store.scan()
        for bad in store.malformed:
            assert raw[bad.offset:bad.offset + bad.length].startswith(bad.data)

    def test_cli_exit_codes_and_json_schema(self, tmp_path, capsys):
        store = self._dirty_store(tmp_path)
        assert observe_main(["fsck", "--store", str(store.root),
                             "--format", "json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == FSCK_SCHEMA
        assert document["summary"]["by_rule"] == {"FSCK301": 1, "FSCK302": 1}
        assert observe_main(["fsck", "--repair",
                             "--store", str(store.root)]) == 0
        assert observe_main(["fsck", "--store", str(store.root)]) == 0


# ----------------------------------------------------------------------
# cache fsck
# ----------------------------------------------------------------------


class TestCacheFsck:
    def test_healthy_cache_untouched(self, tmp_path):
        cache, entry_dir = _committed_entry(tmp_path)
        before = {path: path.read_bytes()
                  for path in entry_dir.iterdir()}
        assert fsck_cache(cache, repair=True) == []
        assert {path: path.read_bytes()
                for path in entry_dir.iterdir()} == before

    def test_bit_flip_quarantined(self, tmp_path):
        cache, entry_dir = _committed_entry(tmp_path)
        artifact = entry_dir / "artifact.hdvb"
        payload = bytearray(artifact.read_bytes())
        payload[len(payload) // 2] ^= 0x40
        artifact.write_bytes(bytes(payload))
        findings = fsck_cache(cache, repair=True)
        assert [f.rule_id for f in findings] == ["FSCK312"]
        assert fsck_cache(cache) == []
        assert not entry_dir.exists()
        quarantined = cache.root / "quarantine" / entry_dir.name
        assert (quarantined / "artifact.hdvb").is_file()
        # the fingerprint misses now -- a rerun re-produces it
        assert cache.get(entry_dir.name) is None

    def test_uncommitted_entry_deleted(self, tmp_path):
        cache, entry_dir = _committed_entry(tmp_path)
        (entry_dir / "meta.json").unlink()
        findings = fsck_cache(cache, repair=True)
        assert [f.rule_id for f in findings] == ["FSCK310"]
        assert not entry_dir.exists()
        assert fsck_cache(cache) == []

    def test_corrupt_meta_quarantined(self, tmp_path):
        cache, entry_dir = _committed_entry(tmp_path)
        (entry_dir / "meta.json").write_text("{not json")
        findings = fsck_cache(cache, repair=True)
        assert [f.rule_id for f in findings] == ["FSCK311"]
        assert fsck_cache(cache) == []

    def test_orphan_temp_deleted(self, tmp_path):
        cache, entry_dir = _committed_entry(tmp_path)
        orphan = entry_dir / "artifact.hdvb.tmp"
        orphan.write_bytes(b"half")
        shard_orphan = entry_dir.parent / "stray.tmp"
        shard_orphan.write_bytes(b"half")
        findings = fsck_cache(cache, repair=True)
        assert [f.rule_id for f in findings] == ["FSCK313", "FSCK313"]
        assert not orphan.exists() and not shard_orphan.exists()
        assert fsck_cache(cache) == []

    def test_stale_lock_broken_and_counted(self, tmp_path):
        cache, entry_dir = _committed_entry(tmp_path)
        lock = entry_dir.parent / (entry_dir.name + ".lock")
        lock.write_text("12345\n")
        hour_ago = time.time() - 3600.0
        os.utime(lock, (hour_ago, hour_ago))
        reported = fsck_cache(cache)        # check-only reports, keeps lock
        assert [f.rule_id for f in reported] == ["FSCK314"]
        assert lock.exists()
        assert cache.stale_locks_broken == 0
        findings = fsck_cache(cache, repair=True)
        assert [f.rule_id for f in findings] == ["FSCK314"]
        assert not lock.exists()
        assert cache.stale_locks_broken == 1
        assert cache.stats()["stale_locks_broken"] == 1

    def test_fresh_lock_respected_unless_lock_age_zero(self, tmp_path):
        cache, entry_dir = _committed_entry(tmp_path)
        lock = entry_dir.parent / (entry_dir.name + ".lock")
        lock.write_text("12345\n")
        assert fsck_cache(cache) == []              # an active leader
        findings = fsck_cache(cache, repair=True, lock_age=0.0)
        assert [f.rule_id for f in findings] == ["FSCK314"]
        assert not lock.exists()

    def test_missing_digest_upgraded_in_place(self, tmp_path):
        cache, entry_dir = _committed_entry(tmp_path)
        meta_path = entry_dir / "meta.json"
        meta = json.loads(meta_path.read_text())
        expected = meta.pop("sha256")
        meta_path.write_text(json.dumps(meta))
        findings = fsck_cache(cache, repair=True)
        assert [f.rule_id for f in findings] == ["FSCK315"]
        assert fsck_cache(cache) == []
        assert json.loads(meta_path.read_text())["sha256"] == expected

    def test_cli_exit_codes_and_stats(self, tmp_path, capsys):
        cache, entry_dir = _committed_entry(tmp_path)
        (entry_dir / "meta.json").write_text("{not json")
        root = str(cache.root)
        assert cache_main(["fsck", "--cache", root, "--format", "json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == FSCK_SCHEMA
        assert cache_main(["fsck", "--repair", "--cache", root]) == 0
        assert cache_main(["fsck", "--cache", root]) == 0
        assert cache_main(["stats", "--cache", root]) == 0
        assert "1 quarantined" in capsys.readouterr().out


# ----------------------------------------------------------------------
# recovery end to end
# ----------------------------------------------------------------------


class TestCrashRecovery:
    def test_quarantined_record_is_retryable(self, tmp_path):
        spec = parse_spec(DEFAULT_SPEC)
        store = HistoryStore(str(tmp_path / "store"))
        cache = ArtifactCache(str(tmp_path / "cache"))
        info = RunInfo(run_id="chaos-run")
        run_cells(spec, store, info, cache=cache)
        reference = sorted(store.path.read_bytes().splitlines(True))

        # mangle the first cell's record, as a torn write would
        lines = store.path.read_bytes().splitlines(True)
        store.path.write_bytes(lines[0][: len(lines[0]) // 2] + b"\n"
                               + b"".join(lines[1:]))
        assert fsck_store(store, repair=True)
        resumed = run_cells(spec, store, info, cache=cache)
        assert len(resumed.results) == 1        # only the quarantined cell
        assert len(resumed.skipped) == 1
        assert resumed.results[0].cache_hit     # artifact survived untouched
        assert sorted(store.path.read_bytes().splitlines(True)) == reference

    def test_crash_point_matrix_recovers_bit_identically(self, tmp_path):
        _require_fork()
        proofs = run_matrix(work_dir=tmp_path / "matrix")
        assert len(proofs) == len(CRASH_POINTS)
        for proof in proofs:
            assert proof.child_exit == CRASH_EXIT_CODE, proof.render()
            assert proof.recheck_clean, proof.render()
            assert proof.identical, proof.render()

    def test_fault_kinds_catalogue_is_frozen(self):
        assert FAULT_KINDS == ("oserror", "enospc", "short_write",
                               "fsync_lie", "lock_busy")


# ----------------------------------------------------------------------
# crash points leave a flight-record post-mortem behind
# ----------------------------------------------------------------------


class TestCrashFlightDumps:
    """An injected crash, with telemetry on, dumps the flight ring
    before dying — and the dump reconstructs the same timeline twice."""

    @pytest.fixture(autouse=True)
    def _telemetry(self, tmp_path):
        from repro.telemetry import events, flightrec

        events.disable()
        events.reset()
        original = flightrec.recorder.dump_dir
        flightrec.recorder.configure(dump_dir=str(tmp_path / "flightrec"))
        yield
        events.disable()
        events.reset()
        flightrec.recorder.configure(dump_dir=original)

    def _crash_once(self, tmp_path, point, tag):
        """Arm `point`, crash a store write, return the dump document."""
        from repro.observe.timeline import load_flight_dumps
        from repro.telemetry import events, flightrec
        from repro.telemetry.events import correlation_scope, emit

        dump_dir = tmp_path / f"flightrec-{tag}"
        events.reset()
        flightrec.recorder.configure(dump_dir=str(dump_dir))
        events.enable()
        # The store path is part of the crash event, so both runs use
        # the same one; only the dump directories are distinct.
        store = HistoryStore(str(tmp_path / "hist"))
        if point == "store.compact.pre_replace":
            store.append_many([record(run=f"r{i}") for i in range(3)])
        plan = FaultPlan().crash_at(point)
        with correlation_scope(run_id="crash-run"):
            emit("session.state", state="writing", t=0.0)
            with activate(ChaosFS(plan)):
                with pytest.raises(CrashInjected):
                    if point == "store.compact.pre_replace":
                        store.compact(keep_last=1)
                    else:
                        store.append(record())
        events.disable()
        dumps = load_flight_dumps(str(dump_dir))
        assert len(dumps) == 1
        return dumps[0]

    @pytest.mark.parametrize("point", ["store.append.pre_write",
                                       "store.compact.pre_replace"])
    def test_crash_point_dumps_wellformed_postmortem(self, tmp_path, point):
        dump = self._crash_once(tmp_path, point, "a")
        assert dump["schema"] == "repro.telemetry.flightdump/1"
        assert dump["trigger"] == "crash.injected"
        assert dump["correlation_id"] == "crash-run"
        assert dump["extra"]["crash_point"] == point
        names = [event["name"] for event in dump["events"]]
        assert "session.state" in names
        assert "crash.injected" in names
        for event in dump["events"]:
            assert event["schema"] == "repro.telemetry.event/1"
            assert {"wall", "pid", "tid"}.isdisjoint(event)

    def test_crash_timeline_reconstructs_identically(self, tmp_path):
        from repro.observe.timeline import build_timeline

        point = "store.append.pre_write"
        first = self._crash_once(tmp_path, point, "a")
        second = self._crash_once(tmp_path, point, "b")
        timelines = [
            json.dumps(build_timeline("crash-run", dumps=[dump]),
                       sort_keys=True)
            for dump in (first, second)]
        assert timelines[0] == timelines[1]
        reconstructed = json.loads(timelines[0])
        assert [event["name"] for event in reconstructed["events"]] == [
            "session.state", "crash.injected"]
