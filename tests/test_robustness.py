"""Unit tests for the robustness subsystem (repro.robustness).

Covers the four layers: fault injection, decode guards / error
normalisation, concealment strategies, and the hardened decode engine,
plus the hardened parallel-encode fallback path.
"""

import pickle
import warnings
from concurrent.futures import TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool

import numpy as np
import pytest

from repro.codecs import get_decoder, get_encoder
from repro.codecs.base import EncodedPicture
from repro.codecs.frames import WorkingFrame
from repro.common.gop import FrameType
from repro.errors import (
    BitstreamError,
    CodecError,
    ConcealmentEvent,
    ConfigError,
    ReproError,
    TruncationError,
)
from repro.me.types import MotionVector
from repro.parallel import parallel_encode
from repro.robustness import (
    CONCEAL_STRATEGIES,
    FAULT_MODELS,
    FaultInjector,
    decode_stream,
    get_concealer,
    normalize_decode_error,
)
from repro.robustness.conceal import (
    GREY_LEVEL,
    CopyLastConcealer,
    GreyConcealer,
    MotionConcealer,
    SkipConcealer,
    estimate_global_motion,
)
from repro.robustness.guard import (
    check_header,
    check_motion_vector,
    check_payload_present,
    check_stream_geometry,
    read_frame_type,
)
from repro.robustness.inject import (
    burst_flip,
    drop_picture,
    erase_payload,
    flip_bit,
    swap_payloads,
    truncate_payload,
)
from repro.common.bitstream import BitReader, BitWriter

from conftest import make_moving_sequence


def encode_tiny(tiny_video, codec="mpeg2"):
    fields = dict(width=tiny_video.width, height=tiny_video.height, search_range=4)
    if codec == "h264":
        fields["qp"] = 26
    elif codec == "mjpeg":
        fields["quality"] = 80
        del fields["search_range"]
    else:
        fields["qscale"] = 5
    return get_encoder(codec, **fields).encode_sequence(tiny_video)


# ---------------------------------------------------------------------------
# Fault injection
# ---------------------------------------------------------------------------

class TestInjection:
    def test_functions_are_pure(self, tiny_video):
        stream = encode_tiny(tiny_video)
        before = [bytes(p.payload) for p in stream.pictures]
        flip_bit(stream, 0, 3)
        burst_flip(stream, 1, 0, 16)
        truncate_payload(stream, 0, 4)
        erase_payload(stream, 2)
        swap_payloads(stream, 0, 1)
        drop_picture(stream, 1)
        assert [bytes(p.payload) for p in stream.pictures] == before

    def test_flip_bit_flips_exactly_one_bit(self, tiny_video):
        stream = encode_tiny(tiny_video)
        corrupted = flip_bit(stream, 0, 10)
        original = stream.pictures[0].payload
        mutated = corrupted.pictures[0].payload
        diff = [a ^ b for a, b in zip(original, mutated)]
        assert sum(bin(d).count("1") for d in diff) == 1
        assert diff[1] == 0x80 >> 2  # bit 10 = byte 1, bit 2 (MSB first)

    def test_burst_clamps_at_payload_end(self, tiny_video):
        stream = encode_tiny(tiny_video)
        total_bits = 8 * len(stream.pictures[0].payload)
        corrupted = burst_flip(stream, 0, total_bits - 4, 32)
        assert len(corrupted.pictures[0].payload) == len(stream.pictures[0].payload)

    def test_truncate_and_erase(self, tiny_video):
        stream = encode_tiny(tiny_video)
        assert len(truncate_payload(stream, 0, 5).pictures[0].payload) == 5
        assert erase_payload(stream, 0).pictures[0].payload == b""

    def test_swap_keeps_metadata(self, tiny_video):
        stream = encode_tiny(tiny_video)
        corrupted = swap_payloads(stream, 0, 1)
        assert corrupted.pictures[0].payload == stream.pictures[1].payload
        assert corrupted.pictures[0].display_index == stream.pictures[0].display_index
        assert corrupted.pictures[0].frame_type is stream.pictures[0].frame_type

    def test_drop_removes_one_picture(self, tiny_video):
        stream = encode_tiny(tiny_video)
        assert len(drop_picture(stream, 1).pictures) == len(stream.pictures) - 1

    def test_out_of_range_indices_rejected(self, tiny_video):
        stream = encode_tiny(tiny_video)
        with pytest.raises(ConfigError):
            flip_bit(stream, 99, 0)
        with pytest.raises(ConfigError):
            flip_bit(stream, 0, 10 ** 9)
        with pytest.raises(ConfigError):
            truncate_payload(stream, 0, -1)

    def test_injector_is_deterministic(self, tiny_video):
        stream = encode_tiny(tiny_video)
        faults_a = [f for _, f in FaultInjector(seed=5).sweep(stream, 12)]
        faults_b = [f for _, f in FaultInjector(seed=5).sweep(stream, 12)]
        assert faults_a == faults_b
        faults_c = [f for _, f in FaultInjector(seed=6).sweep(stream, 12)]
        assert faults_a != faults_c

    def test_injector_model_restriction(self, tiny_video):
        stream = encode_tiny(tiny_video)
        injector = FaultInjector(seed=0, models=("truncate",))
        for _, fault in injector.sweep(stream, 5):
            assert fault.model == "truncate"
        with pytest.raises(ConfigError):
            FaultInjector(models=("gamma-ray",))

    def test_drop_never_hits_last_display_frame(self, tiny_video):
        stream = encode_tiny(tiny_video)
        last = max(p.display_index for p in stream.pictures)
        injector = FaultInjector(seed=0, models=("drop",))
        for corrupted, fault in injector.sweep(stream, 20):
            assert fault.display_index != last
            assert max(p.display_index for p in corrupted.pictures) == last

    def test_every_model_reachable(self, tiny_video):
        stream = encode_tiny(tiny_video)
        injector = FaultInjector(seed=1)
        seen = {fault.model for _, fault in injector.sweep(stream, 80)}
        assert seen == set(FAULT_MODELS)


# ---------------------------------------------------------------------------
# Guards and error normalisation
# ---------------------------------------------------------------------------

class TestGuards:
    def test_raw_exception_is_wrapped(self):
        error = normalize_decode_error(
            IndexError("boom"), codec="mpeg2", picture_index=3,
            frame_type=FrameType.P, bit_position=17,
        )
        assert isinstance(error, BitstreamError)
        assert isinstance(error.__cause__, IndexError)
        assert error.codec == "mpeg2"
        assert error.picture_index == 3
        assert error.bit_position == 17
        assert error.has_decode_context()

    def test_repro_error_keeps_class_and_message(self):
        original = TruncationError("payload ends early")
        error = normalize_decode_error(
            original, codec="h264", picture_index=0, bit_position=5,
        )
        assert error is original
        assert isinstance(error, TruncationError)
        assert error.message == "payload ends early"
        assert error.has_decode_context()

    def test_existing_context_not_overwritten(self):
        original = BitstreamError("bad", codec="vc1", picture_index=9)
        error = normalize_decode_error(
            original, codec="mpeg2", picture_index=1, bit_position=2,
        )
        assert error.codec == "vc1"
        assert error.picture_index == 9
        assert error.bit_position == 2  # only the missing field is filled

    def test_read_frame_type(self):
        writer = BitWriter()
        writer.write_bits(1, 2)  # P
        writer.write_bits(3, 2)  # invalid code
        reader = BitReader(writer.to_bytes())
        assert read_frame_type(reader) is FrameType.P
        with pytest.raises(BitstreamError, match="invalid picture type"):
            read_frame_type(reader)

    def test_read_frame_type_metadata_mismatch(self):
        writer = BitWriter()
        writer.write_bits(0, 2)  # I
        reader = BitReader(writer.to_bytes())
        with pytest.raises(BitstreamError, match="disagrees with container"):
            read_frame_type(reader, expected=FrameType.B)

    def test_check_header(self):
        assert check_header("qscale", 5, 1, 31) == 5
        with pytest.raises(BitstreamError, match="qscale=0"):
            check_header("qscale", 0, 1, 31)

    def test_check_motion_vector(self):
        check_motion_vector(MotionVector(10, -10), search_range=4, pel_scale=2)
        with pytest.raises(BitstreamError, match="exceeds search range"):
            check_motion_vector(MotionVector(11, 0), search_range=4, pel_scale=2)
        with pytest.raises(BitstreamError):
            check_motion_vector(MotionVector(0, -21), search_range=4, pel_scale=4)

    def test_check_stream_geometry(self):
        check_stream_geometry(32, 32, 25)
        for width, height, fps in ((0, 32, 25), (33, 32, 25), (32, 32, 0),
                                   (32768, 32, 25)):
            with pytest.raises(BitstreamError):
                check_stream_geometry(width, height, fps)

    def test_check_payload_present(self):
        check_payload_present(b"\x00")
        with pytest.raises(TruncationError):
            check_payload_present(b"")


class TestErrorContext:
    def test_str_appends_context(self):
        error = BitstreamError("bad header", codec="mpeg2", picture_index=2,
                               bit_position=40)
        text = str(error)
        assert text.startswith("bad header")
        assert "codec=mpeg2" in text and "picture=2" in text and "bit=40" in text
        assert str(BitstreamError("plain")) == "plain"

    def test_pickle_roundtrip_keeps_context(self):
        error = TruncationError("short", codec="h264", picture_index=1,
                                bit_position=9)
        clone = pickle.loads(pickle.dumps(error))
        assert type(clone) is TruncationError
        assert clone.message == "short"
        assert clone.context == error.context

    def test_truncation_is_bitstream_error(self):
        assert issubclass(TruncationError, BitstreamError)
        assert issubclass(BitstreamError, ReproError)

    def test_concealment_event_truncated_flag(self):
        plain = ConcealmentEvent(codec="mpeg2", strategy="grey", display_index=0,
                                 error=BitstreamError("x"))
        short = ConcealmentEvent(codec="mpeg2", strategy="grey", display_index=0,
                                 error=TruncationError("x"))
        hole = ConcealmentEvent(codec="mpeg2", strategy="grey", display_index=0)
        assert not plain.truncated
        assert short.truncated
        assert not hole.truncated
        assert "missing picture" in str(hole)


# ---------------------------------------------------------------------------
# Concealment strategies
# ---------------------------------------------------------------------------

def ramp_frame(width=32, height=32, shift=0):
    base = np.arange(width, dtype=np.int64)[None, :] * 3
    luma = np.tile(base, (height, 1))
    luma = np.roll(luma, shift, axis=1)
    return WorkingFrame(luma, luma[::2, ::2] // 2, luma[::2, ::2] // 2)


class FakeStream:
    width = 32
    height = 32


class FakePicture:
    def __init__(self, frame_type):
        self.frame_type = frame_type
        self.display_index = 0


class TestConcealment:
    def test_get_concealer_resolution(self):
        assert get_concealer(None) is None
        assert get_concealer("none") is None
        assert get_concealer("strict") is None
        for name in CONCEAL_STRATEGIES:
            assert get_concealer(name).name == name
        instance = GreyConcealer()
        assert get_concealer(instance) is instance
        with pytest.raises(ConfigError, match="unknown concealment"):
            get_concealer("psychic")

    def test_skip_returns_none(self):
        concealer = SkipConcealer()
        assert concealer.conceal(FakeStream, FakePicture(FrameType.P), {}, None) is None
        assert concealer.fill_missing(FakeStream, 0, ramp_frame()) is None

    def test_grey_fill(self):
        frame = GreyConcealer().conceal(FakeStream, FakePicture(FrameType.I), {}, None)
        assert np.all(frame.y == GREY_LEVEL)
        assert np.all(frame.u == GREY_LEVEL)

    def test_copy_last_is_a_fresh_copy(self):
        last = ramp_frame()
        frame = CopyLastConcealer().conceal(
            FakeStream, FakePicture(FrameType.P), {}, last
        )
        assert np.array_equal(frame.y, last.y)
        assert frame.y is not last.y  # must not alias the reference chain
        frame.y[0, 0] += 1
        assert frame.y[0, 0] != last.y[0, 0]

    def test_copy_last_falls_back_to_reference_then_grey(self):
        reference = ramp_frame(shift=2)
        concealer = CopyLastConcealer()
        frame = concealer.conceal(
            FakeStream, FakePicture(FrameType.P), {0: reference}, None
        )
        assert np.array_equal(frame.y, reference.y)
        grey = concealer.conceal(FakeStream, FakePicture(FrameType.P), {}, None)
        assert np.all(grey.y == GREY_LEVEL)

    def test_estimate_global_motion_recovers_shift(self):
        rng = np.random.default_rng(0)
        coarse = rng.integers(0, 255, (12, 12))
        world = np.kron(coarse, np.ones((8, 8))).astype(np.int64)
        previous = WorkingFrame(world[8:72, 8:72],
                                world[8:72:2, 8:72:2], world[8:72:2, 8:72:2])
        current = WorkingFrame(world[8:72, 12:76],
                               world[8:72:2, 12:76:2], world[8:72:2, 12:76:2])
        dx, dy = estimate_global_motion(previous, current, radius=2)
        assert (dx, dy) == (-4, 0)

    def test_motion_concealer_projects_references(self):
        rng = np.random.default_rng(1)
        coarse = rng.integers(0, 255, (14, 14))
        world = np.kron(coarse, np.ones((8, 8))).astype(np.int64)

        def window(offset):
            luma = world[8:40, 8 + offset : 40 + offset]
            return WorkingFrame(luma, luma[::2, ::2], luma[::2, ::2])

        references = {0: window(0), 1: window(4)}
        projected = MotionConcealer().conceal(
            FakeStream, FakePicture(FrameType.P), references, window(4)
        )
        expected = window(8)
        # Edge replication differs from true content only at the border.
        interior = slice(8, 24)
        assert np.array_equal(projected.y[interior, interior],
                              expected.y[interior, interior])

    def test_motion_concealer_freezes_on_i_pictures(self):
        last = ramp_frame()
        frame = MotionConcealer().conceal(
            FakeStream, FakePicture(FrameType.I), {0: ramp_frame(shift=3)}, last
        )
        assert np.array_equal(frame.y, last.y)


# ---------------------------------------------------------------------------
# The hardened decode engine
# ---------------------------------------------------------------------------

class TestEngine:
    def test_strict_matches_legacy_decode(self, tiny_video):
        stream = encode_tiny(tiny_video)
        result = decode_stream(get_decoder("mpeg2"), stream)
        legacy = get_decoder("mpeg2").decode(stream)
        assert result.clean and result.concealed_count == 0
        assert len(result.frames) == len(legacy)
        for ours, theirs in zip(result.frames, legacy):
            assert np.array_equal(ours.y, theirs.y)

    def test_erased_i_picture_conceals_full_length(self, tiny_video):
        stream = erase_payload(encode_tiny(tiny_video), 0)
        result = decode_stream(get_decoder("mpeg2"), stream, conceal="copy-last")
        assert len(result.frames) == len(tiny_video)
        assert result.concealed_count >= 1
        assert result.events[0].truncated  # empty payload reports truncation

    def test_skip_strategy_shrinks_output(self, tiny_video):
        stream = erase_payload(encode_tiny(tiny_video), 0)
        result = decode_stream(get_decoder("mpeg2"), stream, conceal="skip")
        assert len(result.frames) < len(tiny_video)

    def test_dropped_interior_picture_is_refilled(self, tiny_video):
        stream = encode_tiny(tiny_video)
        display_one = next(
            i for i, p in enumerate(stream.pictures) if p.display_index == 1
        )
        corrupted = drop_picture(stream, display_one)
        result = decode_stream(get_decoder("mpeg2"), corrupted, conceal="copy-last")
        assert len(result.frames) == len(tiny_video)
        assert any(event.display_index == 1 for event in result.events)

    def test_on_event_callback_sees_every_event(self, tiny_video):
        stream = erase_payload(encode_tiny(tiny_video), 0)
        seen = []
        result = decode_stream(
            get_decoder("mpeg2"), stream, conceal="grey", on_event=seen.append
        )
        assert seen == result.events
        assert all(event.strategy == "grey" for event in seen)

    def test_strict_mode_raises_with_context(self, tiny_video):
        stream = erase_payload(encode_tiny(tiny_video), 0)
        with pytest.raises(ReproError) as excinfo:
            decode_stream(get_decoder("mpeg2"), stream)
        assert excinfo.value.has_decode_context()
        assert excinfo.value.codec == "mpeg2"

    def test_decoder_decode_accepts_conceal_keyword(self, tiny_video):
        stream = erase_payload(encode_tiny(tiny_video), 0)
        frames = get_decoder("mpeg2").decode(stream, conceal="copy-last")
        assert len(frames) == len(tiny_video)

    def test_bad_geometry_rejected_before_decoding(self, tiny_video):
        stream = encode_tiny(tiny_video)
        stream.width = 33
        with pytest.raises(BitstreamError, match="not macroblock aligned"):
            decode_stream(get_decoder("mpeg2"), stream)


# ---------------------------------------------------------------------------
# Hardened parallel encoding
# ---------------------------------------------------------------------------

class _RecordingPool:
    """Stub executor: optionally fails, records shutdown arguments."""

    instances = []

    def __init__(self, max_workers):
        self.shutdown_args = None
        type(self).instances.append(self)

    def submit(self, fn, *args):
        return _ImmediateFuture(fn, args, self.failure)

    def shutdown(self, wait=True, cancel_futures=False):
        self.shutdown_args = (wait, cancel_futures)


class _ImmediateFuture:
    def __init__(self, fn, args, failure):
        self._fn = fn
        self._args = args
        self._failure = failure

    def result(self, timeout=None):
        if self._failure is not None:
            raise self._failure
        return self._fn(*self._args)


def _pool_factory(failure):
    class Pool(_RecordingPool):
        pass

    Pool.failure = failure
    Pool.instances = []
    return Pool


class TestParallelHardening:
    @pytest.fixture()
    def six_frames(self):
        return make_moving_sequence(width=32, height=32, frames=6, dx=1, dy=0)

    def test_healthy_stub_pool_encodes(self, six_frames):
        factory = _pool_factory(None)
        stream = parallel_encode(
            "mpeg2", six_frames, workers=2, executor_factory=factory,
            qscale=5, search_range=4, width=32, height=32,
        )
        assert stream.frame_count == 6
        assert len(factory.instances) == 1
        assert factory.instances[0].shutdown_args == (True, False)

    @pytest.mark.parametrize("failure", [
        BrokenProcessPool("worker died"),
        FutureTimeout(),
        OSError("fork failed"),
    ])
    def test_pool_failure_retries_then_falls_back_serial(self, six_frames, failure):
        factory = _pool_factory(failure)
        with pytest.warns(RuntimeWarning, match="falling back to serial"):
            stream = parallel_encode(
                "mpeg2", six_frames, workers=2, executor_factory=factory,
                qscale=5, search_range=4, width=32, height=32,
            )
        # One retry: two pools were built before the serial fallback.
        assert len(factory.instances) == 2
        # Failed pools must not block shutdown on unfinished futures.
        assert all(p.shutdown_args == (False, True) for p in factory.instances)
        assert stream.frame_count == 6
        decoded = get_decoder("mpeg2").decode(stream)
        assert len(decoded) == 6

    def test_repro_error_propagates_without_retry(self, six_frames):
        factory = _pool_factory(ConfigError("bad knob"))
        with pytest.raises(ConfigError, match="bad knob"):
            parallel_encode(
                "mpeg2", six_frames, workers=2, executor_factory=factory,
                qscale=5, search_range=4, width=32, height=32,
            )
        assert len(factory.instances) == 1  # no second attempt

    def test_bad_timeout_rejected(self, six_frames):
        with pytest.raises(ConfigError, match="chunk_timeout"):
            parallel_encode(
                "mpeg2", six_frames, workers=2, chunk_timeout=0,
                qscale=5, search_range=4, width=32, height=32,
            )

    def test_bad_backoff_rejected(self, six_frames):
        with pytest.raises(ConfigError, match="retry_backoff"):
            parallel_encode(
                "mpeg2", six_frames, workers=2, retry_backoff=-0.1,
                qscale=5, search_range=4, width=32, height=32,
            )

    def test_stats_surface_deadline_and_backoff(self, six_frames):
        # A failing pool retries once: stats must record the deadline in
        # force and the jittered backoff actually slept before the retry.
        base = 0.01
        with pytest.warns(RuntimeWarning, match="falling back to serial"):
            stream, stats = parallel_encode(
                "mpeg2", six_frames, workers=2, chunk_timeout=42.0,
                retry_backoff=base,
                executor_factory=_pool_factory(BrokenProcessPool("x")),
                return_stats=True,
                qscale=5, search_range=4, width=32, height=32,
            )
        assert stream.frame_count == 6
        assert stats["chunk_timeout"] == 42.0
        assert len(stats["backoff_seconds"]) == 1
        # Jitter keeps the first pause within 0.5-1.5x of the base.
        assert base * 0.5 <= stats["backoff_seconds"][0] <= base * 1.5

    def test_healthy_pool_reports_empty_backoff(self, six_frames):
        _, stats = parallel_encode(
            "mpeg2", six_frames, workers=2,
            executor_factory=_pool_factory(None), return_stats=True,
            qscale=5, search_range=4, width=32, height=32,
        )
        assert stats["backoff_seconds"] == []
        assert stats["chunk_timeout"] > 0
        assert stats["retries"] == 0

    def test_serial_fallback_matches_parallel_result(self, six_frames):
        reference = parallel_encode(
            "mpeg2", six_frames, workers=1, chunks=2,
            qscale=5, search_range=4, width=32, height=32,
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            fallback = parallel_encode(
                "mpeg2", six_frames, workers=2, chunks=2,
                executor_factory=_pool_factory(BrokenProcessPool("x")),
                qscale=5, search_range=4, width=32, height=32,
            )
        assert [p.payload for p in fallback.pictures] == \
               [p.payload for p in reference.pictures]
