"""Seeded fuzz smoke test: a small sweep over every codec.

A fast CI-friendly slice of the full resilience benchmark
(``benchmarks/test_robustness.py`` runs the >= 200-stream sweep): every
corrupted stream must either decode (benign damage) or fail with a
:class:`ReproError` carrying full decode context, and concealed decodes
must always return the full frame count.
"""

import pytest

from repro.codecs import CODEC_NAMES, EXTENSION_CODEC_NAMES, get_decoder, get_encoder
from repro.errors import ReproError
from repro.robustness import FaultInjector, decode_stream
from repro.robustness.bench import encoder_fields, make_bench_clip

ALL_CODECS = CODEC_NAMES + EXTENSION_CODEC_NAMES
TRIALS = 8


@pytest.fixture(scope="module")
def clip():
    return make_bench_clip(width=32, height=32, frames=5)


@pytest.mark.parametrize("codec", ALL_CODECS)
def test_seeded_fuzz_smoke(codec, clip):
    encoder = get_encoder(codec, **encoder_fields(codec, clip.width, clip.height))
    stream = encoder.encode_sequence(clip)
    injector = FaultInjector(seed=0)
    for trial, (corrupted, fault) in enumerate(injector.sweep(stream, TRIALS)):
        try:
            get_decoder(codec).decode(corrupted)
        except ReproError as error:
            assert error.has_decode_context(), (
                f"trial {trial} ({fault}): escaped without decode context: "
                f"{error!r}"
            )
        # Any non-ReproError escape fails the test by raising through.

        result = decode_stream(get_decoder(codec), corrupted, conceal="copy-last")
        assert len(result.frames) == len(clip), (
            f"trial {trial} ({fault}): concealed decode returned "
            f"{len(result.frames)} of {len(clip)} frames"
        )
