"""End-to-end tests for the hdvb-player / hdvb-mencoder front end."""

import pytest

from repro.codecs import container
from repro.common.yuv import read_yuv_file, write_yuv_file
from repro.player.cli import (
    DECODER_ALIASES,
    ENCODER_ALIASES,
    _parse_colon_options,
    mencoder_main,
    player_main,
)
from tests.conftest import make_moving_sequence


@pytest.fixture(scope="module")
def yuv_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("player") / "input.yuv"
    write_yuv_file(path, make_moving_sequence(width=32, height=32, frames=4))
    return path


def run_mencoder(yuv_path, out_path, ovc, opts_flag=None, opts=""):
    argv = [
        str(yuv_path), "-demuxer", "rawvideo",
        "-rawvideo", "fps=25:w=32:h=32",
        "-o", str(out_path), "-ovc", ovc,
    ]
    if opts_flag:
        argv += [opts_flag, opts]
    return mencoder_main(argv)


class TestOptionParsing:
    def test_colon_options(self):
        options = _parse_colon_options("vcodec=mpeg2video:vqscale=5:psnr")
        assert options == {"vcodec": "mpeg2video", "vqscale": "5", "psnr": "1"}

    def test_empty(self):
        assert _parse_colon_options("") == {}

    def test_aliases_match_table4(self):
        assert DECODER_ALIASES["mpeg12"] == "mpeg2"   # libmpeg2
        assert DECODER_ALIASES["xvid"] == "mpeg4"     # Xvid
        assert DECODER_ALIASES["ffh264"] == "h264"    # FFmpeg H.264
        assert ENCODER_ALIASES["lavc"] == "mpeg2"
        assert ENCODER_ALIASES["xvid"] == "mpeg4"
        assert ENCODER_ALIASES["x264"] == "h264"
        # Extension codec (Section VII future work).
        assert ENCODER_ALIASES["mjpeg"] == "mjpeg"


class TestMencoder:
    @pytest.mark.parametrize(
        "ovc, flag, opts, codec",
        [
            ("lavc", "-lavcopts", "vcodec=mpeg2video:vqscale=5", "mpeg2"),
            ("xvid", "-xvidencopts", "fixed_quant=5:qpel", "mpeg4"),
            ("x264", "-x264encopts", "qp=26:me=hex", "h264"),
        ],
    )
    def test_encodes_each_codec(self, yuv_path, tmp_path, ovc, flag, opts, codec, capsys):
        out = tmp_path / f"{codec}.hdvb"
        assert run_mencoder(yuv_path, out, ovc, flag, opts) == 0
        assert container.probe_codec(out) == codec
        assert "ENCODED" in capsys.readouterr().out

    def test_psnr_flag_prints_quality(self, yuv_path, tmp_path, capsys):
        out = tmp_path / "q.hdvb"
        assert run_mencoder(yuv_path, out, "lavc", "-lavcopts", "vqscale=5:psnr") == 0
        assert "PSNR" in capsys.readouterr().out

    def test_frames_limit(self, yuv_path, tmp_path):
        out = tmp_path / "limited.hdvb"
        argv = [str(yuv_path), "-rawvideo", "fps=25:w=32:h=32",
                "-o", str(out), "-ovc", "lavc", "--frames", "2"]
        assert mencoder_main(argv) == 0
        assert container.read_file(out).frame_count == 2

    def test_unknown_ovc_fails(self, yuv_path, tmp_path, capsys):
        assert run_mencoder(yuv_path, tmp_path / "x.hdvb", "vp8") == 1
        assert "unknown -ovc" in capsys.readouterr().err

    def test_missing_dimensions_fail(self, yuv_path, tmp_path, capsys):
        argv = [str(yuv_path), "-rawvideo", "fps=25",
                "-o", str(tmp_path / "x.hdvb"), "-ovc", "lavc"]
        assert mencoder_main(argv) == 1

    def test_merange_maps_to_search_range(self, yuv_path, tmp_path):
        out = tmp_path / "range.hdvb"
        assert run_mencoder(yuv_path, out, "x264", "-x264encopts",
                            "qp=26:merange=6") == 0


class TestPlayer:
    @pytest.fixture(scope="class")
    def stream_path(self, yuv_path, tmp_path_factory):
        path = tmp_path_factory.mktemp("streams") / "clip.hdvb"
        assert run_mencoder(yuv_path, path, "x264", "-x264encopts", "qp=26") == 0
        return path

    def test_benchmark_decode(self, stream_path, capsys):
        argv = [str(stream_path), "-vc", "ffh264", "-nosound", "-vo", "null",
                "-benchmark"]
        assert player_main(argv) == 0
        out = capsys.readouterr().out
        assert "BENCHMARKs" in out
        assert "fps" in out

    def test_auto_codec_selection(self, stream_path, capsys):
        assert player_main([str(stream_path), "-vo", "null"]) == 0
        assert "VIDEO: h264" in capsys.readouterr().out

    def test_vc_mismatch_fails(self, stream_path, capsys):
        assert player_main([str(stream_path), "-vc", "mpeg12", "-vo", "null"]) == 1
        assert "contains" in capsys.readouterr().err

    def test_yuv_output(self, stream_path, tmp_path):
        out = tmp_path / "decoded.yuv"
        assert player_main([str(stream_path), "-vo", f"yuv:{out}"]) == 0
        decoded = read_yuv_file(out, 32, 32)
        assert len(decoded) == 4

    def test_unknown_vo_fails(self, stream_path, capsys):
        assert player_main([str(stream_path), "-vo", "x11"]) == 1

    def test_missing_file_fails(self, tmp_path, capsys):
        missing = tmp_path / "nope.hdvb"
        with pytest.raises((SystemExit, FileNotFoundError)):
            player_main([str(missing), "-vo", "null"])


class TestPlayerTransport:
    @pytest.fixture(scope="class")
    def stream_path(self, yuv_path, tmp_path_factory):
        path = tmp_path_factory.mktemp("streams") / "clip.hdvb"
        assert run_mencoder(yuv_path, path, "x264", "-x264encopts", "qp=26") == 0
        return path

    def test_lossy_playout_survives(self, stream_path, capsys):
        argv = [str(stream_path), "-vo", "null", "--loss", "0.1",
                "--burst", "3", "--fec", "4", "--loss-seed", "7"]
        assert player_main(argv) == 0
        captured = capsys.readouterr()
        assert "hdvb-player: channel:" in captured.err
        assert "hdvb-player: transport:" in captured.err

    def test_lossy_yuv_output_keeps_frame_count(self, stream_path, tmp_path):
        out = tmp_path / "lossy.yuv"
        argv = [str(stream_path), "-vo", f"yuv:{out}", "--loss", "0.2",
                "--burst", "2", "--fec", "4", "--loss-seed", "3"]
        assert player_main(argv) == 0
        # Losses are concealed, never dropped: full display length.
        assert len(read_yuv_file(out, 32, 32)) == 4

    def test_loss_seed_reproducible(self, stream_path, capsys):
        argv = [str(stream_path), "-vo", "null", "--loss", "0.15",
                "--fec", "4", "--loss-seed", "11"]
        assert player_main(argv) == 0
        first = capsys.readouterr().err
        assert player_main(argv) == 0
        second = capsys.readouterr().err
        assert first == second

    def test_fec_without_loss_is_clean(self, stream_path, capsys):
        assert player_main([str(stream_path), "-vo", "null", "--fec", "4"]) == 0
        err = capsys.readouterr().err
        assert "0 lost" in err
        assert "0 concealed" in err
