"""Tests for padded reference planes and chroma MV derivation."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.mc.chroma import chroma_mv_from_halfpel, chroma_mv_from_qpel
from repro.mc.pad import INTERP_MARGIN, pad_plane
from repro.me.types import MotionVector


class TestPadPlane:
    def test_dimensions(self):
        plane = np.arange(12, dtype=np.int64).reshape(3, 4)
        padded = pad_plane(plane, search_range=5)
        pad = 5 + INTERP_MARGIN
        assert padded.pad == pad
        assert padded.plane.shape == (3 + 2 * pad, 4 + 2 * pad)
        assert padded.width == 4
        assert padded.height == 3

    def test_interior_preserved(self):
        plane = np.arange(16, dtype=np.int64).reshape(4, 4)
        padded = pad_plane(plane, 2)
        x, y = padded.offset(0, 0)
        assert np.array_equal(padded.plane[y : y + 4, x : x + 4], plane)

    def test_edges_replicated(self):
        plane = np.array([[1, 2], [3, 4]], dtype=np.int64)
        padded = pad_plane(plane, 1)
        assert padded.plane[0, 0] == 1  # top-left corner replicates
        assert padded.plane[-1, -1] == 4
        x, y = padded.offset(0, 0)
        assert padded.plane[y - 3, x] == 1  # above top row
        assert padded.plane[y, x - 3] == 1  # left of first column

    def test_offset_mapping(self):
        plane = np.zeros((8, 8), dtype=np.int64)
        padded = pad_plane(plane, 4)
        assert padded.offset(2, 3) == (2 + padded.pad, 3 + padded.pad)

    def test_negative_range_rejected(self):
        with pytest.raises(ConfigError):
            pad_plane(np.zeros((4, 4)), -1)


class TestChromaMv:
    @pytest.mark.parametrize(
        "luma, expected",
        [(0, 0), (1, 0), (2, 1), (3, 1), (-1, 0), (-2, -1), (-3, -1), (-4, -2)],
    )
    def test_halfpel_derivation(self, luma, expected):
        mv = chroma_mv_from_halfpel(MotionVector(luma, luma))
        assert mv == MotionVector(expected, expected)

    @pytest.mark.parametrize(
        "luma, expected",
        [(0, 0), (3, 0), (4, 1), (6, 1), (8, 2), (-3, 0), (-4, -1), (-9, -2)],
    )
    def test_qpel_derivation(self, luma, expected):
        mv = chroma_mv_from_qpel(MotionVector(luma, luma))
        assert mv == MotionVector(expected, expected)

    def test_components_independent(self):
        mv = chroma_mv_from_halfpel(MotionVector(5, -7))
        assert mv == MotionVector(2, -3)
