"""Tests for repro.orchestrate: specs, artifact cache, scheduler, report.

The acceptance trio lives here: two runs of the same spec yield
bit-identical observe records, the second run hits the artifact cache
for every cell, and a run killed mid-flight resumes by skipping exactly
the cells that already completed.
"""

import json
import multiprocessing
import os

import pytest

from repro.errors import OrchestrateError
from repro.observe.record import RunInfo
from repro.observe.regress import GateConfig, detect_regressions
from repro.observe.store import HistoryStore
from repro.orchestrate.artifacts import (
    ArtifactCache,
    cell_fingerprint,
    sequence_digest,
)
from repro.orchestrate.report import (
    render_orchestrate,
    summarize,
    summary_records,
)
from repro.orchestrate.scheduler import (
    CellResult,
    cell_record,
    completed_cell_ids,
    load_manifest,
    plan_shards,
    run_cells,
    write_manifests,
)
from repro.orchestrate.spec import (
    Cell,
    cell_from_dict,
    expand_cells,
    load_spec,
    parse_spec,
)

MINI_SPEC = {
    "schema": "repro.orchestrate.spec/1",
    "name": "mini",
    "axes": {
        "codec": ["mpeg2", "h264"],
        "sequence": ["blue_sky"],
        "resolution": ["576p25"],
        "workers": [1, 2],
    },
    "frames": 6,
    "scale": "1/16",
}


def mini_spec():
    return parse_spec(MINI_SPEC)


# ----------------------------------------------------------------------
# spec parsing + deterministic expansion
# ----------------------------------------------------------------------


class TestSpec:
    def test_defaults_applied(self):
        spec = parse_spec({"name": "d", "axes": {
            "codec": ["mpeg2"], "sequence": ["riverbed"],
            "resolution": ["720p25"]}})
        assert spec.backends == ("simd",)
        assert spec.workers == (1,)
        assert spec.qps == (5,)
        assert spec.repeats == 1
        assert spec.cell_timeout == 600.0

    @pytest.mark.parametrize("mutation, match", [
        ({"unknown_key": 1}, "unknown spec key"),
        ({"name": ""}, "non-empty string 'name'"),
        ({"axes": {"codec": ["mpeg2"], "sequence": ["blue_sky"],
                   "resolution": ["576p25"], "color": ["red"]}},
         "unknown axis"),
        ({"axes": {"codec": ["betamax"], "sequence": ["blue_sky"],
                   "resolution": ["576p25"]}}, "axes.codec"),
        ({"axes": {"codec": ["mpeg2"], "sequence": ["blue_sky"],
                   "resolution": ["9000p"]}}, "axes.resolution"),
        ({"axes": {"codec": ["mpeg2"], "sequence": ["blue_sky"],
                   "resolution": ["576p25"], "qp": [99]}}, "axes.qp"),
        ({"axes": {"codec": ["mpeg2"], "sequence": ["blue_sky"],
                   "resolution": ["576p25"], "workers": [0]}},
         "axes.workers"),
        ({"axes": {"codec": [], "sequence": ["blue_sky"],
                   "resolution": ["576p25"]}}, "must not be empty"),
        ({"axes": {"codec": ["mpeg2", "mpeg2"], "sequence": ["blue_sky"],
                   "resolution": ["576p25"]}}, "repeats value"),
        ({"scale": "zero"}, "scale must be a fraction"),
        ({"cell_timeout": -1}, "cell_timeout"),
    ])
    def test_malformed_specs_raise_orchestrate_error(self, mutation, match):
        data = dict(MINI_SPEC)
        data.update(mutation)
        with pytest.raises(OrchestrateError, match=match):
            parse_spec(data)

    def test_missing_required_axis(self):
        with pytest.raises(OrchestrateError, match="must declare 'sequence'"):
            parse_spec({"name": "x", "axes": {
                "codec": ["mpeg2"], "resolution": ["576p25"]}})

    def test_boolean_axis_value_rejected(self):
        with pytest.raises(OrchestrateError, match="boolean"):
            parse_spec({"name": "x", "axes": {
                "codec": ["mpeg2"], "sequence": ["blue_sky"],
                "resolution": ["576p25"], "workers": [True]}})

    def test_expansion_is_deterministic(self):
        first = expand_cells(mini_spec())
        second = expand_cells(mini_spec())
        assert first == second
        assert len(first) == mini_spec().cell_count() == 4
        assert [c.cell_id for c in first] == [c.cell_id for c in second]

    def test_expansion_order_is_canonical(self):
        cells = expand_cells(mini_spec())
        # codec is the outermost loop; workers vary innermost of the two.
        assert [(c.codec, c.workers) for c in cells] == [
            ("mpeg2", 1), ("mpeg2", 2), ("h264", 1), ("h264", 2)]

    def test_cell_round_trips_through_manifest_dict(self):
        cell = expand_cells(mini_spec())[0]
        assert cell_from_dict(cell.to_dict()) == cell

    def test_fingerprint_ignores_document_key_order(self):
        shuffled = {key: MINI_SPEC[key]
                    for key in reversed(list(MINI_SPEC))}
        assert parse_spec(shuffled).fingerprint() == mini_spec().fingerprint()

    def test_fingerprint_changes_with_content(self):
        other = dict(MINI_SPEC, frames=7)
        assert parse_spec(other).fingerprint() != mini_spec().fingerprint()

    def test_load_spec_json(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(MINI_SPEC))
        assert load_spec(path) == mini_spec()

    def test_load_spec_yaml_matches_json(self, tmp_path):
        pytest.importorskip("yaml")
        path = tmp_path / "spec.yaml"
        path.write_text(
            "name: mini\n"
            "axes:\n"
            "  codec: [mpeg2, h264]\n"
            "  sequence: [blue_sky]\n"
            "  resolution: [576p25]\n"
            "  workers: [1, 2]\n"
            "frames: 6\n"
            "scale: 1/16\n")
        spec = load_spec(path)
        assert spec == mini_spec()
        assert spec.fingerprint() == mini_spec().fingerprint()

    def test_yaml_without_pyyaml_is_a_clear_error(self, tmp_path,
                                                  monkeypatch):
        import sys

        monkeypatch.setitem(sys.modules, "yaml", None)
        path = tmp_path / "spec.yaml"
        path.write_text("name: mini\n")
        with pytest.raises(OrchestrateError, match="PyYAML"):
            load_spec(path)

    def test_unreadable_spec_file(self, tmp_path):
        with pytest.raises(OrchestrateError, match="cannot read spec"):
            load_spec(tmp_path / "missing.json")

    def test_invalid_json_spec_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(OrchestrateError, match="not valid JSON"):
            load_spec(path)


# ----------------------------------------------------------------------
# fingerprints + artifact cache
# ----------------------------------------------------------------------


class TestFingerprints:
    FIELDS = {"width": 96, "height": 72, "qp": 26, "backend": "simd"}

    def test_backend_is_excluded(self):
        scalar = dict(self.FIELDS, backend="scalar")
        assert (cell_fingerprint("h264", "abc", self.FIELDS, 1)
                == cell_fingerprint("h264", "abc", scalar, 1))

    @pytest.mark.parametrize("codec, seq, fields, chunks", [
        ("mpeg2", "abc", FIELDS, 1),
        ("h264", "def", FIELDS, 1),
        ("h264", "abc", dict(FIELDS, qp=28), 1),
        ("h264", "abc", FIELDS, 2),
    ])
    def test_every_component_matters(self, codec, seq, fields, chunks):
        base = cell_fingerprint("h264", "abc", self.FIELDS, 1)
        other = cell_fingerprint(codec, seq, fields, chunks)
        if (codec, seq, fields, chunks) == ("h264", "abc", self.FIELDS, 1):
            assert other == base
        else:
            assert other != base

    def test_sequence_digest_is_deterministic(self):
        from repro.sequences import generate_sequence

        one = generate_sequence("blue_sky", "576p25", frames=3,
                                scale=(1, 16))
        two = generate_sequence("blue_sky", "576p25", frames=3,
                                scale=(1, 16))
        assert sequence_digest(one) == sequence_digest(two)


def _tiny_stream():
    from repro.codecs import get_encoder
    from repro.sequences import generate_sequence

    video = generate_sequence("blue_sky", "576p25", frames=3, scale=(1, 16))
    encoder = get_encoder("mjpeg", width=video.width, height=video.height)
    return encoder.encode_sequence(video)


def _flight_worker(root, fingerprint, side_file):
    """Forked single-flight contender: encodes only as the leader."""
    cache = ArtifactCache(root, wait_timeout=60.0, poll_seconds=0.01)

    def produce():
        # O_APPEND side channel: one line per *actual* encode.
        descriptor = os.open(side_file, os.O_WRONLY | os.O_APPEND | os.O_CREAT,
                             0o644)
        try:
            os.write(descriptor, b"encoded\n")
        finally:
            os.close(descriptor)
        return _tiny_stream(), {"psnr_db": 30.0}

    entry, _ = cache.ensure(fingerprint, produce)
    assert entry.metrics == {"psnr_db": 30.0}
    assert entry.load_stream().frame_count == 3


class TestArtifactCache:
    def test_miss_then_hit_without_reencoding(self, tmp_path):
        cache = ArtifactCache(str(tmp_path / "cache"))
        stream = _tiny_stream()
        entry, hit = cache.ensure("f" * 64,
                                  lambda: (stream, {"psnr_db": 31.5}))
        assert not hit and cache.misses == 1
        assert entry.metrics == {"psnr_db": 31.5}

        def exploding_producer():
            raise AssertionError("cache hit must not re-encode")

        again, hit = cache.ensure("f" * 64, exploding_producer)
        assert hit and cache.hits == 1
        assert again.metrics == {"psnr_db": 31.5}
        assert again.load_stream().total_bytes == stream.total_bytes

    def test_fresh_handle_sees_committed_entry(self, tmp_path):
        root = str(tmp_path / "cache")
        ArtifactCache(root).ensure("a" * 64,
                                   lambda: (_tiny_stream(), {"x": 1.0}))
        entry = ArtifactCache(root).get("a" * 64)
        assert entry is not None and entry.metrics == {"x": 1.0}

    def test_failed_producer_is_not_cached_and_key_is_retryable(
            self, tmp_path):
        cache = ArtifactCache(str(tmp_path / "cache"))

        def bad_producer():
            raise OrchestrateError("encoder exploded")

        with pytest.raises(OrchestrateError, match="encoder exploded"):
            cache.ensure("b" * 64, bad_producer)
        assert cache.get("b" * 64) is None
        entry, hit = cache.ensure("b" * 64,
                                  lambda: (_tiny_stream(), {"x": 2.0}))
        assert not hit and entry.metrics == {"x": 2.0}

    def test_corrupt_meta_raises_orchestrate_error(self, tmp_path):
        cache = ArtifactCache(str(tmp_path / "cache"))
        cache.ensure("c" * 64, lambda: (_tiny_stream(), {"x": 1.0}))
        meta = tmp_path / "cache" / "cc" / ("c" * 64) / "meta.json"
        meta.write_text("{broken")
        with pytest.raises(OrchestrateError, match="corrupt cache meta"):
            ArtifactCache(str(tmp_path / "cache")).get("c" * 64)

    def test_single_flight_under_forked_concurrent_writers(self, tmp_path):
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable")
        context = multiprocessing.get_context("fork")
        root = str(tmp_path / "cache")
        side_file = str(tmp_path / "encodes.log")
        fingerprint = "d" * 64
        processes = [
            context.Process(target=_flight_worker,
                            args=(root, fingerprint, side_file))
            for _ in range(6)
        ]
        for process in processes:
            process.start()
        for process in processes:
            process.join()
            assert process.exitcode == 0
        with open(side_file, "rb") as handle:
            encodes = handle.read().splitlines()
        assert encodes == [b"encoded"]    # exactly one leader encoded


# ----------------------------------------------------------------------
# scheduler: run, resume, shards
# ----------------------------------------------------------------------


def run_once(tmp_path, tag, spec=None, run_id="run-A", **kwargs):
    spec = spec or mini_spec()
    store = HistoryStore(str(tmp_path / f"store-{tag}"))
    cache = ArtifactCache(str(tmp_path / "shared-cache"))
    info = RunInfo.capture(run_id=run_id)
    state = run_cells(spec, store, info, cache=cache, **kwargs)
    return store, cache, info, state


class TestScheduler:
    def test_serial_run_records_every_cell(self, tmp_path):
        spec = mini_spec()
        store, cache, info, state = run_once(tmp_path, "a", spec)
        assert len(state.results) == 4 and not state.failures
        records = store.query("orchestrate", run_id="run-A")
        assert len(records) == 4
        assert ({record.axis_key for record in records}
                == {cell.cell_id for cell in expand_cells(spec)})
        for record in records:
            assert record.context["status"] == "ok"
            assert record.created == 0.0
            assert record.metrics["psnr_db"] > 0
            assert record.context["spec_fingerprint"] == spec.fingerprint()

    def test_two_runs_yield_bit_identical_records(self, tmp_path):
        store_a, _, _, _ = run_once(tmp_path, "a")
        store_b, cache_b, _, state_b = run_once(tmp_path, "b")
        lines_a = [json.dumps(r.to_dict(), sort_keys=True)
                   for r in store_a.query("orchestrate", run_id="run-A")]
        lines_b = [json.dumps(r.to_dict(), sort_keys=True)
                   for r in store_b.query("orchestrate", run_id="run-A")]
        assert lines_a == lines_b
        # ... and the second run paid for nothing: every cell was a hit.
        assert state_b.cache_hits == len(state_b.results) == 4
        assert cache_b.hits == 4 and cache_b.misses == 0

    def test_mid_run_kill_then_resume_skips_completed_cells(self, tmp_path):
        spec = mini_spec()
        store = HistoryStore(str(tmp_path / "store"))
        cache = ArtifactCache(str(tmp_path / "cache"))
        info = RunInfo.capture(run_id="run-A")
        seen = []

        def kill_after_two(result):
            seen.append(result.cell_id)
            if len(seen) == 2:
                raise KeyboardInterrupt("simulated mid-run kill")

        with pytest.raises(KeyboardInterrupt):
            run_cells(spec, store, info, cache=cache,
                      on_cell_complete=kill_after_two)
        assert completed_cell_ids(store, "run-A") == set(seen)

        resumed = run_cells(spec, store, info, cache=cache)
        assert sorted(resumed.skipped) == sorted(seen)
        assert len(resumed.results) == 2
        assert {r.cell_id for r in resumed.results}.isdisjoint(seen)
        # The union covers the matrix exactly once.
        records = store.query("orchestrate", run_id="run-A")
        assert len(records) == 4

    def test_failed_cell_is_recorded_and_retried_on_resume(
            self, tmp_path, monkeypatch):
        import repro.orchestrate.scheduler as scheduler_module

        spec = mini_spec()
        real_measure = scheduler_module._measure_cell

        def failing_measure(cell, cache):
            if cell.codec == "h264":
                raise OrchestrateError("injected cell failure")
            return real_measure(cell, cache)

        monkeypatch.setattr(scheduler_module, "_measure_cell",
                            failing_measure)
        store, cache, info, state = run_once(tmp_path, "a", spec)
        assert len(state.failures) == 2
        failed_records = [r for r in store.query("orchestrate")
                          if r.context["status"] == "failed"]
        assert len(failed_records) == 2
        for record in failed_records:
            assert "injected cell failure" in record.context["error"]
            assert "spec=mini" in record.context["error"]
            assert record.metrics == {}
        # Failed cells are not "completed": the resume scan retries them.
        assert len(completed_cell_ids(store, "run-A")) == 2
        monkeypatch.setattr(scheduler_module, "_measure_cell", real_measure)
        resumed = run_cells(spec, store, info, cache=cache)
        assert len(resumed.results) == 2 and not resumed.failures

    def test_unexpected_exception_becomes_orchestrate_error(
            self, tmp_path, monkeypatch):
        import repro.orchestrate.scheduler as scheduler_module

        def exploding_measure(cell, cache):
            raise RuntimeError("boom")

        monkeypatch.setattr(scheduler_module, "_measure_cell",
                            exploding_measure)
        store, _, _, state = run_once(tmp_path, "a")
        assert len(state.failures) == 4
        assert all("unexpected RuntimeError" in f.error
                   for f in state.failures)
        assert all(f"cell={f.cell_id}" in f.error for f in state.failures)

    def test_pooled_run_matches_serial_records(self, tmp_path):
        store_serial, _, _, _ = run_once(tmp_path, "serial")
        store_pool, _, _, state = run_once(tmp_path, "pool",
                                           scheduler_workers=2)
        assert not state.failures
        serial = sorted(json.dumps(r.to_dict(), sort_keys=True)
                        for r in store_serial.query("orchestrate"))
        pooled = sorted(json.dumps(r.to_dict(), sort_keys=True)
                        for r in store_pool.query("orchestrate"))
        assert serial == pooled

    def test_plan_shards_round_robin_partition(self):
        cells = expand_cells(mini_spec())
        shards = plan_shards(cells, 3)
        assert [len(shard) for shard in shards] == [2, 1, 1]
        flattened = [cell for shard in shards for cell in shard]
        assert sorted(c.cell_id for c in flattened) == sorted(
            c.cell_id for c in cells)
        with pytest.raises(OrchestrateError, match="shard count"):
            plan_shards(cells, 0)

    def test_manifest_round_trip(self, tmp_path):
        spec = mini_spec()
        cells = expand_cells(spec)
        paths = write_manifests(spec, cells, 2, tmp_path / "manifests")
        assert len(paths) == 2
        union = []
        for path in paths:
            name, fingerprint, shard_cells = load_manifest(path)
            assert name == "mini"
            assert fingerprint == spec.fingerprint()
            union.extend(shard_cells)
        assert sorted(c.cell_id for c in union) == sorted(
            c.cell_id for c in cells)

    def test_load_manifest_rejects_garbage(self, tmp_path):
        path = tmp_path / "not-a-manifest.json"
        path.write_text(json.dumps({"schema": "nope"}))
        with pytest.raises(OrchestrateError, match="not a shard manifest"):
            load_manifest(path)


# ----------------------------------------------------------------------
# report + OBS207 gate
# ----------------------------------------------------------------------


def synthetic_result(workers, seconds, ok=True, hit=False, repeat=0):
    cell = Cell(spec_name="syn", codec="mpeg2", sequence="blue_sky",
                resolution="576p25", backend="simd", workers=workers,
                qp=5, repeat=repeat, frames=6, scale="1/16", seed=0,
                timeout=600.0)
    return CellResult(cell=cell.to_dict(), cell_id=cell.cell_id,
                      status="ok" if ok else "failed",
                      metrics={"psnr_db": 30.0} if ok else {},
                      seconds=seconds, cache_hit=hit,
                      fingerprint="f" * 64 if ok else "",
                      error="" if ok else "OrchestrateError: synthetic")


class TestReport:
    def spec(self):
        return parse_spec({
            "name": "syn",
            "axes": {"codec": ["mpeg2"], "sequence": ["blue_sky"],
                     "resolution": ["576p25"], "workers": [1, 2, 4]},
            "frames": 6, "scale": "1/16"})

    def state_with(self, results):
        from repro.orchestrate.scheduler import RunState

        return RunState(results=results, skipped=[], wall_seconds=2.0)

    def test_scaling_speedup_efficiency_and_sweet_spot(self):
        results = [synthetic_result(1, 8.0), synthetic_result(2, 4.2),
                   synthetic_result(4, 4.0)]
        summary = summarize(self.spec(), self.state_with(results))
        by_workers = {row.workers: row for row in summary.scaling}
        assert by_workers[1].speedup == pytest.approx(1.0)
        assert by_workers[2].speedup == pytest.approx(8.0 / 4.2)
        assert by_workers[4].speedup == pytest.approx(2.0)
        assert by_workers[4].efficiency == pytest.approx(0.5)
        # 2 workers reach >=90% of the best speedup; 4 buy almost nothing.
        assert summary.sweet_spot == 2

    def test_cache_hits_are_excluded_from_scaling(self):
        results = [synthetic_result(1, 8.0),
                   synthetic_result(2, 0.001, hit=True)]
        summary = summarize(self.spec(), self.state_with(results))
        assert [row.workers for row in summary.scaling] == [1]

    def test_failure_examples_bounded_and_rates(self):
        results = [synthetic_result(1, 1.0)] + [
            synthetic_result(2, 0.1, ok=False, repeat=i) for i in range(7)]
        summary = summarize(self.spec(), self.state_with(results))
        assert summary.cells_failed == 7
        assert summary.cell_failure_rate == pytest.approx(7 / 8)
        assert len(summary.failure_examples) == 5
        text = render_orchestrate(summary)
        assert "OrchestrateError: synthetic" in text
        assert "7 cells" in text

    def test_summary_records_shape(self):
        results = [synthetic_result(1, 1.0), synthetic_result(2, 0.6)]
        summary = summarize(self.spec(), self.state_with(results))
        info = RunInfo.capture(run_id="run-R")
        records = summary_records(summary, info)
        assert [r.bench for r in records] == [
            "orchestrate_run", "orchestrate_scaling", "orchestrate_scaling"]
        run_record = records[0]
        for metric in ("cell_failure_rate", "cache_hit_rate",
                       "cells_per_second", "wall_seconds"):
            assert metric in run_record.metrics

    def test_obs207_gate_flags_planted_cell_failures(self, tmp_path):
        store = HistoryStore(str(tmp_path / "store"))
        info_a = RunInfo.capture(run_id="run-1")
        info_b = RunInfo.capture(run_id="run-2")
        good = summarize(self.spec(), self.state_with(
            [synthetic_result(1, 1.0)]))
        bad = summarize(self.spec(), self.state_with(
            [synthetic_result(1, 1.0),
             synthetic_result(2, 0.1, ok=False)]))
        store.append_many(summary_records(good, info_a))
        store.append_many(summary_records(bad, info_b))
        findings = detect_regressions(store, config=GateConfig(mad_sigmas=0))
        assert any(f.rule_id == "OBS207" and "cell_failure_rate" in f.message
                   for f in findings)

    def test_obs207_gate_clean_on_identical_runs(self, tmp_path):
        store = HistoryStore(str(tmp_path / "store"))
        good = summarize(self.spec(), self.state_with(
            [synthetic_result(1, 1.0)]))
        store.append_many(summary_records(good, RunInfo.capture(run_id="r1")))
        store.append_many(summary_records(good, RunInfo.capture(run_id="r2")))
        findings = detect_regressions(store, config=GateConfig(mad_sigmas=0))
        assert [f for f in findings if f.rule_id == "OBS207"] == []

    def test_resumed_run_omits_unmeasured_rates(self, tmp_path):
        from repro.orchestrate.scheduler import RunState

        resumed = summarize(self.spec(), RunState(
            results=[], skipped=["a", "b", "c"], wall_seconds=0.0))
        records = summary_records(resumed, RunInfo.capture(run_id="r2"))
        for metric in ("cell_failure_rate", "cells_per_second",
                       "cache_hit_rate"):
            assert metric not in records[0].metrics
        assert records[0].metrics["cells_skipped"] == 3.0
        # The gate must not misread an all-skipped resume as a
        # throughput/cache regression.
        store = HistoryStore(str(tmp_path / "store"))
        good = summarize(self.spec(), self.state_with(
            [synthetic_result(1, 1.0)]))
        store.append_many(summary_records(good, RunInfo.capture(run_id="r1")))
        store.append_many(records)
        findings = detect_regressions(store, config=GateConfig(mad_sigmas=0))
        assert [f for f in findings if f.rule_id == "OBS207"] == []

    def test_cell_record_is_deterministic(self):
        result = synthetic_result(1, 1.23)
        info = RunInfo.capture(run_id="run-R")
        record = cell_record(result, info, "feedc0de")
        assert record.created == 0.0
        assert "seconds" not in record.metrics
        assert record.axis_key == result.cell_id
