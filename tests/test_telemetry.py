"""Unit tests for the repro.telemetry subsystem (trace/metrics/profile)."""

from __future__ import annotations

import importlib.util
import json
import threading
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

import pytest

import repro.telemetry as telemetry
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.trace import NOOP_SPAN

ROOT = Path(__file__).resolve().parents[1]


def load_check_trace():
    spec = importlib.util.spec_from_file_location(
        "check_trace", ROOT / "scripts" / "check_trace.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(autouse=True)
def clean_telemetry():
    """Every test starts disabled with empty buffers and leaves no residue."""
    telemetry.disable()
    telemetry.reset()
    yield
    telemetry.disable()
    telemetry.reset()


# ---------------------------------------------------------------------------
# spans
# ---------------------------------------------------------------------------

class TestSpans:
    def test_disabled_span_is_shared_noop(self):
        assert telemetry.span("anything", key="value") is NOOP_SPAN
        with telemetry.span("anything") as sp:
            sp.set(ignored=True)
        assert len(telemetry.current_trace()) == 0

    def test_enabled_span_records_wall_time_and_attrs(self):
        telemetry.enable()
        with telemetry.span("work", codec="mpeg2") as sp:
            sp.set(frames=9)
        (record,) = telemetry.current_trace().spans()
        assert record.name == "work"
        assert record.attrs == {"codec": "mpeg2", "frames": 9}
        assert record.duration >= 0
        assert record.parent_id is None

    def test_nesting_links_parents(self):
        telemetry.enable()
        with telemetry.span("outer"):
            with telemetry.span("inner"):
                pass
            with telemetry.span("inner"):
                pass
        records = {r.span_id: r for r in telemetry.current_trace().spans()}
        outer = next(r for r in records.values() if r.name == "outer")
        inners = [r for r in records.values() if r.name == "inner"]
        assert len(inners) == 2
        assert all(r.parent_id == outer.span_id for r in inners)
        # Siblings closed before the outer span did.
        assert all(r.end <= outer.end for r in inners)

    def test_span_closes_and_records_error_under_exception(self):
        telemetry.enable()
        with pytest.raises(ValueError):
            with telemetry.span("outer"):
                with telemetry.span("inner"):
                    raise ValueError("boom")
        records = telemetry.current_trace().spans()
        assert len(records) == 2
        by_name = {r.name: r for r in records}
        assert by_name["inner"].attrs["error"] == "ValueError"
        assert by_name["outer"].attrs["error"] == "ValueError"
        # The stacks unwound: a new root span has no parent.
        with telemetry.span("after"):
            pass
        assert telemetry.current_trace().spans("after")[0].parent_id is None

    def test_explicit_error_attribute_wins(self):
        telemetry.enable()
        with pytest.raises(KeyError):
            with telemetry.span("lookup") as sp:
                sp.set(error="CustomLabel")
                raise KeyError("x")
        (record,) = telemetry.current_trace().spans()
        assert record.attrs["error"] == "CustomLabel"

    def test_threads_keep_separate_stacks(self):
        telemetry.enable()
        ready = threading.Barrier(2)

        def worker(tag):
            with telemetry.span(f"root.{tag}"):
                ready.wait(timeout=5)
                with telemetry.span(f"child.{tag}"):
                    pass

        threads = [threading.Thread(target=worker, args=(t,)) for t in "ab"]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        records = telemetry.current_trace().spans()
        assert len(records) == 4
        for tag in "ab":
            child = next(r for r in records if r.name == f"child.{tag}")
            root = next(r for r in records if r.name == f"root.{tag}")
            assert child.parent_id == root.span_id
            assert child.tid == root.tid

    def test_buffer_cap_drops_and_counts(self):
        telemetry.enable(max_spans=3)
        try:
            for _ in range(5):
                with telemetry.span("s"):
                    pass
            trace = telemetry.current_trace()
            assert len(trace) == 3
            assert trace.dropped == 2
        finally:
            telemetry.state.trace.max_spans = 250_000


# ---------------------------------------------------------------------------
# export
# ---------------------------------------------------------------------------

class TestExport:
    def _traced(self):
        telemetry.enable()
        with telemetry.span("outer", codec="h264"):
            with telemetry.span("inner"):
                pass
        telemetry.disable()
        return telemetry.current_trace()

    def test_native_json_schema(self):
        trace = self._traced()
        document = json.loads(trace.to_json())
        assert document["schema"] == "repro.telemetry.trace/1"
        assert len(document["spans"]) == 2
        outer = next(s for s in document["spans"] if s["name"] == "outer")
        assert outer["attrs"] == {"codec": "h264"}
        assert outer["end"] >= outer["start"]

    def test_chrome_trace_schema(self):
        trace = self._traced()
        document = trace.to_chrome(metadata={"tool": "test"})
        events = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert len(events) == 2
        for event in events:
            assert event["ts"] >= 0 and event["dur"] >= 0
        assert document["otherData"]["schema"] == "repro.telemetry.trace/1"
        assert document["otherData"]["tool"] == "test"

    def test_check_trace_validates_both_formats(self, tmp_path):
        check_trace = load_check_trace()
        trace = self._traced()
        chrome = tmp_path / "chrome.json"
        chrome.write_text(trace.to_chrome_json())
        native = tmp_path / "native.json"
        native.write_text(trace.to_json())
        assert "valid Chrome trace" in check_trace.validate_trace_file(str(chrome))
        assert "valid repro.telemetry.trace/1" in check_trace.validate_trace_file(str(native))

    def test_check_trace_rejects_garbage(self, tmp_path):
        check_trace = load_check_trace()
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"traceEvents": [{"ph": "X", "name": ""}]}))
        with pytest.raises(check_trace.TraceValidationError):
            check_trace.validate_trace_file(str(bad))
        empty = tmp_path / "empty.json"
        empty.write_text(json.dumps({"traceEvents": [],
                                     "otherData": {"schema": "repro.telemetry.trace/1"}}))
        with pytest.raises(check_trace.TraceValidationError):
            check_trace.validate_trace_file(str(empty))
        not_json = tmp_path / "not.json"
        not_json.write_text("{")
        with pytest.raises(check_trace.TraceValidationError):
            check_trace.validate_trace_file(str(not_json))


# ---------------------------------------------------------------------------
# metrics
# ---------------------------------------------------------------------------

def _worker_snapshot(amount: int):
    """ProcessPoolExecutor entry point: build a registry, ship its snapshot."""
    registry = MetricsRegistry()
    registry.counter("worker.pictures").inc(amount)
    registry.gauge("worker.queue").set(amount * 2)
    registry.histogram("worker.bytes", buckets=(10, 100, 1000)).observe(amount)
    return registry.snapshot()


class TestMetrics:
    def test_counter_monotonic(self):
        registry = MetricsRegistry()
        counter = registry.counter("bits")
        counter.inc()
        counter.inc(41)
        assert counter.value == 42
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_tracks_max(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(5)
        gauge.set(2)
        assert gauge.value == 2
        assert gauge.max == 5

    def test_histogram_buckets_and_mean(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("sizes", buckets=(10, 100))
        for value in (5, 50, 500):
            histogram.observe(value)
        assert histogram.counts == [1, 1, 1]   # <=10, <=100, overflow
        assert histogram.count == 3
        assert histogram.mean == pytest.approx(555 / 3)

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_snapshot_merge_roundtrip(self):
        a = MetricsRegistry()
        a.counter("n").inc(3)
        a.histogram("h", buckets=(1, 2)).observe(1)
        b = MetricsRegistry()
        b.counter("n").inc(4)
        b.histogram("h", buckets=(1, 2)).observe(5)
        b.merge(a.snapshot())
        assert b.value("n") == 7
        assert b.get("h").count == 2
        assert b.get("h").counts == [1, 0, 1]

    def test_merge_accepts_registry_and_creates_missing(self):
        a = MetricsRegistry()
        a.counter("only.in.a").inc(2)
        b = MetricsRegistry()
        b.merge(a)
        assert b.value("only.in.a") == 2

    def test_merge_histogram_bucket_mismatch_raises(self):
        a = MetricsRegistry()
        a.histogram("h", buckets=(1, 2)).observe(1)
        b = MetricsRegistry()
        b.histogram("h", buckets=(1, 3)).observe(1)
        with pytest.raises(ValueError):
            b.merge(a.snapshot())

    def test_merge_across_process_pool_workers(self):
        """The parallel_encode pattern: workers ship snapshots, parent merges."""
        parent = MetricsRegistry()
        with ProcessPoolExecutor(max_workers=2) as pool:
            snapshots = list(pool.map(_worker_snapshot, [3, 4, 5]))
        for snapshot in snapshots:
            parent.merge(snapshot)
        assert parent.value("worker.pictures") == 12
        assert parent.get("worker.queue").max == 10
        histogram = parent.get("worker.bytes")
        assert histogram.count == 3
        assert histogram.counts == [3, 0, 0, 0]


# ---------------------------------------------------------------------------
# stage profile
# ---------------------------------------------------------------------------

class TestStageProfile:
    def test_self_time_subtracts_children(self):
        telemetry.enable()
        with telemetry.span("encode"):
            for _ in range(3):
                with telemetry.span("encode.picture"):
                    pass
        telemetry.disable()
        trace = telemetry.current_trace()
        rows = {row.name: row for row in telemetry.stage_table(trace)}
        encode = rows["encode"]
        pictures = rows["encode.picture"]
        assert pictures.calls == 3
        child_total = pictures.total_seconds
        assert encode.self_seconds == pytest.approx(
            encode.total_seconds - child_total, abs=1e-6
        )
        # Shares are fractions of the root total.
        assert 0.0 <= encode.share <= 1.0
        total_share = sum(row.share for row in rows.values())
        assert total_share == pytest.approx(1.0, abs=0.01)

    def test_prefix_filter(self):
        telemetry.enable()
        with telemetry.span("mpeg2.encode"):
            pass
        with telemetry.span("h264.encode"):
            pass
        telemetry.disable()
        rows = telemetry.stage_table(telemetry.current_trace(), prefix="mpeg2.")
        assert [row.name for row in rows] == ["mpeg2.encode"]

    def test_coverage_against_wall(self):
        telemetry.enable()
        with telemetry.span("root"):
            pass
        telemetry.disable()
        trace = telemetry.current_trace()
        root = trace.spans()[0].duration
        assert telemetry.coverage(trace, root) == pytest.approx(1.0)
        assert telemetry.coverage(trace, root * 2) == pytest.approx(0.5)
        assert telemetry.coverage(trace, 0.0) == 0.0

    def test_render_stage_table_mentions_every_stage(self):
        telemetry.enable()
        with telemetry.span("alpha"):
            with telemetry.span("beta"):
                pass
        telemetry.disable()
        text = telemetry.render_stage_table(
            telemetry.stage_table(telemetry.current_trace())
        )
        assert "alpha" in text and "beta" in text and "self ms" in text


class TestHistogramPercentiles:
    def test_to_dict_carries_percentile_summary(self):
        from repro.telemetry.metrics import LATENCY_BUCKETS, MetricsRegistry
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", buckets=LATENCY_BUCKETS)
        for value in (0.002, 0.02, 0.02, 0.2, 2.0):
            histogram.observe(value)
        data = histogram.to_dict()
        assert {"p50", "p99", "p999"} <= set(data)
        assert data["p50"] <= data["p99"] <= data["p999"]
        assert data["count"] == 5

    def test_depth_buckets_cover_queue_range(self):
        from repro.telemetry.metrics import DEPTH_BUCKETS, MetricsRegistry
        registry = MetricsRegistry()
        histogram = registry.histogram("depth", buckets=DEPTH_BUCKETS)
        for depth in range(8):
            histogram.observe(depth)
        assert histogram.count == 8
        assert histogram.p999 <= DEPTH_BUCKETS[-1]

    def test_empty_histogram_percentiles_are_zero(self):
        from repro.telemetry.metrics import MetricsRegistry
        histogram = MetricsRegistry().histogram("empty", buckets=(1, 2))
        assert histogram.p50 == histogram.p99 == histogram.p999 == 0.0
