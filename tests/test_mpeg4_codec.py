"""End-to-end tests for the MPEG-4 ASP class codec."""

import pytest

from repro.codecs.mpeg2 import Mpeg2Config, Mpeg2Encoder
from repro.codecs.mpeg4 import Mpeg4Config, Mpeg4Decoder, Mpeg4Encoder
from repro.common.gop import FrameType, GopStructure
from repro.common.metrics import sequence_psnr
from repro.errors import CodecError
from tests.conftest import make_moving_sequence


def encode(video, **overrides):
    fields = dict(width=video.width, height=video.height,
                  qscale=5, search_range=4)
    fields.update(overrides)
    encoder = Mpeg4Encoder(Mpeg4Config(**fields))
    return encoder, encoder.encode_sequence(video)


class TestRoundTrip:
    def test_psnr_reasonable(self, tiny_video):
        _, stream = encode(tiny_video)
        decoded = Mpeg4Decoder().decode(stream)
        psnr = sequence_psnr(tiny_video, decoded)
        assert psnr.y > 29.0

    def test_deterministic(self, tiny_video):
        _, first = encode(tiny_video)
        _, second = encode(tiny_video)
        assert all(a.payload == b.payload for a, b in zip(first.pictures, second.pictures))

    def test_gop_structure(self, tiny_video):
        _, stream = encode(tiny_video)
        counts = stream.frame_types()
        assert counts[FrameType.I] == 1
        assert counts[FrameType.B] >= 1

    def test_intra_only(self, tiny_video):
        _, stream = encode(tiny_video, gop=GopStructure(bframes=0, intra_period=1))
        decoded = Mpeg4Decoder().decode(stream)
        assert sequence_psnr(tiny_video, decoded).y > 29.0


class TestAspTools:
    def test_qpel_off_roundtrips(self, tiny_video):
        _, stream = encode(tiny_video, qpel=False)
        decoded = Mpeg4Decoder().decode(stream)
        assert sequence_psnr(tiny_video, decoded).y > 29.0

    def test_four_mv_off_roundtrips(self, tiny_video):
        _, stream = encode(tiny_video, four_mv=False)
        decoded = Mpeg4Decoder().decode(stream)
        assert sequence_psnr(tiny_video, decoded).y > 29.0

    def test_qpel_helps_on_fractional_motion(self):
        # A sequence with visible motion: quarter-pel should not be worse
        # in rate-distortion terms (same qscale, compare bitrate at
        # comparable quality).
        video = make_moving_sequence(width=48, height=32, frames=6, dx=3, dy=1)
        _, with_qpel = encode(video, qpel=True)
        _, without = encode(video, qpel=False)
        psnr_with = sequence_psnr(video, Mpeg4Decoder().decode(with_qpel)).y
        psnr_without = sequence_psnr(video, Mpeg4Decoder().decode(without)).y
        # Allow either smaller stream or better quality.
        assert (with_qpel.total_bytes <= without.total_bytes * 1.05
                or psnr_with >= psnr_without - 0.1)

    def test_compresses_better_than_mpeg2_on_motion(self):
        video = make_moving_sequence(width=64, height=48, frames=6, dx=2, dy=1)
        _, mpeg4_stream = encode(video, search_range=8)
        mpeg2_stream = Mpeg2Encoder(
            Mpeg2Config(width=video.width, height=video.height, qscale=5, search_range=8)
        ).encode_sequence(video)
        assert mpeg4_stream.total_bytes < mpeg2_stream.total_bytes


class TestRateBehaviour:
    def test_qscale_monotone_bits(self, tiny_video):
        _, fine = encode(tiny_video, qscale=2)
        _, coarse = encode(tiny_video, qscale=15)
        assert coarse.total_bytes < fine.total_bytes

    def test_qscale_monotone_quality(self, tiny_video):
        _, fine = encode(tiny_video, qscale=2)
        _, coarse = encode(tiny_video, qscale=15)
        assert (
            sequence_psnr(tiny_video, Mpeg4Decoder().decode(fine)).y
            > sequence_psnr(tiny_video, Mpeg4Decoder().decode(coarse)).y
        )


class TestValidation:
    def test_wrong_codec_rejected(self, tiny_video):
        _, stream = encode(tiny_video)
        stream.codec = "mpeg2"
        with pytest.raises(CodecError):
            Mpeg4Decoder().decode(stream)

    def test_stats(self, tiny_video):
        encoder, stream = encode(tiny_video)
        assert encoder.stats.total_bits == 8 * stream.total_bytes
